"""Parallel, fault-isolated campaign execution.

The runner expands a :class:`~repro.campaign.spec.CampaignSpec`, skips
every run already present in the :class:`~repro.campaign.store.ResultStore`
and fans the cache misses out over a ``ProcessPoolExecutor``:

* **Determinism** — workers receive the scenario *dict* and rebuild the
  frozen :class:`~repro.sim.experiment.Scenario` from it, so results are
  identical whatever the worker count or scheduling order; the report is
  always assembled in grid order.
* **Fault isolation** — a run raising any exception (including
  :class:`~repro.errors.SimulationError`) records a structured
  :class:`RunFailure` instead of killing the campaign.  A *hard* worker
  crash breaks the pool; the runner then retries each started-but-
  unfinished run once in its own single-worker pool so innocent bystanders
  complete while the genuine crasher is marked ``failed`` (kind
  ``"crash"``).  Failures are never cached: a later ``--resume`` executes
  exactly the missing runs.
* **Timeout** — an optional per-run wall-clock deadline enforced with
  ``SIGALRM`` inside the worker (skipped silently where unavailable).
* **Observability** — campaign-level counters (started / cached /
  completed / failed), a wall-time histogram, and a provenance manifest
  plus Prometheus snapshot written under ``campaigns/<name>/`` in the
  store.
* **Telemetry** — each worker ships its run's deterministic registry
  snapshot back in the summary (and into the stored object); the runner
  folds them through a :class:`~repro.obs.telemetry.CampaignAggregator`
  into ``telemetry.json`` / ``telemetry.prom`` (the merged fleet
  registry, byte-identical whatever the worker count), ``aggregate.json``
  (percentile series per platform/policy/fault-plan — what ``repro obs
  check`` evaluates SLOs against) and ``fleet.prom``.  Progress hooks
  (:class:`~repro.obs.telemetry.CampaignObserver`, e.g. the ``--watch``
  dashboard) fire as runs resolve.
"""

from __future__ import annotations

import datetime
import json
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Mapping

from repro.campaign.spec import CampaignRun, CampaignSpec
from repro.campaign.store import ResultStore, scenario_key
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry.aggregate import (
    CampaignAggregate,
    CampaignAggregator,
    quantile,
)
from repro.sim.experiment import Scenario, ScenarioResult

CAMPAIGN_MANIFEST_SCHEMA = "repro.campaign/1"

#: Test-only fault hook: a *worker process* whose run id equals this
#: environment variable hard-exits before running, simulating a crashed or
#: OOM-killed worker.  Never consulted on the in-process (jobs=1) path.
FAULT_ENV = "REPRO_CAMPAIGN_FAULT_RUN"

#: Wall-time histogram buckets for one run (seconds, host clock).
WALL_SECONDS_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)



def _wall_clock_s() -> float:
    """The campaign runner's single wall-clock read, used only to time
    host-side run durations for the wall-time histogram and manifest —
    never as an input to simulated state (the sim reads its own clock).

    ``time.perf_counter`` is the sanctioned profiling clock (see rule R202
    in docs/STATIC_ANALYSIS.md); routing every read through this helper
    keeps the timing policy auditable in one place.
    """
    return time.perf_counter()


def _utc_timestamp() -> str:
    """Real (UTC) creation time for campaign manifests.

    Provenance metadata about when the sweep ran, mirroring
    ``obs/manifest.py``; it is never an input to simulated state, which is
    why the determinism rule is suppressed here and nowhere else in the
    campaign subsystem.
    """
    return datetime.datetime.now(  # repro-lint: disable=R202
        datetime.timezone.utc
    ).isoformat()


def _repro_version() -> str:
    from repro import __version__  # deferred: repro/__init__ imports us

    return __version__


# ---------------------------------------------------------------- records


@dataclass(frozen=True)
class RunFailure:
    """Structured record of why one run produced no result."""

    kind: str  # "exception" | "timeout" | "crash"
    error_type: str
    message: str
    #: Fault plan the scenario was replaying when it failed, when any —
    #: separates "crashed while being deliberately faulted" from a plain
    #: crash (a fault plan that executes as designed is not a failure at
    #: all: it completes and files a ScenarioResult).
    fault_plan: str | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "fault_plan": self.fault_plan,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunFailure":
        """Inverse of :meth:`to_dict` (``fault_plan`` optional, pre-1.1)."""
        fault_plan = data.get("fault_plan")
        return cls(
            kind=str(data["kind"]),
            error_type=str(data["error_type"]),
            message=str(data["message"]),
            fault_plan=None if fault_plan is None else str(fault_plan),
        )


@dataclass(frozen=True)
class RunRecord:
    """Outcome of one grid point in a campaign invocation."""

    run_id: str
    key: str
    status: str  # "cached" | "completed" | "failed" | "pending"
    elapsed_s: float | None = None
    failure: RunFailure | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "run_id": self.run_id,
            "key": self.key,
            "status": self.status,
            "elapsed_s": self.elapsed_s,
            "failure": None if self.failure is None else self.failure.to_dict(),
        }


@dataclass(frozen=True)
class CampaignReport:
    """All run records of one campaign invocation, in grid order."""

    name: str
    records: tuple[RunRecord, ...]

    def count(self, status: str) -> int:
        """Number of records with one status."""
        return sum(1 for r in self.records if r.status == status)

    @property
    def ok(self) -> bool:
        """True when every run is cached or completed."""
        return all(r.status in ("cached", "completed") for r in self.records)

    def summary(self) -> dict:
        """Counts by status plus the total."""
        return {
            "total": len(self.records),
            "cached": self.count("cached"),
            "completed": self.count("completed"),
            "failed": self.count("failed"),
            "pending": self.count("pending"),
        }

    def cache_hit_ratio(self) -> float:
        """Fraction of runs served from the result store (0.0 when empty)."""
        if not self.records:
            return 0.0
        return self.count("cached") / len(self.records)

    def wall_times(self) -> list[float]:
        """Wall seconds of every executed run, in grid order."""
        return [r.elapsed_s for r in self.records if r.elapsed_s is not None]

    def to_dict(self) -> dict:
        """JSON-serialisable form (the CLI's ``--format json`` payload)."""
        return {
            "name": self.name,
            "ok": self.ok,
            "summary": self.summary(),
            "runs": [r.to_dict() for r in self.records],
        }

    def render_text(self) -> str:
        """Human-readable table plus a one-line summary."""
        from repro.analysis.tables import render_table

        rows = []
        for record in self.records:
            elapsed = "-" if record.elapsed_s is None else f"{record.elapsed_s:.2f}"
            detail = ""
            if record.failure is not None:
                detail = f"{record.failure.kind}: {record.failure.message}"
            rows.append([record.run_id, record.status, elapsed, detail])
        table = render_table(
            ["run", "status", "wall s", "detail"], rows,
            title=f"Campaign {self.name}",
        )
        s = self.summary()
        line = (
            f"{s['total']} run(s): {s['completed']} completed, "
            f"{s['cached']} cached, {s['failed']} failed, "
            f"{s['pending']} pending"
        )
        lines = [table, line, f"cache hit ratio: {self.cache_hit_ratio():.2f}"]
        walls = self.wall_times()
        if walls:
            lines.append(
                f"wall s: p50 {quantile(walls, 0.50):.2f}, "
                f"p90 {quantile(walls, 0.90):.2f}, max {max(walls):.2f}"
            )
        else:
            lines.append("wall s: no executed runs")
        return "\n".join(lines)

    def render_json(self) -> str:
        """Pretty-printed JSON of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# ----------------------------------------------------------------- worker


class _Timeout(Exception):
    """Internal: raised by the SIGALRM handler on a per-run deadline."""


def _run_scenario(
    scenario: Scenario, timeout_s: float | None
) -> tuple[ScenarioResult, dict]:
    """Run one scenario (result + telemetry snapshot), under a SIGALRM
    deadline when one is requested."""
    if not timeout_s or not hasattr(signal, "SIGALRM"):
        return scenario.run_instrumented()

    def _on_alarm(signum, frame):
        raise _Timeout()

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # not the main thread: alarms unavailable
        return scenario.run_instrumented()
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return scenario.run_instrumented()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_payload(payload: dict) -> dict:
    """Execute one run and file its result; always returns a summary dict.

    Runs in a worker process (or inline for ``jobs=1``).  Every Python
    exception is converted into a structured failure summary, so only a
    hard process death can leave the campaign without an answer — that is
    what the attempt markers are for.
    """
    run_id = payload["run_id"]
    key = payload["key"]
    timeout_s = payload.get("timeout_s")
    faults = payload["scenario"].get("faults")
    fault_plan = None if faults is None else faults.get("name")
    store = ResultStore(payload["store_root"])
    store.record_attempt(key)
    if payload.get("allow_fault_injection") and os.environ.get(FAULT_ENV) == run_id:
        os._exit(17)  # simulate a hard worker crash (test hook)
    started = _wall_clock_s()
    try:
        scenario = Scenario.from_dict(payload["scenario"])
        result, telemetry = _run_scenario(scenario, timeout_s)
    except _Timeout:
        store.clear_attempts(key)
        return {
            "run_id": run_id,
            "key": key,
            "status": "failed",
            "elapsed_s": _wall_clock_s() - started,
            "failure": {
                "kind": "timeout",
                "error_type": "Timeout",
                "message": f"run exceeded the {timeout_s:g} s deadline",
                "fault_plan": fault_plan,
            },
        }
    except Exception as exc:
        store.clear_attempts(key)
        return {
            "run_id": run_id,
            "key": key,
            "status": "failed",
            "elapsed_s": _wall_clock_s() - started,
            "failure": {
                "kind": "exception",
                "error_type": type(exc).__name__,
                "message": str(exc),
                "fault_plan": fault_plan,
            },
        }
    elapsed = _wall_clock_s() - started
    store.save(key, scenario, result, telemetry=telemetry)
    store.clear_attempts(key)
    return {
        "run_id": run_id,
        "key": key,
        "status": "completed",
        "elapsed_s": elapsed,
        "result": result.to_dict(),
        "telemetry": telemetry,
    }


def _run_batched(
    scenarios: "list[Scenario]", timeout_s: float | None
) -> list[tuple[ScenarioResult, dict]]:
    """Run a same-platform group through one stacked stepper.

    The SIGALRM deadline (when available) covers the whole group and is
    scaled by its size, so the per-run budget matches the scalar path.
    """
    from repro.sim.experiment import run_scenarios_batched

    if not timeout_s or not hasattr(signal, "SIGALRM"):
        return run_scenarios_batched(scenarios)

    def _on_alarm(signum, frame):
        raise _Timeout()

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # not the main thread: alarms unavailable
        return run_scenarios_batched(scenarios)
    signal.setitimer(signal.ITIMER_REAL, timeout_s * len(scenarios))
    try:
        return run_scenarios_batched(scenarios)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_batch_payload(payload: dict) -> list[dict]:
    """Execute one same-platform group of runs through a stacked stepper.

    Returns one summary per run, in group order, with the same schema as
    :func:`_execute_payload` — the batched stepper is byte-identical to
    the scalar path, so the store contents and telemetry cannot differ.
    A group-wide failure falls back to executing each member alone, so a
    single bad scenario only fails itself.
    """
    runs = payload["runs"]
    store = ResultStore(payload["store_root"])
    timeout_s = payload.get("timeout_s")
    for item in runs:
        store.record_attempt(item["key"])
    if payload.get("allow_fault_injection"):
        victim = os.environ.get(FAULT_ENV)
        if victim is not None and any(item["run_id"] == victim for item in runs):
            os._exit(17)  # simulate a hard worker crash (test hook)
    started = _wall_clock_s()

    def _fallback() -> list[dict]:
        # Attempts were recorded above; _execute_payload records again and
        # clears per member, leaving the same end state as a scalar wave.
        return [
            _execute_payload(
                {
                    "run_id": item["run_id"],
                    "key": item["key"],
                    "scenario": item["scenario"],
                    "store_root": payload["store_root"],
                    "timeout_s": timeout_s,
                    "allow_fault_injection": False,
                }
            )
            for item in runs
        ]

    try:
        scenarios = [Scenario.from_dict(item["scenario"]) for item in runs]
        pairs = _run_batched(scenarios, timeout_s)
    except _Timeout:
        elapsed = (_wall_clock_s() - started) / len(runs)
        summaries = []
        for item in runs:
            store.clear_attempts(item["key"])
            summaries.append(
                {
                    "run_id": item["run_id"],
                    "key": item["key"],
                    "status": "failed",
                    "elapsed_s": elapsed,
                    "failure": {
                        "kind": "timeout",
                        "error_type": "Timeout",
                        "message": (
                            f"batched group of {len(runs)} exceeded its "
                            f"{timeout_s * len(runs):g} s deadline"
                        ),
                        "fault_plan": (item["scenario"].get("faults") or {}).get(
                            "name"
                        ),
                    },
                }
            )
        return summaries
    except Exception:
        return _fallback()
    elapsed = (_wall_clock_s() - started) / len(runs)
    summaries = []
    for item, scenario, (result, telemetry) in zip(runs, scenarios, pairs):
        store.save(item["key"], scenario, result, telemetry=telemetry)
        store.clear_attempts(item["key"])
        summaries.append(
            {
                "run_id": item["run_id"],
                "key": item["key"],
                "status": "completed",
                "elapsed_s": elapsed,
                "result": result.to_dict(),
                "telemetry": telemetry,
            }
        )
    return summaries


# ----------------------------------------------------------------- runner


class CampaignRunner:
    """Execute a campaign against a result store."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore | str,
        jobs: int = 1,
        timeout_s: float | None = None,
        metrics: MetricsRegistry | None = None,
        observer=None,
        batch: bool = False,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be at least 1")
        if timeout_s is not None and timeout_s <= 0.0:
            raise ConfigurationError("timeout must be positive")
        self.spec = spec
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.jobs = jobs
        self.timeout_s = timeout_s
        #: Pack same-platform cache misses into stacked steppers
        #: (:class:`repro.sim.batch.BatchSimulation`) inside each worker.
        #: Purely an execution strategy: stores, results and telemetry are
        #: byte-identical to ``batch=False`` at any ``jobs`` count.
        self.batch = batch
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Progress hook (:class:`~repro.obs.telemetry.CampaignObserver`
        #: protocol) — e.g. the ``--watch`` dashboard.  Optional.
        self.observer = observer
        #: Fleet aggregate of the most recent :meth:`run` (None before).
        self.last_aggregate: CampaignAggregate | None = None
        self.runs = spec.expand()
        self._runs_by_id = {run.run_id: run for run in self.runs}
        self._keys = {run.run_id: scenario_key(run.scenario) for run in self.runs}
        self._aggregator = CampaignAggregator(spec.name)
        labels = {"campaign": spec.name}
        self._m_started = self.metrics.counter(
            "repro_campaign_runs_started_total",
            "Run executions submitted (cache misses, including crash retries)",
            labels=labels,
        )
        self._m_cached = self.metrics.counter(
            "repro_campaign_runs_cached_total",
            "Runs satisfied from the result store", labels=labels,
        )
        self._m_completed = self.metrics.counter(
            "repro_campaign_runs_completed_total",
            "Runs executed to completion this invocation", labels=labels,
        )
        self._m_failed = self.metrics.counter(
            "repro_campaign_runs_failed_total",
            "Runs that ended in a structured failure", labels=labels,
        )
        self._m_wall = self.metrics.histogram(
            "repro_campaign_run_wall_seconds",
            "Host wall-clock duration of one executed run",
            buckets=WALL_SECONDS_BUCKETS, labels=labels,
        )

    # ------------------------------------------------------------- queries

    def key_of(self, run: CampaignRun) -> str:
        """The store key of one expanded run."""
        return self._keys[run.run_id]

    def status(self) -> CampaignReport:
        """Cache-hit census without executing anything."""
        records = tuple(
            RunRecord(
                run_id=run.run_id,
                key=self.key_of(run),
                status="cached" if self.store.has(self.key_of(run)) else "pending",
            )
            for run in self.runs
        )
        return CampaignReport(name=self.spec.name, records=records)

    def results(self) -> dict[str, ScenarioResult]:
        """Cached results by run id (missing runs are simply absent)."""
        out: dict[str, ScenarioResult] = {}
        for run in self.runs:
            result = self.store.load(self.key_of(run))
            if result is not None:
                out[run.run_id] = result
        return out

    # ----------------------------------------------------------- execution

    def _payload(self, run: CampaignRun, allow_fault: bool) -> dict:
        return {
            "run_id": run.run_id,
            "key": self.key_of(run),
            "scenario": run.scenario.to_dict(),
            "store_root": str(self.store.root),
            "timeout_s": self.timeout_s,
            "allow_fault_injection": allow_fault,
        }

    def _record_from_summary(self, summary: dict) -> RunRecord:
        failure = summary.get("failure")
        record = RunRecord(
            run_id=summary["run_id"],
            key=summary["key"],
            status=summary["status"],
            elapsed_s=summary.get("elapsed_s"),
            failure=None if failure is None else RunFailure.from_dict(failure),
        )
        if record.status == "completed":
            self._m_completed.inc()
        else:
            self._m_failed.inc()
        if record.elapsed_s is not None:
            self._m_wall.observe(record.elapsed_s)
        result = summary.get("result")
        self._ingest(
            record,
            result=None if result is None else ScenarioResult.from_dict(result),
            telemetry=summary.get("telemetry"),
        )
        return record

    # ------------------------------------------------------------ telemetry

    def _notify(self, method: str, *args) -> None:
        if self.observer is not None:
            getattr(self.observer, method)(*args)

    def _ingest(
        self,
        record: RunRecord,
        result: ScenarioResult | None = None,
        telemetry: dict | None = None,
        load_store: bool = False,
    ) -> None:
        """File one resolved run with the aggregator and notify the observer.

        ``load_store=True`` pulls the result and telemetry from the store
        (cached runs, and completions whose summary died with the pool).
        """
        if load_store:
            payload = self.store.load_payload(record.key)
            if payload is not None:
                result = ScenarioResult.from_dict(payload["result"])
                telemetry = payload.get("telemetry")
        run = self._runs_by_id[record.run_id]
        self._aggregator.ingest(
            record.run_id,
            run.scenario,
            record.status,
            elapsed_s=record.elapsed_s,
            result=result,
            snapshot=telemetry,
            failure_kind=None if record.failure is None else record.failure.kind,
        )
        self._notify("run_finished", record)

    def aggregate(self) -> CampaignAggregate:
        """Fleet aggregate of the store's current view of this campaign.

        Folds every cached run (``repro campaign watch`` on a store that
        was populated earlier); :meth:`run` refreshes it live instead.
        """
        aggregator = CampaignAggregator(self.spec.name)
        for run in self.runs:
            key = self.key_of(run)
            payload = self.store.load_payload(key)
            if payload is None:
                aggregator.ingest(run.run_id, run.scenario, "pending")
            else:
                aggregator.ingest(
                    run.run_id,
                    run.scenario,
                    "cached",
                    result=ScenarioResult.from_dict(payload["result"]),
                    snapshot=payload.get("telemetry"),
                )
        return aggregator.aggregate()

    def _batch_payload(self, group: list[CampaignRun], allow_fault: bool) -> dict:
        return {
            "runs": [
                {
                    "run_id": run.run_id,
                    "key": self.key_of(run),
                    "scenario": run.scenario.to_dict(),
                }
                for run in group
            ],
            "store_root": str(self.store.root),
            "timeout_s": self.timeout_s,
            "allow_fault_injection": allow_fault,
        }

    def _batch_groups(self, runs: list[CampaignRun]) -> list[list[CampaignRun]]:
        """Partition a wave into same-platform groups for stacked stepping.

        Grid order is preserved within each group and groups appear in
        first-platform order, so the partition is deterministic.  Each
        platform's group is split into contiguous chunks when there are
        spare workers, trading some stacking width for parallelism.
        """
        by_platform: dict[str, list[CampaignRun]] = {}
        for run in runs:
            by_platform.setdefault(run.scenario.platform, []).append(run)
        chunks_per_group = max(1, self.jobs // max(1, len(by_platform)))
        groups: list[list[CampaignRun]] = []
        for members in by_platform.values():
            n_chunks = min(chunks_per_group, len(members))
            size = -(-len(members) // n_chunks)
            for i in range(0, len(members), size):
                groups.append(members[i : i + size])
        return groups

    def _run_wave_batched(self, runs: list[CampaignRun]) -> tuple[list[dict], bool]:
        """One fan-out with same-platform groups stacked per worker."""
        groups = self._batch_groups(runs)
        if self.jobs == 1:
            summaries: list[dict] = []
            for group in groups:
                for _ in group:
                    self._m_started.inc()
                summaries.extend(
                    _execute_batch_payload(self._batch_payload(group, False))
                )
            return summaries, False
        summaries = []
        broken = False
        workers = min(self.jobs, len(groups))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = []
            for group in groups:
                futures.append(
                    pool.submit(
                        _execute_batch_payload, self._batch_payload(group, True)
                    )
                )
                for _ in group:
                    self._m_started.inc()
            for future in futures:
                try:
                    summaries.extend(future.result())
                except BrokenProcessPool:
                    broken = True
        return summaries, broken

    def _run_wave(self, runs: list[CampaignRun]) -> tuple[list[dict], bool]:
        """One fan-out over the pool (or inline for jobs=1).

        Returns the collected summaries and whether the pool broke (a
        worker died); lost runs are resolved by the caller via the store.
        """
        if self.batch:
            return self._run_wave_batched(runs)
        if self.jobs == 1:
            summaries = []
            for run in runs:
                self._m_started.inc()
                summaries.append(_execute_payload(self._payload(run, False)))
            return summaries, False
        summaries = []
        broken = False
        workers = min(self.jobs, len(runs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = []
            for run in runs:
                futures.append(pool.submit(_execute_payload, self._payload(run, True)))
                self._m_started.inc()
            for future in futures:
                try:
                    summaries.append(future.result())
                except BrokenProcessPool:
                    broken = True
        return summaries, broken

    def _run_isolated(self, run: CampaignRun) -> RunRecord:
        """Retry one crash suspect alone in a single-worker pool."""
        key = self.key_of(run)
        self._m_started.inc()
        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(_execute_payload, self._payload(run, True))
            try:
                summary = future.result()
            except BrokenProcessPool:
                self.store.clear_attempts(key)
                self._m_failed.inc()
                record = RunRecord(
                    run_id=run.run_id,
                    key=key,
                    status="failed",
                    failure=RunFailure(
                        kind="crash",
                        error_type="BrokenProcessPool",
                        message="worker process died while executing this run",
                    ),
                )
                self._ingest(record)
                return record
        return self._record_from_summary(summary)

    def run(self) -> CampaignReport:
        """Execute every cache miss; returns the full report.

        Also writes the campaign manifest and metrics snapshot under
        ``campaigns/<name>/`` in the store.
        """
        self._aggregator = CampaignAggregator(self.spec.name)
        self._notify(
            "campaign_started", self.spec.name, len(self.runs), self._aggregator
        )
        records: dict[str, RunRecord] = {}
        pending: list[CampaignRun] = []
        for run in self.runs:
            key = self.key_of(run)
            if self.store.has(key):
                record = RunRecord(run.run_id, key, "cached")
                records[run.run_id] = record
                self._m_cached.inc()
                self._ingest(record, load_store=True)
            else:
                pending.append(run)

        wave = 0
        while pending:
            suspects = [
                run for run in pending
                if self.store.attempts(self.key_of(run)) > 0
            ]
            if suspects:
                # Started before without filing a result — a broken pool in
                # this invocation, or an interrupted earlier one.  Isolate
                # each so a genuine crasher can only take itself down while
                # innocent bystanders complete.
                for run in suspects:
                    records[run.run_id] = self._run_isolated(run)
                suspect_ids = {run.run_id for run in suspects}
                pending = [r for r in pending if r.run_id not in suspect_ids]
                continue
            wave += 1
            self._notify("wave_started", wave, len(pending))
            summaries, broken = self._run_wave(pending)
            for summary in summaries:
                records[summary["run_id"]] = self._record_from_summary(summary)
            still: list[CampaignRun] = []
            for run in pending:
                if run.run_id in records:
                    continue
                key = self.key_of(run)
                if self.store.has(key):
                    # Finished, but its summary died with the pool.
                    record = RunRecord(run.run_id, key, "completed")
                    records[run.run_id] = record
                    self.store.clear_attempts(key)
                    self._m_completed.inc()
                    self._ingest(record, load_store=True)
                else:
                    still.append(run)
            if still and not broken:  # pragma: no cover - defensive
                for run in still:
                    record = RunRecord(
                        run.run_id, self.key_of(run), "failed",
                        failure=RunFailure(
                            kind="crash", error_type="LostRun",
                            message="run returned no summary and no result",
                        ),
                    )
                    records[run.run_id] = record
                    self._ingest(record)
                still = []
            pending = still

        report = CampaignReport(
            name=self.spec.name,
            records=tuple(records[run.run_id] for run in self.runs),
        )
        self.last_aggregate = self._aggregator.aggregate()
        self._write_manifest(report, self.last_aggregate)
        self._notify("campaign_finished", report)
        return report

    # ------------------------------------------------------------ manifest

    def _write_manifest(
        self, report: CampaignReport, aggregate: CampaignAggregate
    ) -> None:
        from repro.obs.exporters import write_prometheus
        from repro.obs.manifest import write_manifest
        from repro.obs.telemetry.snapshot import (
            registry_from_snapshot,
            snapshot_json,
        )

        manifest = {
            "schema": CAMPAIGN_MANIFEST_SCHEMA,
            "name": self.spec.name,
            "created_utc": _utc_timestamp(),
            "repro_version": _repro_version(),
            "jobs": self.jobs,
            "timeout_s": self.timeout_s,
            "batch": self.batch,
            "spec": self.spec.to_dict(),
            "summary": report.summary(),
            "runs": {record.run_id: record.to_dict() for record in report.records},
        }
        directory = self.store.campaign_dir(self.spec.name)
        write_manifest(manifest, directory / "manifest.json")
        write_prometheus(self.metrics, directory / "metrics.prom")
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "aggregate.json").write_text(
            json.dumps(aggregate.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        write_prometheus(aggregate.to_registry(), directory / "fleet.prom")
        if aggregate.snapshot is not None:
            # Canonical merged telemetry: byte-identical for any worker
            # count or scheduling order (the acceptance bar of the
            # cross-process pipeline).
            (directory / "telemetry.json").write_text(
                snapshot_json(aggregate.snapshot) + "\n"
            )
            write_prometheus(
                registry_from_snapshot(aggregate.snapshot),
                directory / "telemetry.prom",
            )
