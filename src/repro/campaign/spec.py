"""Declarative campaign grids.

A :class:`CampaignSpec` is a named cartesian product of :class:`Axis`
values over the fields of :class:`~repro.sim.experiment.Scenario`:

    spec = CampaignSpec(
        name="horizon-sweep",
        base={
            "platform": "pixel-xl",
            "apps": (AppSpec.catalog("stickman"), AppSpec.batch("bml")),
            "policy": "proposed",
            "duration_s": 30.0,
        },
        axes=(Axis("governor.horizon_s", (10.0, 30.0, 60.0)),),
    )
    runs = spec.expand()   # tuple of CampaignRun, one frozen Scenario each

Axes may range over the scenario scalars (``platform``, ``policy``,
``seed``, ``duration_s``, ``t_limit_c``, ``ambient_c``), over whole app
mixes (``apps``: each value is a tuple of :class:`AppSpec`), over fault
plans (``faults.plan``: built-in plan names, plan dicts or
:class:`~repro.faults.plan.FaultPlan` objects) and over any
:class:`~repro.core.governor.GovernorConfig` field via a ``governor.``
prefix.  Expansion is deterministic: run indices follow the product order
of the axes as given, and every run gets a stable, content-derived id.

Specs round-trip through :meth:`CampaignSpec.to_dict` /
:meth:`CampaignSpec.from_dict`, which is also the JSON file format the
``repro campaign`` CLI consumes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from typing import Mapping, Sequence

from repro.core.governor import GovernorConfig
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, resolve_plan
from repro.sim.experiment import AppSpec, Scenario

#: Scenario fields an axis (or the base) may set directly.
SCALAR_AXES = (
    "platform", "policy", "seed", "duration_s", "t_limit_c", "ambient_c",
)

#: Axis names addressing a GovernorConfig field start with this prefix.
GOVERNOR_PREFIX = "governor."

#: Axis name sweeping the scenario's fault plan.
FAULTS_AXIS = "faults.plan"

_CAMPAIGN_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")


def _governor_field_names() -> frozenset[str]:
    return frozenset(f.name for f in dataclass_fields(GovernorConfig))


def canonical_json(data) -> str:
    """The canonical (sorted, compact) JSON used for hashing and dedup."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _normalize_apps_value(value) -> tuple[AppSpec, ...]:
    """Coerce one ``apps`` value into a tuple of AppSpec."""
    if isinstance(value, AppSpec):
        value = (value,)
    if isinstance(value, Mapping):
        raise ConfigurationError(
            "an 'apps' value must be a sequence of AppSpec (or their dicts), "
            "not a single mapping"
        )
    try:
        items = tuple(value)
    except TypeError:
        raise ConfigurationError(
            f"an 'apps' value must be a sequence of AppSpec; got {value!r}"
        ) from None
    out = []
    for item in items:
        if isinstance(item, AppSpec):
            out.append(item)
        elif isinstance(item, Mapping):
            out.append(AppSpec.from_dict(item))
        else:
            raise ConfigurationError(
                f"an 'apps' entry must be an AppSpec or its dict; got {item!r}"
            )
    if not out:
        raise ConfigurationError("an 'apps' value needs at least one app")
    return tuple(out)


def _jsonable_axis_value(name: str, value):
    if name == "apps":
        return [spec.to_dict() for spec in value]
    if name == FAULTS_AXIS:
        return value.to_dict()
    return value


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a scenario (or governor) field and its values."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if self.name.startswith(GOVERNOR_PREFIX):
            fld = self.name[len(GOVERNOR_PREFIX):]
            if fld not in _governor_field_names():
                raise ConfigurationError(
                    f"unknown governor field {fld!r}; have "
                    f"{sorted(_governor_field_names())}"
                )
        elif self.name not in SCALAR_AXES + ("apps", FAULTS_AXIS):
            raise ConfigurationError(
                f"unknown axis {self.name!r}; have "
                f"{SCALAR_AXES + ('apps', FAULTS_AXIS)} and "
                f"'{GOVERNOR_PREFIX}<field>'"
            )
        values = tuple(self.values)
        if not values:
            raise ConfigurationError(f"axis {self.name!r} needs at least one value")
        if self.name == "apps":
            values = tuple(_normalize_apps_value(v) for v in values)
        elif self.name == FAULTS_AXIS:
            values = tuple(resolve_plan(v) for v in values)
        object.__setattr__(self, "values", values)
        canon = [canonical_json(_jsonable_axis_value(self.name, v)) for v in values]
        if len(set(canon)) != len(canon):
            raise ConfigurationError(
                f"axis {self.name!r} has duplicate values: they would expand "
                "into identical scenarios"
            )

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "values": [_jsonable_axis_value(self.name, v) for v in self.values],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Axis":
        """Inverse of :meth:`to_dict` (``apps`` dicts become AppSpecs)."""
        return cls(name=data["name"], values=tuple(data["values"]))


@dataclass(frozen=True)
class CampaignRun:
    """One expanded grid point: a stable id plus its frozen scenario."""

    index: int
    run_id: str
    scenario: Scenario


@dataclass(frozen=True)
class CampaignSpec:
    """A named grid of scenarios: base fields plus swept axes."""

    name: str
    axes: tuple[Axis, ...]
    base: Mapping

    def __post_init__(self) -> None:
        if not _CAMPAIGN_NAME_RE.match(self.name):
            raise ConfigurationError(
                f"campaign name {self.name!r} must match "
                f"{_CAMPAIGN_NAME_RE.pattern} (it becomes a directory name)"
            )
        axes = tuple(
            ax if isinstance(ax, Axis) else Axis.from_dict(ax) for ax in self.axes
        )
        names = [ax.name for ax in axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate axis names in {names}")
        object.__setattr__(self, "axes", axes)

        base = dict(self.base)
        allowed = set(SCALAR_AXES) | {"apps", "governor", "faults"}
        unknown = set(base) - allowed
        if unknown:
            raise ConfigurationError(
                f"unknown base field(s) {sorted(unknown)}; have {sorted(allowed)}"
            )
        if "apps" in base:
            base["apps"] = _normalize_apps_value(base["apps"])
        if base.get("faults") is not None:
            base["faults"] = resolve_plan(base["faults"]).to_dict()
        governor = base.get("governor")
        if isinstance(governor, GovernorConfig):
            base["governor"] = governor.to_dict()
        elif governor is not None:
            unknown_gov = set(governor) - _governor_field_names()
            if unknown_gov:
                raise ConfigurationError(
                    f"unknown governor field(s) {sorted(unknown_gov)} in base"
                )
            base["governor"] = dict(governor)
        object.__setattr__(self, "base", base)

        axis_fields = {
            ax.name for ax in axes if not ax.name.startswith(GOVERNOR_PREFIX)
        }
        if "apps" not in axis_fields and "apps" not in base:
            raise ConfigurationError(
                "the campaign needs 'apps' in the base or as an axis"
            )
        if "platform" not in axis_fields and "platform" not in base:
            raise ConfigurationError(
                "the campaign needs 'platform' in the base or as an axis"
            )

    @property
    def size(self) -> int:
        """Number of runs the grid expands into."""
        total = 1
        for ax in self.axes:
            total *= len(ax.values)
        return total

    def expand(self) -> tuple[CampaignRun, ...]:
        """Materialise the grid as frozen scenarios with stable run ids."""
        combos = itertools.product(*(ax.values for ax in self.axes))
        runs: list[CampaignRun] = []
        seen: dict[str, int] = {}
        for index, combo in enumerate(combos):
            fields = {k: v for k, v in self.base.items() if k != "governor"}
            governor = dict(self.base.get("governor") or {})
            for axis, value in zip(self.axes, combo):
                if axis.name.startswith(GOVERNOR_PREFIX):
                    governor[axis.name[len(GOVERNOR_PREFIX):]] = value
                elif axis.name == FAULTS_AXIS:
                    fields["faults"] = value
                else:
                    fields[axis.name] = value
            if governor:
                fields["governor"] = GovernorConfig.from_dict(governor)
            scenario = Scenario.from_dict(fields)
            digest = hashlib.sha256(
                canonical_json(scenario.to_dict()).encode()
            ).hexdigest()
            if digest in seen:
                raise ConfigurationError(
                    f"runs {seen[digest]} and {index} expand into the same "
                    "scenario; drop the redundant axis value"
                )
            seen[digest] = index
            run_id = (
                f"{index:03d}-{scenario.platform}-{scenario.policy}"
                f"-s{scenario.seed}-{digest[:6]}"
            )
            runs.append(CampaignRun(index=index, run_id=run_id, scenario=scenario))
        return tuple(runs)

    def to_dict(self) -> dict:
        """JSON-serialisable form — also the CLI's spec-file format."""
        base = dict(self.base)
        if "apps" in base:
            base["apps"] = [spec.to_dict() for spec in base["apps"]]
        return {
            "name": self.name,
            "base": base,
            "axes": [ax.to_dict() for ax in self.axes],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        unknown = set(data) - {"name", "base", "axes"}
        if unknown:
            raise ConfigurationError(
                f"unknown campaign field(s) {sorted(unknown)}"
            )
        return cls(
            name=data["name"],
            axes=tuple(Axis.from_dict(ax) for ax in data.get("axes", ())),
            base=dict(data.get("base", {})),
        )
