"""Content-addressed on-disk result store.

Every completed scenario is filed under a key derived from *what produced
it*: the canonical JSON of the scenario spec plus the package version.
Re-running a campaign therefore only executes cache misses, an interrupted
campaign resumes where it stopped, and two stores populated by different
worker schedules hold byte-identical objects (the payload contains only
deterministic simulation output — never wall-clock data).

Layout under the store root::

    objects/<key[:2]>/<key>.json     one completed run (spec + result +
                                     per-run telemetry snapshot)
    attempts/<key>.attempts          crash forensics: tries without a result
    campaigns/<name>/manifest.json   per-campaign provenance manifest
    campaigns/<name>/metrics.prom    campaign-level metrics snapshot
    campaigns/<name>/telemetry.json  merged fleet telemetry snapshot
    campaigns/<name>/telemetry.prom  the same, as Prometheus exposition
    campaigns/<name>/aggregate.json  fleet aggregate (what ``obs check`` reads)
    campaigns/<name>/fleet.prom      fleet percentile gauges

Writes are atomic (temp file + ``os.replace``), so a killed worker can
never leave a half-written object behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

from repro.campaign.spec import canonical_json
from repro.errors import ConfigurationError
from repro.sim.experiment import Scenario, ScenarioResult

#: Version tag of the stored payload layout; part of the cache key, so a
#: format change can never resurrect stale objects.  /2 added the per-run
#: ``telemetry`` snapshot to the payload.
RESULT_SCHEMA = "repro.campaign.result/2"


def _repro_version() -> str:
    from repro import __version__  # deferred: repro/__init__ imports us

    return __version__


def scenario_key(scenario: Scenario) -> str:
    """Cache key: canonical hash of the scenario spec + repro version."""
    payload = {
        "schema": RESULT_SCHEMA,
        "repro_version": _repro_version(),
        "scenario": scenario.to_dict(),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


class ResultStore:
    """Content-addressed result cache rooted at one directory."""

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)

    # ------------------------------------------------------------- objects

    def object_path(self, key: str) -> pathlib.Path:
        """Where a result object for ``key`` lives (existing or not)."""
        if len(key) < 8:
            raise ConfigurationError(f"malformed store key {key!r}")
        return self.root / "objects" / key[:2] / f"{key}.json"

    def has(self, key: str) -> bool:
        """True if a completed result is cached under ``key``."""
        return self.object_path(key).exists()

    def save(
        self,
        key: str,
        scenario: Scenario,
        result: ScenarioResult,
        telemetry: dict | None = None,
    ) -> pathlib.Path:
        """Atomically file one completed run; returns the object path.

        ``telemetry`` is the run's registry snapshot
        (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`, wall-clock
        families excluded) — like the result, it must be deterministic
        simulation output so stored objects stay byte-identical across
        worker schedules.
        """
        payload = {
            "schema": RESULT_SCHEMA,
            "repro_version": _repro_version(),
            "key": key,
            "scenario": scenario.to_dict(),
            "result": result.to_dict(),
            "telemetry": telemetry,
        }
        path = self.object_path(key)
        _atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    def load_payload(self, key: str) -> dict | None:
        """The raw stored payload for ``key`` (None on a miss)."""
        path = self.object_path(key)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def load(self, key: str) -> ScenarioResult | None:
        """The cached :class:`ScenarioResult` for ``key`` (None on a miss)."""
        payload = self.load_payload(key)
        if payload is None:
            return None
        return ScenarioResult.from_dict(payload["result"])

    def load_telemetry(self, key: str) -> dict | None:
        """The cached run's telemetry snapshot (None on a miss or when the
        run was stored without one)."""
        payload = self.load_payload(key)
        if payload is None:
            return None
        return payload.get("telemetry")

    def keys(self) -> list[str]:
        """All cached object keys, sorted."""
        objects = self.root / "objects"
        if not objects.exists():
            return []
        return sorted(p.stem for p in objects.glob("*/*.json"))

    # ------------------------------------------------ crash-attempt markers

    def _attempt_path(self, key: str) -> pathlib.Path:
        return self.root / "attempts" / f"{key}.attempts"

    def attempts(self, key: str) -> int:
        """How many times a worker started this run without filing a result."""
        path = self._attempt_path(key)
        if not path.exists():
            return 0
        try:
            return int(path.read_text().strip() or 0)
        except ValueError:
            return 0

    def record_attempt(self, key: str) -> int:
        """Bump the attempt marker (workers call this before running)."""
        count = self.attempts(key) + 1
        _atomic_write_text(self._attempt_path(key), f"{count}\n")
        return count

    def clear_attempts(self, key: str) -> None:
        """Drop the attempt marker (run completed, failed cleanly, or was
        adjudicated as crashed)."""
        path = self._attempt_path(key)
        if path.exists():
            path.unlink()

    # ----------------------------------------------------------- campaigns

    def campaign_dir(self, name: str) -> pathlib.Path:
        """Directory holding one campaign's manifest and metrics."""
        return self.root / "campaigns" / name

    def manifest_path(self, name: str) -> pathlib.Path:
        """Path of one campaign's manifest (existing or not)."""
        return self.campaign_dir(name) / "manifest.json"

    def telemetry_path(self, name: str) -> pathlib.Path:
        """Path of one campaign's merged telemetry snapshot."""
        return self.campaign_dir(name) / "telemetry.json"

    def aggregate_path(self, name: str) -> pathlib.Path:
        """Path of one campaign's fleet aggregate."""
        return self.campaign_dir(name) / "aggregate.json"

    def load_aggregate(self, name: str) -> dict | None:
        """A previously written fleet aggregate (None if never run)."""
        path = self.aggregate_path(name)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def load_campaign_manifest(self, name: str) -> dict | None:
        """A previously written campaign manifest (None if never run)."""
        path = self.manifest_path(name)
        if not path.exists():
            return None
        return json.loads(path.read_text())
