"""Built-in campaigns: existing ablations ported onto the runner.

Each preset returns a :class:`~repro.campaign.spec.CampaignSpec` mirroring
a sweep the repository already performs serially elsewhere:

* :func:`governor_horizon_campaign` — the prediction-horizon ablation of
  ``benchmarks/bench_ablation_governor_params.py`` (game + background BML
  on the Odroid-XU3 under the proposed governor);
* :func:`table1_seed_campaign` — the paper's Table I grid (each catalog
  app alone on the Nexus 6P, with and without thermal management) swept
  across seeds;
* :func:`smoke_campaign` — a four-run miniature for CI and the
  ``make campaign-smoke`` target;
* :func:`platform_matrix_campaign` — one short stock-policy run on every
  platform in :mod:`repro.soc.registry`, proving that data-defined
  devices sweep through campaigns with no campaign-code changes;
* :func:`chaos_campaign` — every built-in fault plan against both the
  stock and the (hardened) proposed governor on every registered
  platform, the grid behind the resilience report and the acceptance
  property that hardening never *worsens* the peak temperature;
* :func:`fan_stop_campaign` — the fan-stop plan against a deliberately
  tight limit, unmanaged vs hardened: the seeded-breach grid the
  ``chaos-hardening`` SLO spec must flag (``repro obs check``).

Presets are looked up by name through :data:`PRESETS` (the CLI's
``--preset`` choices).  Platform names come from the registry's exported
constants — no layer of the campaign system spells device strings.
"""

from __future__ import annotations

from repro.apps.catalog import popular_app_names
from repro.campaign.spec import FAULTS_AXIS, Axis, CampaignSpec
from repro.faults.plan import builtin_plan_names
from repro.sim.experiment import AppSpec
from repro.soc.exynos5422 import ODROID_XU3
from repro.soc.registry import platform_names
from repro.soc.snapdragon810 import NEXUS6P


def governor_horizon_campaign(
    horizons_s: tuple[float, ...] = (10.0, 30.0, 60.0, 120.0),
    duration_s: float = 150.0,
    seed: int = 3,
    t_limit_c: float = 60.0,
) -> CampaignSpec:
    """The governor-parameter ablation as a campaign.

    Sweeps the application-aware governor's prediction horizon on the
    3DMark-like foreground + BML background scenario: longer horizons act
    earlier and cap the peak temperature, while the foreground frame rate
    stays protected in every configuration.
    """
    return CampaignSpec(
        name="governor-horizon",
        base={
            "platform": ODROID_XU3,
            "apps": (AppSpec.catalog("stickman"), AppSpec.batch("bml")),
            "policy": "proposed",
            "duration_s": duration_s,
            "seed": seed,
            "governor": {"t_limit_c": t_limit_c},
        },
        axes=(Axis("governor.horizon_s", tuple(horizons_s)),),
    )


def table1_seed_campaign(
    seeds: tuple[int, ...] = (1, 2, 3),
    duration_s: float = 120.0,
) -> CampaignSpec:
    """The paper's Table I grid swept across seeds.

    Every catalog app runs alone on the Nexus 6P twice per seed: without
    thermal management (``none`` — the table's "FPS w/o" column) and under
    the stock trip governor (``stock`` — "FPS w/").
    """
    return CampaignSpec(
        name="table1-seeds",
        base={"platform": NEXUS6P, "duration_s": duration_s},
        axes=(
            Axis(
                "apps",
                tuple((AppSpec.catalog(name),) for name in popular_app_names()),
            ),
            Axis("policy", ("none", "stock")),
            Axis("seed", tuple(seeds)),
        ),
    )


def smoke_campaign(duration_s: float = 8.0) -> CampaignSpec:
    """Four short Odroid runs — the CI smoke campaign."""
    return CampaignSpec(
        name="smoke",
        base={
            "platform": ODROID_XU3,
            "apps": (AppSpec.catalog("stickman"), AppSpec.batch("bml")),
            "duration_s": duration_s,
        },
        axes=(
            Axis("policy", ("none", "stock")),
            Axis("seed", (3, 4)),
        ),
    )


def platform_matrix_campaign(duration_s: float = 8.0) -> CampaignSpec:
    """One short stock-policy run on every registered platform.

    The platform axis is read from the registry at expansion time, so a
    newly registered device definition joins this sweep automatically.
    """
    return CampaignSpec(
        name="platform-matrix",
        base={
            "apps": (AppSpec.catalog("stickman"),),
            "policy": "stock",
            "duration_s": duration_s,
        },
        axes=(Axis("platform", platform_names()),),
    )


def chaos_campaign(
    duration_s: float = 25.0,
    seed: int = 3,
) -> CampaignSpec:
    """Every built-in fault plan x policy x platform — the chaos grid.

    The game + background-BML mix runs long enough for each plan's fault
    window to open, act and (where the plan closes it) heal.  Each policy
    targets its platform's own limit (the proposed governor defaults to the
    definition's ``software.t_limit_c``, the stock policy to its registered
    trip table); comparing the ``stock`` and ``proposed`` rows per
    (platform, plan) cell yields the resilience report and checks the
    hardening acceptance property: the hardened governor's excess over the
    platform limit never exceeds stock's.
    """
    return CampaignSpec(
        name="chaos",
        base={
            "apps": (AppSpec.catalog("stickman"), AppSpec.batch("bml")),
            "duration_s": duration_s,
            "seed": seed,
        },
        axes=(
            Axis("platform", platform_names()),
            Axis("policy", ("stock", "proposed")),
            Axis(FAULTS_AXIS, builtin_plan_names()),
        ),
    )


def fan_stop_campaign(
    duration_s: float = 40.0,
    seed: int = 3,
    t_limit_c: float = 55.0,
) -> CampaignSpec:
    """The fan-stop chaos grid: unmanaged vs hardened under a dying fan.

    The game + background-BML mix on the Odroid-XU3 with the fan pinned at
    20 % throughput mid-run, against a deliberately tight thermal limit.
    The ``none`` row overshoots that limit by many degrees — the seeded
    breach the ``chaos-hardening`` SLO spec (``repro obs check``) must
    flag — while the hardened ``proposed`` row detects the fault and rides
    it out in failsafe.
    """
    return CampaignSpec(
        name="fan-stop",
        base={
            "platform": ODROID_XU3,
            "apps": (AppSpec.catalog("stickman"), AppSpec.batch("bml")),
            "duration_s": duration_s,
            "seed": seed,
            "t_limit_c": t_limit_c,
            "faults": "fan-stop",
        },
        axes=(Axis("policy", ("none", "proposed")),),
    )


#: Name → factory, as exposed by ``repro campaign --preset``.
PRESETS = {
    "chaos": chaos_campaign,
    "fan-stop": fan_stop_campaign,
    "governor-horizon": governor_horizon_campaign,
    "platform-matrix": platform_matrix_campaign,
    "smoke": smoke_campaign,
    "table1-seeds": table1_seed_campaign,
}
