"""``repro.campaign`` — parallel, cached, resumable experiment campaigns.

The paper's evaluation is a grid — platforms x policies x apps x seeds —
and the follow-on governor/ambient sweeps have the same shape.  This
package turns such grids into first-class objects:

* :mod:`repro.campaign.spec` — the declarative grid language
  (:class:`Axis`, :class:`CampaignSpec`) expanding into frozen
  :class:`~repro.sim.experiment.Scenario` runs with stable ids;
* :mod:`repro.campaign.store` — a content-addressed on-disk result store
  (key = canonical hash of the scenario spec + repro version), so
  re-running a campaign executes only cache misses and an interrupted
  campaign resumes where it stopped;
* :mod:`repro.campaign.runner` — a ``ProcessPoolExecutor`` fan-out with
  per-run fault isolation and timeouts, campaign-level metrics, a
  provenance manifest, and the cross-process telemetry pipeline: each
  worker ships its run's registry snapshot, merged into fleet aggregates
  and SLO-gated through :mod:`repro.obs.telemetry`;
* :mod:`repro.campaign.presets` — existing ablations ported onto the
  runner (also the CLI's ``--preset`` choices).

See ``docs/CAMPAIGNS.md`` for the spec language, cache layout, resume
semantics and failure records, and ``repro campaign --help`` for the CLI.
"""

from repro.campaign.presets import PRESETS
from repro.campaign.runner import (
    CampaignReport,
    CampaignRunner,
    RunFailure,
    RunRecord,
)
from repro.campaign.spec import Axis, CampaignRun, CampaignSpec
from repro.campaign.store import ResultStore, scenario_key

__all__ = [
    "PRESETS",
    "Axis",
    "CampaignReport",
    "CampaignRun",
    "CampaignRunner",
    "CampaignSpec",
    "ResultStore",
    "RunFailure",
    "RunRecord",
    "scenario_key",
]
