"""Fault injection in one platform: stuck sensor vs the hardened governor.

Runs a short fault-injection sweep on the Odroid-XU3 — every built-in
fault plan, stock and hardened proposed policies — and prints the
resilience report: peak temperature, excess over the thermal limit,
worst frame rate and failsafe residency per cell (docs/FAULTS.md).

Run with:  python examples/chaos_sweep.py
"""

import tempfile

from repro.campaign import Axis, CampaignRunner, CampaignSpec, ResultStore
from repro.campaign.spec import FAULTS_AXIS
from repro.faults import builtin_plan_names
from repro.faults.report import resilience_report
from repro.sim.experiment import AppSpec


def build_spec() -> CampaignSpec:
    return CampaignSpec(
        name="example-chaos",
        base={
            "platform": "odroid-xu3",
            "apps": (AppSpec.catalog("stickman"), AppSpec.batch("bml")),
            "duration_s": 10.0,
            "seed": 3,
        },
        axes=(
            Axis("policy", ("stock", "proposed")),
            Axis(FAULTS_AXIS, builtin_plan_names()),
        ),
    )


def main() -> None:
    spec = build_spec()
    with tempfile.TemporaryDirectory() as root:
        runner = CampaignRunner(spec, ResultStore(root), jobs=2)
        campaign = runner.run()
        print(campaign.render_text())
        print()

        report = resilience_report(runner.runs, runner.results())
        print(report.render_text())


if __name__ == "__main__":
    main()
