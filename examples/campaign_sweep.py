"""A parallel, cached scenario campaign, via the declarative grid API.

Expands a policy x seed grid into frozen scenarios, fans them out over
worker processes, and shows the content-addressed store at work: the
second invocation finds every run cached and simulates nothing.

Run with:  python examples/campaign_sweep.py
"""

import tempfile

from repro.analysis.tables import render_table
from repro.campaign import Axis, CampaignRunner, CampaignSpec, ResultStore
from repro.sim.experiment import AppSpec


def build_spec() -> CampaignSpec:
    return CampaignSpec(
        name="example-sweep",
        base={
            "platform": "odroid-xu3",
            "apps": (AppSpec.catalog("stickman"), AppSpec.batch("bml")),
            "duration_s": 8.0,
        },
        axes=(
            Axis("policy", ("none", "stock")),
            Axis("seed", (1, 2, 3)),
        ),
    )


def main() -> None:
    spec = build_spec()
    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)

        report = CampaignRunner(spec, store, jobs=2).run()
        print(report.render_text())

        # Same spec, same store: everything is a cache hit.
        rerun = CampaignRunner(spec, store, jobs=2).run()
        cached = rerun.count("cached")
        print(f"\nre-run: {cached}/{len(rerun.records)} run(s) served "
              "from the store, zero simulations\n")

        runner = CampaignRunner(spec, store)
        rows = [
            [run_id, result.policy, f"{result.peak_temp_c:.1f}",
             f"{result.mean_power_w:.2f}"]
            for run_id, result in sorted(runner.results().items())
        ]
        print(render_table(
            ["run", "policy", "peak T (degC)", "battery W"], rows,
            title=f"Campaign {spec.name}: results",
        ))


if __name__ == "__main__":
    main()
