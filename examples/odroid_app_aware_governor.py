"""Reproduce the paper's Section IV.C on the simulated Odroid-XU3.

Runs 3DMark under three scenarios — alone, with MiBench basicmath-large
(BML) in the background under the stock IPA policy, and with BML under the
proposed application-aware governor — then prints Table II, the Figure 8
temperature summary and the Figure 9 power breakdowns, plus the governor's
migration decisions.

Run with:  python examples/odroid_app_aware_governor.py  [--seed N]
"""

import argparse

from repro.analysis.tables import render_table
from repro.experiments.odroid import (
    INA_RAILS,
    SCENARIOS,
    figure8,
    figure9,
    run_3dmark,
    table2,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    rows = table2(seed=args.seed)
    print(render_table(
        ["Test", "Alone", "+BML", "+BML proposed", "unit"],
        [[r.test, r.alone, r.with_bml, r.with_proposed, r.unit] for r in rows],
        title="Table II: application performance under the three scenarios",
    ))

    print("\nFigure 8: maximum SoC temperature (degC)")
    for scenario, series in figure8(seed=args.seed).items():
        print(f"  {scenario:13s}: t=50s {series.at(50):5.1f}  "
              f"t=150s {series.at(150):5.1f}  end {series.final():5.1f}  "
              f"max {series.max():5.1f}")

    print("\nFigure 9: average power distribution (INA231 rails)")
    for scenario, pie in figure9(seed=args.seed).items():
        shares = "  ".join(
            f"{rail}={pie.share_pct(rail):4.1f}%" for rail in INA_RAILS
        )
        print(f"  {scenario:13s}: total {pie.total_w:4.2f} W   {shares}")

    run = run_3dmark("bml_proposed", seed=args.seed)
    print("\nGovernor decisions (proposed scenario):")
    for time_s, direction in run.migrations:
        print(f"  t={time_s:6.1f}s  bml {direction}")
    print(f"  BML finished on cluster: {run.bml_final_cluster}, "
          f"progress {run.bml_progress_gcycles:.0f} Gcycles")


if __name__ == "__main__":
    main()
