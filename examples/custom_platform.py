"""Build a *custom* platform and run the paper's analysis pipeline on it.

This example shows the library as a tool rather than a fixed reproduction:
define a hypothetical two-cluster SoC in a tablet enclosure, identify its
lumped stability parameters, compute its critical power and safe budget,
and let the application-aware governor protect a foreground app against a
background hog.

Run with:  python examples/custom_platform.py
"""

from repro.apps import BatchApp, FrameApp, FrameWorkload
from repro.core import (
    ApplicationAwareGovernor,
    GovernorConfig,
    critical_power_w,
    lump_platform,
    safe_power_budget_w,
)
from repro.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.components import ClusterSpec, GpuSpec, LeakageParams, MemorySpec
from repro.soc.opp import OppTable
from repro.soc.platform import PlatformSpec
from repro.thermal.rc_network import (
    AMBIENT,
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)
from repro.thermal.sensors import SensorSpec
from repro.units import celsius_to_kelvin, mhz


def build_tablet() -> PlatformSpec:
    """A hypothetical 2+4 tablet SoC with a large passive chassis."""
    leak = LeakageParams(kappa_w_per_k2=4.0e-4, beta_k=1700.0)
    big = ClusterSpec(
        name="perf",
        core_type="Custom-P",
        n_cores=2,
        opps=OppTable.from_pairs(
            [(mhz(f), 0.80 + 0.25 * (f - 600) / 2200) for f in
             (600, 1000, 1400, 1800, 2200, 2800)]
        ),
        ceff_w_per_v2hz=5.0e-10,
        leakage=leak,
        thermal_node="soc",
        rail="perf",
        is_big=True,
        ipc=2.2,
    )
    little = ClusterSpec(
        name="eff",
        core_type="Custom-E",
        n_cores=4,
        opps=OppTable.from_pairs(
            [(mhz(f), 0.70 + 0.2 * (f - 400) / 1400) for f in
             (400, 800, 1200, 1800)]
        ),
        ceff_w_per_v2hz=9.0e-11,
        leakage=LeakageParams(kappa_w_per_k2=1.0e-4, beta_k=1700.0),
        thermal_node="soc",
        rail="eff",
        ipc=1.2,
    )
    gpu = GpuSpec(
        name="igpu",
        gpu_type="Custom-G",
        opps=OppTable.from_pairs(
            [(mhz(f), 0.75 + 0.25 * (f - 300) / 600) for f in
             (300, 500, 700, 900)]
        ),
        ceff_w_per_v2hz=1.8e-9,
        leakage=LeakageParams(kappa_w_per_k2=2.0e-4, beta_k=1700.0),
        thermal_node="soc",
        rail="igpu",
    )
    thermal = ThermalNetworkSpec(
        nodes=(
            ThermalNodeSpec("soc", 3.0),
            ThermalNodeSpec("chassis", 40.0),
        ),
        links=(
            ThermalLinkSpec("soc", "chassis", 0.8),
            ThermalLinkSpec("chassis", AMBIENT, 0.15),
        ),
        power_split={
            "perf": {"soc": 1.0},
            "eff": {"soc": 1.0},
            "igpu": {"soc": 1.0},
            "mem": {"chassis": 1.0},
            "board": {"chassis": 1.0},
        },
    )
    return PlatformSpec(
        name="custom-tablet",
        clusters=(little, big),
        gpu=gpu,
        memory=MemorySpec(thermal_node="chassis", rail="mem"),
        thermal=thermal,
        sensors=(SensorSpec("soc", node="soc"),),
        board_power_w=2.0,
        default_ambient_c=24.0,
    )


def main() -> None:
    platform = build_tablet()
    game = FrameApp(
        "game",
        FrameWorkload(cpu_cycles_per_frame=12e6, gpu_cycles_per_frame=10e6,
                      target_fps=60.0, sigma=0.15),
    )
    hog = BatchApp("miner", n_threads=2)
    sim = Simulation(platform, [game, hog], kernel_config=KernelConfig(), seed=5)

    # Identify the lumped stability model from the (simulated) plant.
    params = lump_platform(platform, sim.thermal)
    print(f"Identified lumped model: R={params.r_k_per_w:.2f} K/W, "
          f"C={params.c_j_per_k:.2f} J/K, kappa={params.kappa_w_per_k2:.2e}, "
          f"beta={params.beta_k:.0f} K")
    print(f"Critical power: {critical_power_w(params):.2f} W")
    limit_k = celsius_to_kelvin(60.0)
    print(f"Safe dynamic power at 60 degC: "
          f"{safe_power_budget_w(params, limit_k):.2f} W")

    # Protect the game; let the governor demote the miner when needed.
    governor = ApplicationAwareGovernor.for_simulation(
        sim, GovernorConfig(t_limit_c=60.0, horizon_s=180.0), params=params
    )
    for pid in game.pids():
        governor.registry.register(pid, "game")
    governor.install(sim.kernel)

    sim.run(180.0)

    print(f"\nGame median FPS: {game.fps.median_fps(start_s=5.0):.0f}")
    print(f"Miner progress: {hog.progress_gigacycles():.0f} Gcycles "
          f"(now on {sim.kernel.task_cluster(hog.pid)!r})")
    _, soc_temps = sim.traces.series("temp.soc")
    print(f"Peak SoC temperature: {soc_temps.max():.1f} degC")
    for event in governor.events:
        print(f"Governor: t={event.time_s:.1f}s moved {event.name!r} "
              f"{event.direction} (attributed {event.attributed_power_w:.2f} W)")


if __name__ == "__main__":
    main()
