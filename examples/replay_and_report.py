"""Record-and-replay workflow plus the one-shot run report.

1. Profile a stochastic game session into a per-frame trace CSV (the kind
   of data systrace/gfxinfo would give you on a real phone).
2. Replay the exact trace on the simulated Odroid-XU3 — now the workload is
   reproducible sample-for-sample.
3. Print a full markdown report of the replay run and export the trace
   channels to CSV for plotting.

Run with:  python examples/replay_and_report.py
"""

import csv
import pathlib
import tempfile

from repro import Simulation, odroid_xu3
from repro.analysis import summarize_run, traces_to_csv
from repro.apps import FrameApp, FrameWorkload, GAME_PHASES
from repro.apps.replay import ReplayApp
from repro.kernel import KernelConfig


def record_trace(path: pathlib.Path, duration_s: float = 30.0) -> int:
    """Run a phase-switching game and record its frames to ``path``."""
    app = RecordingGame()
    sim = Simulation(odroid_xu3(), [app], kernel_config=KernelConfig(), seed=9)
    sim.run(duration_s)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["start_offset_s", "cpu_cycles", "gpu_cycles"])
        for offset, cpu, gpu in app.recorded:
            writer.writerow([f"{offset:.4f}", f"{cpu:.0f}", f"{gpu:.0f}"])
    return len(app.recorded)


class RecordingGame(FrameApp):
    """A game that remembers every frame it issued."""

    def __init__(self) -> None:
        super().__init__(
            "recorder",
            FrameWorkload(
                cpu_cycles_per_frame=6e6, gpu_cycles_per_frame=7e6,
                target_fps=60.0, sigma=0.2,
            ),
            phases=GAME_PHASES,
        )
        self.recorded: list[tuple[float, float, float]] = []
        self._pending_cpu: dict[int, float] = {}
        self._pending_t: dict[int, float] = {}

    def _begin_frame(self, now_s: float) -> None:
        frame_id = self._frame_id + 1
        cpu_mean, _ = self._mean_cycles(now_s)
        cost = self._draw_cost(cpu_mean, now_s)
        self._pending_cpu[frame_id] = cost
        self._pending_t[frame_id] = now_s
        self._frame_id = frame_id
        self._in_flight += 1
        self._task.add_work(cost, tag=(self.name, frame_id, "cpu"))

    def on_cpu_complete(self, tag: tuple, now_s: float) -> None:
        _, frame_id, _stage = tag
        _, gpu_mean = self._mean_cycles(now_s)
        gpu_cost = self._draw_cost(gpu_mean, now_s)
        self.recorded.append(
            (self._pending_t.pop(frame_id), self._pending_cpu.pop(frame_id),
             gpu_cost)
        )
        self.ctx.kernel.gpu.submit(
            self.name, gpu_cost, tag=(self.name, frame_id, "gpu")
        )


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-replay-"))
    trace_path = workdir / "frames.csv"
    n = record_trace(trace_path)
    print(f"Recorded {n} frames to {trace_path}")

    replay = ReplayApp.from_csv("replay", trace_path, pipeline_depth=3)
    sim = Simulation(odroid_xu3(), [replay], kernel_config=KernelConfig(), seed=1)
    sim.run(35.0, until=lambda s: replay.finished)
    print(f"Replayed {replay.fps.frame_count} frames "
          f"(median {replay.fps.median_fps(start_s=2.0):.0f} FPS)\n")

    print(summarize_run(sim, title="Replay run report"))

    out_csv = workdir / "channels.csv"
    rows = traces_to_csv(
        sim.traces, out_csv,
        channels=["temp.big", "temp.gpu", "power.total", "freq.gpu"],
    )
    print(f"Exported {rows} rows of trace channels to {out_csv}")


if __name__ == "__main__":
    main()
