"""Tour of the virtual /sys and /proc interface.

The proposed governor is a *userspace* program: everything it knows comes
from sysfs/procfs reads, and everything it does goes through
sched_setaffinity.  This example pokes the same interface by hand — the
same code would run against a real board with ``pathlib`` reads instead.

Run with:  python examples/userspace_sysfs_tour.py
"""

from repro import Simulation, odroid_xu3
from repro.apps import basicmath_large
from repro.kernel import KernelConfig


def main() -> None:
    bml = basicmath_large()
    sim = Simulation(odroid_xu3(), [bml], kernel_config=KernelConfig(), seed=1)
    sim.run(5.0)
    fs = sim.kernel.fs

    print("cpufreq policies:")
    for policy in ("policy0", "policy4"):
        base = f"/sys/devices/system/cpu/cpufreq/{policy}"
        print(f"  {policy}: governor={fs.read(base + '/scaling_governor')} "
              f"cur={fs.read_int(base + '/scaling_cur_freq')} kHz "
              f"(cpus {fs.read(base + '/affected_cpus')})")

    print("\nGPU devfreq:")
    print(f"  governor={fs.read('/sys/class/devfreq/gpu/governor')} "
          f"cur={fs.read_int('/sys/class/devfreq/gpu/cur_freq') // 1000000} MHz")

    print("\nthermal zones:")
    index = 0
    while fs.exists(f"/sys/class/thermal/thermal_zone{index}/type"):
        base = f"/sys/class/thermal/thermal_zone{index}"
        print(f"  zone{index}: {fs.read(base + '/type'):8s} "
              f"{fs.read_int(base + '/temp') / 1000.0:.1f} degC")
        index += 1

    print("\nINA231 power monitors:")
    for domain, addr in sim.platform.extras["ina231"].items():
        watts = fs.read_float(f"/sys/bus/i2c/drivers/INA231/{addr}/sensor_W")
        print(f"  {addr} ({domain:4s}): {watts:.3f} W")

    print("\n/proc for the background task:")
    pid = bml.pid
    print(f"  comm: {fs.read(f'/proc/{pid}/comm')}")
    for line in fs.read(f"/proc/{pid}/sched").splitlines():
        print(f"  {line}")

    # Userspace control: cap the big cluster, then migrate the task.
    print("\ncapping big cluster to 1 GHz via scaling_max_freq ...")
    fs.write("/sys/devices/system/cpu/cpufreq/policy4/scaling_max_freq", 1000000)
    sim.run(2.0)
    cur = fs.read_int("/sys/devices/system/cpu/cpufreq/policy4/scaling_cur_freq")
    print(f"  policy4 now at {cur} kHz")

    api = sim.kernel.userspace_api()
    api.set_affinity(pid, api.little_cluster)
    sim.run(2.0)
    print(f"  {fs.read(f'/proc/{pid}/comm')} now on: "
          f"{sim.kernel.task_cluster(pid)}")


if __name__ == "__main__":
    main()
