"""Three thermal policies on one app mix, via the declarative Scenario API.

One call compares: no thermal management, the platform's stock kernel
policy, and the paper's application-aware governor, on any platform and
app mix.

Run with:  python examples/policy_comparison.py [--platform odroid-xu3]
"""

import argparse

from repro.analysis.tables import render_table
from repro.sim.experiment import AppSpec, compare_policies


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--platform", default="odroid-xu3", choices=("nexus6p", "odroid-xu3")
    )
    parser.add_argument("--duration", type=float, default=90.0)
    args = parser.parse_args()

    apps = (AppSpec.catalog("stickman"), AppSpec.batch("bml"))
    limit_c = 41.0 if args.platform == "nexus6p" else 70.0
    results = compare_policies(
        args.platform, apps, duration_s=args.duration, t_limit_c=limit_c
    )

    rows = []
    for policy, result in results.items():
        rows.append(
            [
                policy,
                result.fps.get("stickman", float("nan")),
                result.peak_temp_c,
                result.mean_power_w,
                len(result.governor_events),
            ]
        )
    print(render_table(
        ["policy", "game FPS", "peak T (degC)", "battery W", "gov. actions"],
        rows,
        title=f"Policy comparison on {args.platform} "
              f"(stickman + BML, limit {limit_c:.0f} degC)",
    ))
    proposed = results["proposed"]
    for time_s, name, direction in proposed.governor_events:
        print(f"proposed governor: t={time_s:.1f}s {name} {direction}")


if __name__ == "__main__":
    main()
