"""Will my app get throttled?  The developer advisor in action.

The paper closes by noting its case study "can be used by application
developers to optimize their apps such that they do not experience thermal
throttling."  This example profiles two catalog apps on the Nexus 6P model
and asks the advisor for a verdict against the phone's 40 degC package
limit — then checks the verdict by actually enabling the stock governor.

Run with:  python examples/developer_advisor.py
"""

from repro import Simulation, nexus6p
from repro.apps import make_app
from repro.core.advisor import advise, render_advice
from repro.experiments.nexus import nexus_thermal_config
from repro.kernel import KernelConfig

PROFILE_S = 60.0
LIMIT_C = 40.0


def profile(app_name: str) -> Simulation:
    """Unconstrained profiling run (no thermal governor)."""
    sim = Simulation(
        nexus6p(), [make_app(app_name)], kernel_config=KernelConfig(), seed=3
    )
    sim.run(PROFILE_S)
    return sim


def measured_with_governor(app_name: str) -> float:
    """Ground truth: median FPS with the stock governor enabled."""
    sim = Simulation(
        nexus6p(), [make_app(app_name)],
        kernel_config=KernelConfig(thermal=nexus_thermal_config()), seed=3,
    )
    sim.run(140.0)
    return sim.app(app_name).fps.median_fps(start_s=5.0)


def main() -> None:
    for app_name in ("paperio", "hangouts"):
        sim = profile(app_name)
        report = advise(sim, app_name, t_limit_c=LIMIT_C)
        print(render_advice(report))
        actual = measured_with_governor(app_name)
        print(f"  ground truth with the stock governor: {actual:.0f} FPS\n")


if __name__ == "__main__":
    main()
