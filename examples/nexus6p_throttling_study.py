"""Reproduce the paper's Section III on the simulated Nexus 6P.

Runs each of the five popular Play-Store apps twice (stock thermal governor
disabled / enabled), then prints Table I and the per-app temperature and
GPU/CPU-residency summaries behind Figures 1-6.

Run with:  python examples/nexus6p_throttling_study.py  [--seed N]
"""

import argparse

from repro.analysis.tables import render_table
from repro.experiments.nexus import (
    residency_comparison,
    table1,
    temperature_profiles,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    rows = table1(seed=args.seed)
    print(render_table(
        ["App", "FPS w/o", "FPS w/", "Reduction %", "paper w/o", "paper w/"],
        [[r.app, r.fps_without, r.fps_with, r.reduction_pct,
          r.paper_fps_without, r.paper_fps_with] for r in rows],
        title="Table I: median frame rate with and without throttling",
    ))

    for app in ("paperio", "stickman", "amazon"):
        base, throttled = temperature_profiles(app, seed=args.seed)
        print(f"\n{app}: package temperature (degC)")
        print(f"  without throttling: start {base.at(0):.1f}, "
              f"end {base.final():.1f}, max {base.max():.1f}")
        print(f"  with throttling:    start {throttled.at(0):.1f}, "
              f"end {throttled.final():.1f}, max {throttled.max():.1f}")

        res_base, res_throttled, domain = residency_comparison(
            app, seed=args.seed
        )
        print(f"  {domain} residencies (MHz: w/o% -> w/%):")
        for khz in sorted(res_base):
            b = res_base.get(khz, 0.0) * 100.0
            t = res_throttled.get(khz, 0.0) * 100.0
            if b > 1.0 or t > 1.0:
                print(f"    {khz // 1000:5d}: {b:5.1f} -> {t:5.1f}")


if __name__ == "__main__":
    main()
