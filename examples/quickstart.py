"""Quickstart: stability analysis + a first simulation in ~40 lines.

Run with:  python examples/quickstart.py
"""

from repro import ODROID_XU3_LUMPED, Simulation, analyze, critical_power_w, odroid_xu3
from repro.apps import ThreeDMarkApp
from repro.kernel import KernelConfig
from repro.units import kelvin_to_celsius


def main() -> None:
    # --- 1. The paper's power-temperature stability analysis --------------
    params = ODROID_XU3_LUMPED
    print(f"Critical power of the Odroid-XU3 (fan off): "
          f"{critical_power_w(params):.2f} W")
    for p_dyn in (2.0, 5.5, 8.0):
        report = analyze(params, p_dyn)
        if report.stable_temp_k is not None:
            print(f"  P_dyn = {p_dyn:3.1f} W -> {report.classification.value:9s}"
                  f"  T_ss = {kelvin_to_celsius(report.stable_temp_k):6.1f} degC")
        else:
            print(f"  P_dyn = {p_dyn:3.1f} W -> {report.classification.value:9s}"
                  f"  (thermal runaway)")

    # --- 2. A full-system simulation: 3DMark on the Odroid-XU3 ------------
    mark = ThreeDMarkApp(gt1_duration_s=30.0, gt2_duration_s=30.0)
    sim = Simulation(odroid_xu3(), [mark], kernel_config=KernelConfig(), seed=1)
    sim.run(60.0)

    print(f"\n3DMark GT1: {mark.gt1_fps(settle_s=5.0):.0f} FPS, "
          f"GT2: {mark.gt2_fps(settle_s=5.0):.0f} FPS")
    temps = {n: f"{kelvin_to_celsius(t):.1f}" for n, t in
             sim.thermal.temperatures_k().items()}
    print(f"Final temperatures (degC): {temps}")
    freqs = {d: f"{f / 1e6:.0f} MHz" for d, f in
             sim.kernel.current_freqs_hz().items()}
    print(f"Final frequencies: {freqs}")


if __name__ == "__main__":
    main()
