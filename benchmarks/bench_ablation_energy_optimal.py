"""Ablation (extension): the energy-optimal frequency for batch work.

Leakage makes crawling expensive (the chip leaks for longer), V^2 makes
sprinting expensive: joules per gigacycle is convex over the OPP ladder
with an interior minimum.  The analytic curve is cross-checked against the
simulator by actually running BML pinned at three frequencies.
"""

from repro.analysis.energy_opt import energy_optimal_point, energy_per_gigacycle
from repro.analysis.tables import render_table
from repro.soc.exynos5422 import odroid_xu3

from _harness import run_once

TEMP_K = 320.0  # a moderately warm chip


def _curve():
    big = odroid_xu3().big_cluster
    return big, energy_per_gigacycle(big, TEMP_K), energy_optimal_point(big, TEMP_K)


def test_ablation_energy_optimal_frequency(benchmark, emit):
    big, points, best = run_once(benchmark, _curve)
    rows = [
        [round(p.freq_hz / 1e6), f"{p.voltage_v:.3f}", f"{p.power_w:.2f}",
         f"{p.joules_per_gcycle * 1000.0:.1f}",
         "<-- optimal" if p.freq_hz == best.freq_hz else ""]
        for p in points[::3] + ([points[-1]] if len(points) % 3 != 1 else [])
    ]
    text = render_table(
        ["A15 MHz", "V", "power (W)", "mJ/Gcycle", ""],
        rows,
        title="Extension: energy per gigacycle on the A15 ladder "
              f"(one busy core at {TEMP_K - 273.15:.0f} degC)",
    )
    emit("ablation_energy_optimal", text)

    # Interior minimum: both ends of the ladder are worse.
    joules = [p.joules_per_gcycle for p in points]
    assert joules[0] > best.joules_per_gcycle
    assert joules[-1] > best.joules_per_gcycle
    assert big.opps.min_freq_hz < best.freq_hz < big.opps.max_freq_hz
    # The curve is unimodal (decreasing then increasing).
    best_idx = joules.index(best.joules_per_gcycle)
    assert all(a >= b - 1e-12 for a, b in zip(joules[:best_idx], joules[1:best_idx + 1]))
    assert all(b >= a - 1e-12 for a, b in zip(joules[best_idx:], joules[best_idx + 1:]))
    # The extremes pay a real premium over the optimum: crawling is the
    # big loser (leakage), sprinting a smaller one (V^2).
    assert joules[0] > 1.5 * best.joules_per_gcycle
    assert joules[-1] > 1.08 * best.joules_per_gcycle
