"""Figure 7: fixed-point functions at 2 / 5.5 / 8 W (Odroid-XU3 parameters).

Paper shape: the function is concave over the auxiliary-temperature axis;
at 2 W it crosses zero twice (unstable + stable fixed points), at 5.5 W the
roots merge (critically stable), at 8 W it stays below zero (no fixed
points: thermal runaway).  Increasing power moves the curve down.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.experiments.fig7 import figure7

from _harness import run_once


def test_fig7_fixed_point_functions(benchmark, emit):
    curves = run_once(benchmark, figure7)

    rows = []
    for curve in curves:
        report = curve.report
        rows.append(
            [
                curve.p_dyn_w,
                report.classification.value,
                "-" if report.unstable_aux is None else f"{report.unstable_aux:.2f}",
                "-" if report.stable_aux is None else f"{report.stable_aux:.2f}",
                "-" if report.stable_temp_k is None
                else f"{report.stable_temp_k - 273.15:.1f}",
            ]
        )
    text = render_table(
        ["P_dyn (W)", "class", "x_unstable", "x_stable", "T_stable (degC)"],
        rows,
        title="Figure 7: fixed-point analysis at the paper's three powers",
    )
    emit("fig7_fixed_point", text)

    by_power = {c.p_dyn_w: c for c in curves}
    # Root structure: 2 / merged / 0.
    assert by_power[2.0].n_roots == 2
    assert by_power[8.0].n_roots == 0
    crit = by_power[5.5]
    if crit.n_roots == 2:
        assert crit.report.stable_aux - crit.report.unstable_aux < 0.15
    # Concavity of every curve on the plotted grid.
    for curve in curves:
        assert (np.diff(curve.f, 2) < 1e-9).all()
    # The curve moves down with power.
    assert (by_power[5.5].f < by_power[2.0].f).all()
    assert (by_power[8.0].f < by_power[5.5].f).all()
    # At 8 W the function never touches zero.
    assert by_power[8.0].f.max() < 0.0
