"""Smoke benchmark (extension): campaign parallel speedup.

Runs the same 8-scenario campaign twice into fresh stores — serially and
with four worker processes — and asserts the two properties the campaign
subsystem promises: the parallel run is meaningfully faster on a
multi-core host, and the stored result objects are byte-identical
whatever the worker count.
"""

import os
import pathlib
import tempfile
import time

from repro.analysis.tables import render_table
from repro.campaign import Axis, CampaignRunner, CampaignSpec, ResultStore
from repro.sim.experiment import AppSpec

from _harness import run_once

#: 8 scenarios x ~60 simulated seconds: enough work for the pool
#: overheads to amortise, small enough for a smoke benchmark.
SPEC = CampaignSpec(
    name="speedup-smoke",
    base={
        "platform": "odroid-xu3",
        "apps": (AppSpec.catalog("stickman"), AppSpec.batch("bml")),
        "duration_s": 60.0,
    },
    axes=(
        Axis("policy", ("none", "stock")),
        Axis("seed", (1, 2)),
        Axis("ambient_c", (25.0, 30.0)),
    ),
)


def _timed_campaign(root: pathlib.Path, jobs: int):
    store = ResultStore(root)
    started = time.perf_counter()
    report = CampaignRunner(SPEC, store, jobs=jobs).run()
    elapsed = time.perf_counter() - started
    assert report.ok and report.count("completed") == SPEC.size
    return store, elapsed


def _store_bytes(store: ResultStore) -> dict[str, bytes]:
    objects = store.root / "objects"
    return {
        str(p.relative_to(objects)): p.read_bytes()
        for p in objects.glob("*/*.json")
    }


def test_campaign_parallel_speedup(benchmark, emit):
    def sweep():
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            serial_store, serial_s = _timed_campaign(root / "serial", jobs=1)
            parallel_store, parallel_s = _timed_campaign(root / "par", jobs=4)
            return (_store_bytes(serial_store), serial_s,
                    _store_bytes(parallel_store), parallel_s)

    serial_objects, serial_s, parallel_objects, parallel_s = run_once(
        benchmark, sweep)
    speedup = serial_s / parallel_s
    emit("campaign_speedup", render_table(
        ["jobs", "wall s", "speedup"],
        [[1, f"{serial_s:.2f}", "1.00"],
         [4, f"{parallel_s:.2f}", f"{speedup:.2f}"]],
        title=f"Campaign speedup: {SPEC.size} runs x "
              f"{SPEC.base['duration_s']:.0f} simulated s",
    ))

    # Determinism: worker scheduling never leaks into the stored bytes.
    assert len(serial_objects) == SPEC.size
    assert serial_objects == parallel_objects
    # Speedup: modest floor, tolerant of loaded CI hosts.  Gated on the
    # cores this process may actually use (cgroup/affinity aware), since
    # on a single-core box extra workers can only add overhead.
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cores = os.cpu_count() or 1
    if cores >= 4:
        assert speedup > 1.5, f"4 workers only {speedup:.2f}x faster"
