"""Figure 5: package temperature while using the Amazon shopping app.

Paper shape: with and without throttling the temperatures track each other
for the first ~80 s; afterwards the unthrottled run keeps heating while the
governor holds the line by reducing the CPU frequency.
"""

from repro.analysis.figures import summarize
from repro.experiments.nexus import temperature_profiles

from _harness import run_once


def test_fig5_amazon_temperature_profile(benchmark, emit):
    base, throttled = run_once(
        benchmark, lambda: temperature_profiles("amazon")
    )
    text = "\n".join(
        [
            "Figure 5: Amazon package temperature (degC)",
            summarize(base, (0.0, 40.0, 80.0, 140.0)),
            summarize(throttled, (0.0, 40.0, 80.0, 140.0)),
        ]
    )
    emit("fig5_amazon_temperature", text)

    # Early on, the two runs track each other closely (paper: first 80 s).
    assert abs(base.at(40.0) - throttled.at(40.0)) < 1.5
    # Later the unthrottled run is the hotter one.
    assert base.final() >= throttled.final()
    # The CPU app heats more gently than the games: stays under ~45 degC.
    assert base.max() < 45.0
    # Governor regulation near the trip.
    assert throttled.max() < 42.5
