"""Smoke benchmark (extension): robust fit wall time vs the clean path.

Excites the Odroid-XU3 once (setup, untimed), degrades the trace with the
closed-loop contract model (``noisy-sysfs``: millidegree temperature
quantization, 10 % record drops, TMU spikes), then times a clean fit and a
robust fit of the same capture.  The gate keeps robustness affordable: the
despike/align/IRLS machinery may cost real work, but if the robust path
drifts past ``MAX_SLOWDOWN`` times the clean fit, `repro platforms fit` on
a real dump stops being an interactive command and the regression fails
here first.
"""

import time

from repro.calib import BUILTIN_MODELS, fit_platform, run_excitation

from _harness import run_once

#: The robust fit may cost at most this many clean fits (observed locally:
#: ~2x; the ratio gate is immune to loaded CI hosts slowing both paths).
MAX_SLOWDOWN = 5.0


def test_calib_robust_fit_wall_time(benchmark, emit):
    trace = run_excitation("odroid-xu3", seed=1)
    degraded = BUILTIN_MODELS["noisy-sysfs"].apply(trace, seed=7)

    def fit_both():
        started = time.perf_counter()
        fit_platform(trace, name="odroid-xu3-clean-bench")
        clean_s = time.perf_counter() - started
        started = time.perf_counter()
        pdef, report = fit_platform(degraded, name="odroid-xu3-robust-bench")
        robust_s = time.perf_counter() - started
        return pdef, report, clean_s, robust_s

    pdef, report, clean_s, robust_s = run_once(benchmark, fit_both)
    assert pdef.name == "odroid-xu3-robust-bench"
    assert not report.degraded(), report.verdicts()
    slowdown = robust_s / clean_s
    assert slowdown < MAX_SLOWDOWN, (
        f"robust fit took {robust_s:.2f}s = {slowdown:.1f}x the clean "
        f"fit's {clean_s:.2f}s (limit {MAX_SLOWDOWN:.0f}x)"
    )
    lines = [
        f"trace: {trace.duration_s():.1f} s simulated, "
        f"{len(trace.names())} channels, degraded with noisy-sysfs seed 7",
        f"clean fit:  {clean_s:.3f} s wall",
        f"robust fit: {robust_s:.3f} s wall "
        f"({slowdown:.1f}x, limit {MAX_SLOWDOWN:.0f}x)",
        "",
        report.summary(),
    ]
    emit("bench_calib_robust", "\n".join(lines))
