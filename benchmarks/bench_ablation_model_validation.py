"""Ablation (extension): validating the analysis against the plant.

The governor's decisions are only as good as the lumped fixed-point
analysis behind them.  This benchmark pins the big cluster at a ladder of
frequencies, lets each operating point settle, and compares the analysis'
predicted steady state with the plant's — including one supercritical point
where the only correct prediction is "no fixed point at all".
"""

from repro.analysis.tables import render_table
from repro.experiments.validation import steady_state_validation

from _harness import run_once


def test_ablation_model_validation(benchmark, emit):
    points = run_once(benchmark, steady_state_validation)
    text = render_table(
        ["big MHz", "P_dyn (W)", "class", "predicted (degC)",
         "plant (degC)", "error (K)", "agree"],
        [
            [p.freq_mhz, p.p_dyn_w, p.predicted_class,
             "-" if p.predicted_ss_c is None else f"{p.predicted_ss_c:.1f}",
             f"{p.plant_ss_c:.1f}",
             "-" if p.error_k is None else f"{p.error_k:+.2f}",
             p.agreement]
            for p in points
        ],
        title="Extension: fixed-point predictions vs the simulated plant",
    )
    emit("ablation_model_validation", text)

    # Qualitative agreement everywhere, including the runaway point.
    assert all(p.agreement for p in points)
    stable = [p for p in points if p.error_k is not None]
    runaway = [p for p in points if p.predicted_class == "runaway"]
    assert len(stable) >= 3
    assert len(runaway) >= 1
    # Quantitative accuracy on the stable points: within 2 K everywhere.
    assert max(abs(p.error_k) for p in stable) < 2.0
    # The sweep spans a real dynamic range (tens of kelvin).
    temps = [p.plant_ss_c for p in stable]
    assert max(temps) - min(temps) > 25.0
