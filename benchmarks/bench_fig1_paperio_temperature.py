"""Figure 1: package temperature while playing Paper.io, throttle off vs on.

Paper shape: without throttling the package reaches ~50 degC by the end of a
140 s session and is still rising; with the stock governor the temperature
is regulated near the trip (~40 degC), at a frame-rate cost (Table I).
"""

from repro.analysis.figures import summarize
from repro.experiments.nexus import temperature_profiles

from _harness import run_once


def test_fig1_paperio_temperature_profile(benchmark, emit):
    base, throttled = run_once(
        benchmark, lambda: temperature_profiles("paperio")
    )
    text = "\n".join(
        [
            "Figure 1: Paper.io package temperature (degC)",
            summarize(base, (0.0, 50.0, 100.0, 140.0)),
            summarize(throttled, (0.0, 50.0, 100.0, 140.0)),
        ]
    )
    emit("fig1_paperio_temperature", text)

    # Unthrottled run gets hot: well above the throttled one at the end.
    assert base.final() > throttled.final() + 3.0
    # Paper: ~50 degC at the end of the unthrottled run.
    assert 43.0 < base.final() < 55.0
    # The governor holds the temperature near its 40 degC trip.
    assert throttled.max() < 43.5
    # Both start from the same warm device.
    assert abs(base.at(0.0) - throttled.at(0.0)) < 1.0
