"""Figure 9: power-distribution pie charts for the three 3DMark scenarios.

Paper shape: (a) alone — the GPU is the largest consumer, big cluster ~38%;
(b) +BML — total jumps (paper: 3.65 W) and the big cluster grows to ~60%;
(c) proposed — migration shrinks the big share back (~42%) and grows the
LITTLE share (7% -> 16%).
"""

from repro.analysis.tables import render_table
from repro.experiments.odroid import INA_RAILS, figure9

from _harness import run_once


def test_fig9_power_breakdown(benchmark, emit):
    pies = run_once(benchmark, figure9)
    rows = []
    for scenario in ("alone", "bml_default", "bml_proposed"):
        pie = pies[scenario]
        rows.append(
            [scenario, f"{pie.total_w:.2f}"]
            + [f"{pie.share_pct(rail):.0f}%" for rail in INA_RAILS]
        )
    text = render_table(
        ["scenario", "total W", "big (a15)", "little (a7)", "gpu", "mem"],
        rows,
        title="Figure 9: average power distribution (INA231 rails)",
    )
    emit("fig9_power_breakdown", text)

    alone, default, proposed = (
        pies["alone"], pies["bml_default"], pies["bml_proposed"]
    )
    # (a) GPU is the largest consumer when 3DMark runs alone.
    assert alone.shares["gpu"] == max(alone.shares.values())
    # (b) BML inflates the big-cluster share to a dominant majority.
    assert default.shares["a15"] > 0.5
    assert default.shares["a15"] > alone.shares["a15"] + 0.15
    assert default.total_w > alone.total_w + 1.0
    # (c) Migration moves share from the big rail to the LITTLE rail.
    assert proposed.shares["a15"] < default.shares["a15"] - 0.15
    assert proposed.shares["a7"] > default.shares["a7"] + 0.04
    # The proposed run's big share returns near the standalone level.
    assert abs(proposed.shares["a15"] - alone.shares["a15"]) < 0.10
