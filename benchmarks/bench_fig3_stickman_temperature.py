"""Figure 3: package temperature while playing Stickman Hook.

Paper shape: unthrottled temperature climbs well past the governed run,
especially beyond ~50 s; throttling keeps the maximum below ~40 degC.
"""

from repro.analysis.figures import summarize
from repro.experiments.nexus import temperature_profiles

from _harness import run_once


def test_fig3_stickman_temperature_profile(benchmark, emit):
    base, throttled = run_once(
        benchmark, lambda: temperature_profiles("stickman")
    )
    text = "\n".join(
        [
            "Figure 3: Stickman Hook package temperature (degC)",
            summarize(base, (0.0, 50.0, 100.0, 140.0)),
            summarize(throttled, (0.0, 50.0, 100.0, 140.0)),
        ]
    )
    emit("fig3_stickman_temperature", text)

    assert base.final() > throttled.final() + 2.0
    # Divergence grows after the device heats up (paper: "especially after
    # running the application for 50 seconds").
    early_gap = base.at(30.0) - throttled.at(30.0)
    late_gap = base.at(140.0) - throttled.at(140.0)
    assert late_gap > early_gap
    # Governor keeps the maximum near its trip (paper: below ~40 degC).
    assert throttled.max() < 43.0
