"""Ablation (extension): battery power of the five apps (DAQ capture).

The paper instruments the phone's battery rail with an NI DAQ.  This bench
reports what that capture shows for each catalog app: throttling reduces
mean battery power for every app, games draw the most, and — the subtle
point — throttling does *not* always improve energy per frame, since frames
also take longer.
"""

from repro.analysis.tables import render_table
from repro.experiments.daq_power import power_study

from _harness import run_once


def test_ablation_power_study(benchmark, emit):
    rows = run_once(benchmark, power_study)
    text = render_table(
        ["App", "P w/o (W)", "P w/ (W)", "saving %",
         "mJ/frame w/o", "mJ/frame w/"],
        [
            [r.app, r.power_without_w, r.power_with_w, r.power_saving_pct,
             r.energy_per_frame_without_mj, r.energy_per_frame_with_mj]
            for r in rows
        ],
        title="Extension: mean battery power per app (1 kHz DAQ capture)",
    )
    emit("ablation_power_study", text)

    by_app = {r.app: r for r in rows}
    # Throttling reduces battery power for every app.
    for row in rows:
        assert row.power_with_w < row.power_without_w, row.app
    # The games draw the most battery power unthrottled.
    game_power = min(
        by_app["paperio"].power_without_w, by_app["stickman"].power_without_w
    )
    cpu_power = max(
        by_app["amazon"].power_without_w,
        by_app["hangouts"].power_without_w,
        by_app["facebook"].power_without_w,
    )
    assert game_power > cpu_power - 0.6
    # Power levels are phone-plausible.
    for row in rows:
        assert 1.5 < row.power_without_w < 8.0, row.app
