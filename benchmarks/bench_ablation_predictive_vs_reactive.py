"""Ablation (extension): predictive fixed-point control vs a reactive baseline.

The paper's governor acts when the *predicted* violation is imminent; the
obvious simpler policy waits for the temperature to actually cross the limit.
Same migration, different timing: prediction buys a much earlier move and a
visibly lower peak temperature, at no frame-rate cost.
"""

from repro.analysis.tables import render_table
from repro.experiments.ablations import predictive_vs_reactive

from _harness import run_once


def test_ablation_predictive_vs_reactive(benchmark, emit):
    predictive, reactive = run_once(benchmark, predictive_vs_reactive)
    text = render_table(
        ["policy", "first migration (s)", "peak T (degC)", "GT1 FPS"],
        [
            ["predictive (paper)", f"{predictive.first_migration_s:.1f}",
             predictive.peak_temp_c, predictive.gt1_fps],
            ["reactive baseline", f"{reactive.first_migration_s:.1f}",
             reactive.peak_temp_c, reactive.gt1_fps],
        ],
        title="Ablation: predictive vs reactive application-aware control",
    )
    emit("ablation_predictive_vs_reactive", text)

    # Prediction acts much earlier ...
    assert predictive.first_migration_s is not None
    assert reactive.first_migration_s is not None
    assert predictive.first_migration_s < reactive.first_migration_s - 20.0
    # ... which keeps the peak temperature visibly lower ...
    assert predictive.peak_temp_c < reactive.peak_temp_c - 3.0
    # ... without sacrificing the foreground benchmark.
    assert predictive.gt1_fps > 90.0
    assert reactive.gt1_fps > 90.0
