"""Table II: application performance with the proposed control algorithm.

Paper rows: 3DMark GT1 97 / 86 / 93 FPS, 3DMark GT2 51 / 49 / 51 FPS,
Nenamark3 3.5 / 3.4 / 3.5 levels (alone / +BML / +BML with proposed control).

Shape requirements: the background BML costs performance under the default
kernel policy; the proposed governor recovers (nearly) the standalone score
in every row.
"""

from repro.analysis.tables import render_table
from repro.experiments.odroid import table2

from _harness import run_once


def test_table2_odroid_performance(benchmark, emit):
    rows = run_once(benchmark, table2)
    text = render_table(
        ["Test", "Alone", "+BML", "+BML proposed",
         "paper alone", "paper +BML", "paper prop.", "unit"],
        [
            [r.test, r.alone, r.with_bml, r.with_proposed,
             r.paper_alone, r.paper_with_bml, r.paper_with_proposed, r.unit]
            for r in rows
        ],
        title="Table II: performance under the three Odroid-XU3 scenarios",
    )
    emit("table2_odroid_performance", text)

    by_test = {r.test: r for r in rows}
    for row in rows:
        # The default policy loses performance to the background app ...
        assert row.with_bml < row.alone, row.test
        # ... and the proposed controller recovers (almost) all of it.
        assert row.with_proposed > row.with_bml, row.test
        assert row.with_proposed >= row.alone * 0.95, row.test
    # Absolute FPS levels near the paper's.
    gt1 = by_test["3DMark GT1"]
    assert abs(gt1.alone - 97.0) <= 6.0
    gt2 = by_test["3DMark GT2"]
    assert abs(gt2.alone - 51.0) <= 4.0
    # Nenamark scores in the paper's ballpark.
    nena = by_test["Nenamark3"]
    assert 2.5 <= nena.alone <= 5.0
    assert nena.with_bml <= nena.alone - 0.1
