"""Ablation (extension): skin temperature during gaming.

The paper's introduction argues that power dissipation "increases not only
the junction temperature on the chip but also the skin temperature of the
platforms, which directly impacts the user satisfaction".  This extension
measures the Nexus model's shell: the stock governor's package trip also
keeps the skin well under a typical 43 degC comfort limit, while disabling
it pushes the shell several kelvin hotter — and the skin lags the package
by tens of seconds, which is why predictive control has room to act.
"""

from repro.analysis.tables import render_table
from repro.experiments.skin import (
    SKIN_COMFORT_LIMIT_C,
    skin_comparison,
    skin_lag_s,
)

from _harness import run_once


def test_ablation_skin_temperature(benchmark, emit):
    unthrottled, throttled = run_once(benchmark, skin_comparison)
    text = render_table(
        ["run", "skin start (degC)", "skin end (degC)", "rise (K)",
         "pkg end (degC)"],
        [
            ["unthrottled", unthrottled.skin.at(0.0), unthrottled.skin_final_c,
             unthrottled.skin_rise_c, unthrottled.package.final()],
            ["throttled", throttled.skin.at(0.0), throttled.skin_final_c,
             throttled.skin_rise_c, throttled.package.final()],
        ],
        title="Extension: Paper.io skin temperature, Nexus 6P model",
    )
    emit("ablation_skin_temperature", text)

    # Throttling also protects the shell.
    assert throttled.skin_final_c < unthrottled.skin_final_c
    # Both stay under the comfort limit in a 140 s session, but the
    # unthrottled run is clearly on its way up.
    assert throttled.skin_final_c < SKIN_COMFORT_LIMIT_C
    assert unthrottled.skin_rise_c > throttled.skin_rise_c + 0.5
    # The skin lags the package substantially (thermal mass of the shell).
    assert skin_lag_s(unthrottled) > 10.0
