"""Smoke benchmark (extension): batched engine speedup.

Steps the same 64-scenario, same-platform grid twice — once one
:class:`~repro.sim.engine.Simulation` at a time (the scalar engine), once
stacked through one :class:`~repro.sim.batch.BatchSimulation` — and asserts
the two properties the batch stepper promises: every trace channel, the
deterministic metrics snapshot and the DAQ capture are byte-identical to
the scalar runs, and per-scenario throughput improves by an order of
magnitude on a multi-core host (docs/ENGINE.md).
"""

import json
import os
import time

from repro.analysis.tables import render_table
from repro.sim.batch import BatchSimulation
from repro.sim.experiment import AppSpec
from repro.soc import registry

from _harness import run_once

#: 64 scenarios x 60 simulated seconds on one platform: wide enough for
#: the stacked fast path to dominate, small enough for a smoke benchmark.
N_SIMS = 64
DURATION_S = 60.0
PLATFORM = "odroid-xu3"
SPEEDUP_FLOOR = 10.0


def _build_grid(n=N_SIMS):
    from repro.sim.engine import Simulation

    sims = []
    for i in range(n):
        sims.append(
            Simulation(
                registry.build(PLATFORM),
                [AppSpec.batch("bml").build()],
                seed=i,
                ambient_c=25.0 + (i % 8),
                enable_daq=True,
            )
        )
    return sims


def _fingerprint(sim) -> bytes:
    parts = []
    for name in sorted(sim.traces.names()):
        times, values = sim.traces.series(name)
        parts.append(name.encode() + times.tobytes() + values.tobytes())
    parts.append(
        json.dumps(
            sim.metrics.snapshot(as_of_s=sim.clock.now, include_wall_clock=False),
            sort_keys=True,
        ).encode()
    )
    times, values = sim.daq.samples()
    parts.append(times.tobytes() + values.tobytes())
    return b"".join(parts)


def _scalar_pass():
    sims = _build_grid()
    started = time.perf_counter()
    for sim in sims:
        sim.run(DURATION_S)
    return time.perf_counter() - started, [_fingerprint(s) for s in sims]


def _batch_pass():
    sims = _build_grid()
    batch = BatchSimulation(sims)
    started = time.perf_counter()
    batch.run(DURATION_S)
    return time.perf_counter() - started, [_fingerprint(s) for s in sims], batch


def test_engine_batch_speedup(benchmark, emit):
    def sweep():
        # Warm the allocators, BLAS and module caches off the clock.
        warm = _build_grid(4)
        BatchSimulation(warm).run(2.0)
        for sim in _build_grid(2):
            sim.run(2.0)

        scalar_s, scalar_prints = _scalar_pass()
        batch_s, batch_prints, batch = _batch_pass()
        # Wall-clock noise only ever slows a pass down; best-of-3 on the
        # short batch pass keeps a loaded host from deflating the ratio.
        for _ in range(2):
            retry_s, _prints, _batch = _batch_pass()
            batch_s = min(batch_s, retry_s)
        return scalar_s, scalar_prints, batch_s, batch_prints, batch.stats

    scalar_s, scalar_prints, batch_s, batch_prints, stats = run_once(
        benchmark, sweep)
    speedup = scalar_s / batch_s
    per_sim_s = N_SIMS * DURATION_S
    emit("engine_speedup", render_table(
        ["path", "wall s", "ms per sim-s", "speedup"],
        [["scalar", f"{scalar_s:.2f}", f"{1e3 * scalar_s / per_sim_s:.3f}", "1.00"],
         ["batched", f"{batch_s:.2f}", f"{1e3 * batch_s / per_sim_s:.3f}",
          f"{speedup:.2f}"]],
        title=f"Engine speedup: {N_SIMS} x {DURATION_S:.0f} simulated s "
              f"on {PLATFORM} (fast ticks: {stats['fast_ticks']}, "
              f"demotions: {stats['demotions']})",
    ))

    # Determinism: the stacked stepper never leaks into the outputs.
    assert scalar_prints == batch_prints
    assert stats["fast_ticks"] > 0
    # Speedup: gated on the cores this process may actually use, since a
    # starved host times the scalar baseline as unfairly as the batch.
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cores = os.cpu_count() or 1
    if cores >= 4:
        assert speedup > SPEEDUP_FLOOR, (
            f"batched stepping only {speedup:.2f}x faster"
        )
