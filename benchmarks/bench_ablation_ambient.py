"""Ablation (extension): the governor across ambient temperatures.

The fixed-point analysis folds the ambient into its predictions, so the
governor adapts for free: in a hot room the same workload's fixed point is
higher and the time-to-violation shorter, and the migration fires earlier.
The foreground stays protected across the whole sweep.
"""

from repro.analysis.tables import render_table
from repro.experiments.ablations import ambient_sweep

from _harness import run_once


def test_ablation_ambient_sweep(benchmark, emit):
    sweep = run_once(benchmark, ambient_sweep)
    text = render_table(
        ["ambient (degC)", "first migration (s)", "peak T (degC)", "GT1 FPS"],
        [
            [amb,
             "-" if p.first_migration_s is None else f"{p.first_migration_s:.1f}",
             p.peak_temp_c, p.gt1_fps]
            for amb, p in sweep
        ],
        title="Ablation: proposed governor vs ambient temperature "
              "(3DMark GT1 + BML, 85 degC limit)",
    )
    emit("ablation_ambient", text)

    by_ambient = dict(sweep)
    cold, mild, hot = (by_ambient[a] for a in (15.0, 27.0, 40.0))
    # Cold room: the analysis sees enough margin and (correctly) leaves the
    # background app alone — selectivity, not reflexive throttling.
    assert cold.first_migration_s is None or (
        mild.first_migration_s is not None
        and cold.first_migration_s > mild.first_migration_s
    )
    # The hotter the room, the earlier the (predictive) migration.
    times = [p.first_migration_s for _, p in sweep
             if p.first_migration_s is not None]
    assert len(times) >= 2
    assert all(b <= a + 1.0 for a, b in zip(times, times[1:]))
    # The hottest room is the thermal worst case of the sweep.
    assert hot.peak_temp_c == max(p.peak_temp_c for _, p in sweep)
    # The foreground is protected everywhere.
    for _, p in sweep:
        assert p.gt1_fps > 90.0
