"""Figure 8: maximum SoC temperature while running 3DMark (three scenarios).

Paper shape: 3DMark alone (blue) settles lowest; 3DMark+BML under the stock
kernel policy (red) runs far hotter, approaching the high 80s/90s; the
proposed controller (black) migrates BML and lands between the two, much
closer to the baseline.
"""

from repro.analysis.figures import summarize
from repro.experiments.odroid import figure8, run_3dmark

from _harness import run_once


def test_fig8_odroid_max_temperature(benchmark, emit):
    series = run_once(benchmark, figure8)
    text = "\n".join(
        [
            "Figure 8: Odroid-XU3 maximum temperature (degC), 3DMark scenarios",
            summarize(series["alone"], (50.0, 150.0, 250.0)),
            summarize(series["bml_default"], (50.0, 150.0, 250.0)),
            summarize(series["bml_proposed"], (50.0, 150.0, 250.0)),
        ]
    )
    emit("fig8_odroid_temperature", text)

    alone = series["alone"]
    default = series["bml_default"]
    proposed = series["bml_proposed"]
    # Ordering at the end of the run: alone <= proposed << default.
    assert default.final() > proposed.final() + 5.0
    assert proposed.final() >= alone.final() - 2.0
    # The default run climbs towards the 90s (paper: ~95 degC).
    assert default.max() > 85.0
    # The proposed controller keeps the system under its 85 degC limit.
    assert proposed.max() < 85.0
    # The migration actually happened.
    run = run_3dmark("bml_proposed")
    assert run.migrations and run.migrations[0][1] == "to_little"
    assert run.bml_final_cluster == "a7"
