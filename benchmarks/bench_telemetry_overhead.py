"""Smoke benchmark (extension): telemetry aggregation overhead.

The cross-process telemetry pipeline rides along with every campaign —
each worker snapshots its registry, the parent merges the snapshots and
folds per-run outcomes into the fleet aggregate.  That bookkeeping must
stay in the noise next to the simulations themselves: this benchmark
re-runs the full aggregation path (ingest, merge, canonical JSON, fleet
registry, Prometheus rendering, SLO evaluation) over a finished
campaign's stored artefacts and gates it at 5% of the campaign's wall
time.
"""

import pathlib
import tempfile
import time

from repro.analysis.tables import render_table
from repro.campaign import Axis, CampaignRunner, CampaignSpec, ResultStore
from repro.obs.exporters import prometheus_text
from repro.obs.telemetry import (
    BUILTIN_SLOS,
    CampaignAggregator,
    registry_from_snapshot,
    snapshot_json,
)
from repro.sim.experiment import AppSpec

from _harness import run_once

#: 8 scenarios x 12 simulated seconds: enough simulation wall time that a
#: 5% budget is a real (not vacuous) bound, small enough for a smoke run.
SPEC = CampaignSpec(
    name="telemetry-overhead",
    base={
        "platform": "odroid-xu3",
        "apps": (AppSpec.catalog("stickman"),),
        "duration_s": 12.0,
    },
    axes=(
        Axis("policy", ("none", "stock")),
        Axis("seed", (1, 2)),
        Axis("ambient_c", (25.0, 30.0)),
    ),
)

OVERHEAD_BUDGET = 0.05


def _aggregate_once(runner, results, snapshots):
    """The complete aggregation path, exactly as the runner performs it."""
    aggregator = CampaignAggregator(SPEC.name)
    for run in runner.runs:
        aggregator.ingest(
            run.run_id, run.scenario, "completed",
            result=results[run.run_id], snapshot=snapshots[run.run_id],
        )
    aggregate = aggregator.aggregate()
    canonical = snapshot_json(aggregate.snapshot)
    fleet_prom = prometheus_text(aggregate.to_registry())
    merged_prom = prometheus_text(registry_from_snapshot(aggregate.snapshot))
    verdict = BUILTIN_SLOS["chaos-hardening"].evaluate(aggregate)
    return canonical, fleet_prom, merged_prom, verdict


def test_telemetry_aggregation_overhead(benchmark, emit):
    def measure():
        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(pathlib.Path(tmp) / "store")
            runner = CampaignRunner(SPEC, store, jobs=1)
            started = time.perf_counter()
            report = runner.run()
            campaign_s = time.perf_counter() - started
            assert report.ok and report.count("completed") == SPEC.size

            results = runner.results()
            snapshots = {
                run.run_id: store.load_telemetry(runner.key_of(run))
                for run in runner.runs
            }
            assert all(snapshots.values()), "every run ships a snapshot"

            started = time.perf_counter()
            canonical, fleet_prom, merged_prom, verdict = _aggregate_once(
                runner, results, snapshots
            )
            aggregate_s = time.perf_counter() - started
            assert canonical and fleet_prom and merged_prom
            assert verdict.ok, "healthy grid must pass chaos-hardening"
            return campaign_s, aggregate_s

    campaign_s, aggregate_s = run_once(benchmark, measure)
    overhead = aggregate_s / campaign_s
    emit("telemetry_overhead", render_table(
        ["stage", "wall s", "share"],
        [["simulate campaign", f"{campaign_s:.3f}", "1.000"],
         ["aggregate telemetry", f"{aggregate_s:.3f}", f"{overhead:.3f}"]],
        title=f"Telemetry overhead: {SPEC.size} runs x "
              f"{SPEC.base['duration_s']:.0f} simulated s "
              f"(budget {OVERHEAD_BUDGET:.0%})",
    ))
    assert overhead <= OVERHEAD_BUDGET, (
        f"aggregation took {overhead:.1%} of campaign wall time "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )
