"""Ablation (extension): the interference matrix behind the paper's premise.

Under the stock phone governor, every background kernel slows every
foreground app — and the compute-bound kernels (which burn the most power
and heat) hurt more than the memory-bound ones.  This is the system-wide
throttling collateral the application-aware governor eliminates.
"""

from repro.analysis.tables import render_table
from repro.experiments.interference import (
    BACKGROUNDS,
    FOREGROUNDS,
    interference_matrix,
)

from _harness import run_once


def test_ablation_interference_matrix(benchmark, emit):
    matrix = run_once(benchmark, interference_matrix)
    rows = []
    for fg in FOREGROUNDS:
        for bg in BACKGROUNDS:
            r = matrix[(fg, bg)]
            rows.append(
                [fg, bg, r.solo_fps, r.contended_fps,
                 f"{r.slowdown_pct:.1f}%"]
            )
    text = render_table(
        ["foreground", "background", "solo FPS", "contended FPS", "slowdown"],
        rows,
        title="Extension: foreground slowdown by background kernel "
              "(stock governor, Nexus 6P model)",
    )
    emit("ablation_interference", text)

    # Every background costs the foreground something.
    for result in matrix.values():
        assert result.slowdown_pct > -2.0  # never a speed-up beyond noise
    # The compute-bound offender (BML) hurts the game clearly.
    assert matrix[("stickman", "bml")].slowdown_pct > 8.0
    # Memory-bound dijkstra is gentler than compute-bound BML for the game.
    assert (
        matrix[("stickman", "dijkstra")].slowdown_pct
        < matrix[("stickman", "bml")].slowdown_pct
    )
