"""Ablation (extension): the proposed governor on the phone model.

The paper proves its governor on the Odroid-XU3; this extension closes the
loop on the simulated Nexus 6P with a foreground Hangouts call and a
background sync task: the stock trip governor throttles the call along with
everything else, while the application-aware governor migrates only the
sync task and preserves the call's frame rate at a regulated temperature.
"""

from repro.analysis.tables import render_table
from repro.experiments.nexus_governor import POLICIES, phone_policy_comparison

from _harness import run_once


def test_ablation_phone_governor(benchmark, emit):
    results = run_once(benchmark, phone_policy_comparison)
    text = render_table(
        ["policy", "call FPS", "peak T (degC)", "end T (degC)",
         "sync Gcycles", "sync cluster", "battery W"],
        [
            [r.policy, r.foreground_fps, r.peak_temp_c, r.end_temp_c,
             round(r.sync_progress_gcycles), r.sync_final_cluster,
             r.mean_power_w]
            for r in (results[p] for p in POLICIES)
        ],
        title="Extension: Hangouts + background sync on the Nexus 6P model",
    )
    emit("ablation_phone_governor", text)

    none, stock, proposed = (
        results["none"], results["stock"], results["proposed"]
    )
    # Unmanaged: full quality but the package runs hot.
    assert none.peak_temp_c > 44.0
    # Stock governor: temperature regulated, call quality wrecked.
    assert stock.peak_temp_c < 41.0
    assert stock.foreground_fps < none.foreground_fps - 8.0
    # Proposed: call quality preserved at a controlled temperature.
    assert proposed.foreground_fps >= none.foreground_fps - 1.0
    assert proposed.peak_temp_c < none.peak_temp_c - 2.5
    assert proposed.sync_final_cluster == "a53"
    # The selective policy also saves battery vs unmanaged.
    assert proposed.mean_power_w < none.mean_power_w - 0.5
