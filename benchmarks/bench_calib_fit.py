"""Smoke benchmark (extension): full-pipeline calibration fit wall time.

Excites the Odroid-XU3 at the default identification scale once (setup,
untimed), then times the complete trace-to-validated-definition fit —
every estimator stage plus assembly and schema validation.  The gate
keeps the fit interactive: `repro platforms fit` is meant to be a
sub-second command, not an offline job, so a regression that drags the
NNLS/grid-search stages into multi-second territory fails here before it
annoys anyone.
"""

import time

from repro.calib import fit_platform, run_excitation

from _harness import run_once

#: Wall-time ceiling for one full fit (observed locally: ~0.2 s; the
#: ceiling is tolerant of loaded CI hosts).
MAX_FIT_SECONDS = 5.0


def test_calib_fit_wall_time(benchmark, emit):
    trace = run_excitation("odroid-xu3", seed=0)

    def fit():
        started = time.perf_counter()
        pdef, report = fit_platform(trace, name="odroid-xu3-bench")
        return pdef, report, time.perf_counter() - started

    pdef, report, elapsed = run_once(benchmark, fit)
    assert pdef.name == "odroid-xu3-bench"
    assert elapsed < MAX_FIT_SECONDS, (
        f"full-pipeline fit took {elapsed:.2f}s (limit {MAX_FIT_SECONDS}s)"
    )
    lines = [
        f"trace: {trace.duration_s():.1f} s simulated, "
        f"{len(trace.names())} channels",
        f"fit: {elapsed:.3f} s wall ({len(report.stage_names())} stages, "
        f"limit {MAX_FIT_SECONDS:.0f} s)",
        "",
        report.summary(),
    ]
    emit("bench_calib_fit", "\n".join(lines))
