"""Ablation (extension): the proposed governor vs a QoS-DVFS baseline.

Section II of the paper surveys closed-loop QoS managers (QScale, MAESTRO)
and notes that "they do not consider the problem of selectively throttling
background apps without affecting the foreground apps".  This benchmark
makes that concrete: same 60 FPS game + background BML, same thermal limit.
The QoS baseline can only slow the *foreground* pipeline to shed heat; the
proposed governor migrates the background offender and keeps the game at
its target.
"""

from repro.analysis.tables import render_table
from repro.experiments.ablations import qos_vs_proposed

from _harness import run_once


def test_ablation_qos_baseline(benchmark, emit):
    proposed, qos = run_once(benchmark, qos_vs_proposed)
    text = render_table(
        ["policy", "game FPS (late)", "peak T (degC)", "BML Gcycles",
         "actions"],
        [
            [p.policy, p.fps_late, p.peak_temp_c,
             round(p.bml_progress_gcycles), p.actions]
            for p in (proposed, qos)
        ],
        title="Ablation: proposed governor vs QoS-DVFS baseline "
              "(60 FPS game + BML, same limit)",
    )
    emit("ablation_qos_baseline", text)

    # The proposed governor keeps the foreground at its target ...
    assert proposed.fps_late >= 58.0
    # ... while the QoS baseline gives some of it up under thermal pressure.
    assert qos.fps_late < proposed.fps_late - 1.5
    # Both respect the thermal envelope to within sensor accuracy.
    assert proposed.peak_temp_c < 70.0
    assert qos.peak_temp_c < 72.0
    # The cost of the proposed policy lands on the background app instead.
    assert proposed.bml_progress_gcycles < qos.bml_progress_gcycles
