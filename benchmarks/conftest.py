"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, asserts
the qualitative *shape* the paper reports (who wins, by roughly what factor,
where crossovers fall), and writes its rendered output both to stdout and to
``benchmarks/results/<name>.txt`` so the artefacts survive pytest's output
capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Writer fixture: ``emit(name, text)`` prints and persists an artefact."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
