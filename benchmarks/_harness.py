"""Benchmark-harness helper shared by every bench module."""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run ``fn`` under pytest-benchmark with a single round.

    Experiment functions are memoised, so extra rounds would only time the
    cache; one round reflects the real cost of regenerating the artefact.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
