"""Table I: median frame rate of five popular apps, throttling off vs on.

Paper rows (Nexus 6P): Paper.io 35->23 (34%), Stickman Hook 59->40 (32%),
Amazon 35->28 (20%), Google Hangouts 42->38 (10%), Facebook 35->24 (31%).

Shape requirements: every app loses FPS under the stock thermal governor;
games lose roughly a third; Hangouts loses the least.
"""

from repro.analysis.tables import render_table
from repro.experiments.nexus import table1

from _harness import run_once


def test_table1_app_frame_rates(benchmark, emit):
    rows = run_once(benchmark, table1)
    text = render_table(
        ["App", "FPS w/o throttle", "FPS w/ throttle", "Reduction %",
         "paper w/o", "paper w/", "paper %"],
        [
            [r.app, r.fps_without, r.fps_with, r.reduction_pct,
             r.paper_fps_without, r.paper_fps_with, r.paper_reduction_pct]
            for r in rows
        ],
        title="Table I: median frame rate with and without thermal throttling",
    )
    emit("table1_app_fps", text)

    by_app = {r.app: r for r in rows}
    # Every app is slower with throttling enabled.
    for row in rows:
        assert row.fps_with < row.fps_without, row.app
    # Games lose a large fraction (paper: ~1/3).
    for game in ("paperio", "stickman"):
        assert by_app[game].reduction_pct > 20.0
    # Hangouts is a mild casualty (paper: 10%, the smallest drop).
    assert by_app["hangouts"].reduction_pct < 16.0
    # Absolute levels within a sensible band of the paper's numbers.
    for row in rows:
        assert abs(row.fps_without - row.paper_fps_without) <= 6.0, row.app
        assert abs(row.fps_with - row.paper_fps_with) <= 8.0, row.app
