"""Figure 6: big-core (A57) frequency residencies in the Amazon app.

Paper shape: throttling lowers the share of the highest frequencies (960 MHz
bucket drops 32% -> 23%) and grows the lowest (384 MHz rises 25% -> 37%):
the residency-weighted mean frequency falls.
"""

from repro.analysis.residency import (
    mean_frequency_khz,
    residency_shift,
    top_frequency_share,
)
from repro.analysis.tables import render_table
from repro.experiments.nexus import residency_comparison

from _harness import run_once


def test_fig6_amazon_big_core_residency(benchmark, emit):
    base, throttled, domain = run_once(
        benchmark, lambda: residency_comparison("amazon")
    )
    assert domain == "a57"
    rows = [
        [khz // 1000, round(base.get(khz, 0.0) * 100.0, 1),
         round(throttled.get(khz, 0.0) * 100.0, 1)]
        for khz in sorted(base)
        if base.get(khz, 0.0) > 0.005 or throttled.get(khz, 0.0) > 0.005
    ]
    text = render_table(
        ["A57 MHz", "w/o throttle %", "w/ throttle %"],
        rows,
        title="Figure 6: Amazon big-core frequency residencies",
    )
    emit("fig6_amazon_residency", text)

    # Throttling shifts CPU residency downward.
    assert residency_shift(base, throttled) > 0.02
    assert mean_frequency_khz(throttled) < mean_frequency_khz(base)
    # The top frequency loses share.
    assert top_frequency_share(throttled, 1) < top_frequency_share(base, 1)
