"""Smoke benchmark (extension): incremental-lint speedup.

Lints the shipped ``repro`` package three ways — cold serial (the CI
gate), cold parallel, and warm-cache parallel (the ``make lint-fast``
editing loop) — and asserts the two properties the engine promises:
every mode produces byte-identical reports, and the cached pass beats
the cold serial pass by at least the factor docs/STATIC_ANALYSIS.md
advertises.
"""

import pathlib
import tempfile
import time

from repro.analysis.tables import render_table
from repro.lint import all_rules, run_lint

from _harness import run_once

#: The advertised floor: a warm cache must at least halve a cold pass.
#: (Observed locally: ~4x; the floor is tolerant of loaded CI hosts.)
MIN_SPEEDUP = 2.0


def _timed_lint(**kwargs):
    started = time.perf_counter()
    report = run_lint(rules=all_rules(), **kwargs)
    return report, time.perf_counter() - started


def test_lint_cache_speedup(benchmark, emit):
    def sweep():
        with tempfile.TemporaryDirectory() as tmp:
            cache = pathlib.Path(tmp) / "cache.json"
            cold_serial, serial_s = _timed_lint(jobs=1)
            cold_parallel, parallel_s = _timed_lint(jobs=4)
            _, _ = _timed_lint(jobs=4, cache_path=cache)  # populate
            warm, warm_s = _timed_lint(jobs=4, cache_path=cache)
            return (cold_serial, serial_s, cold_parallel, parallel_s,
                    warm, warm_s)

    cold_serial, serial_s, cold_parallel, parallel_s, warm, warm_s = (
        run_once(benchmark, sweep)
    )
    speedup = serial_s / warm_s
    emit("lint_speed", render_table(
        ["mode", "wall s", "vs cold serial"],
        [["cold serial", f"{serial_s:.2f}", "1.00"],
         ["cold --jobs 4", f"{parallel_s:.2f}",
          f"{serial_s / parallel_s:.2f}"],
         ["warm cache --jobs 4", f"{warm_s:.2f}", f"{speedup:.2f}"]],
        title=f"repro lint over {cold_serial.files_scanned} files, "
              f"{len(cold_serial.rules_run)} rules",
    ))

    # Correctness before speed: all three modes agree byte-for-byte.
    assert cold_parallel.render_text() == cold_serial.render_text()
    assert warm.render_text() == cold_serial.render_text()
    assert warm.cache.file_hits == warm.files_scanned
    assert warm.cache.project_hit is True

    assert speedup >= MIN_SPEEDUP, (
        f"warm-cache parallel lint only {speedup:.2f}x faster than cold "
        f"serial (floor {MIN_SPEEDUP}x)"
    )
