"""Ablation (extension): the governor's prediction horizon.

The paper leaves the horizon as "a user-defined limit".  This ablation runs
3DMark GT1 + BML under the proposed governor with different horizons: a
longer horizon acts earlier (or at all), which caps the peak temperature,
while the foreground frame rate stays protected in every configuration
because only the background app is ever migrated.
"""

from repro.analysis.tables import render_table
from repro.experiments.ablations import horizon_sweep

from _harness import run_once

HORIZONS = (10.0, 30.0, 60.0, 120.0)


def test_ablation_governor_horizon(benchmark, emit):
    points = run_once(benchmark, lambda: horizon_sweep(HORIZONS))
    text = render_table(
        ["horizon (s)", "first migration (s)", "peak T (degC)",
         "GT1 FPS", "migrations"],
        [
            [p.horizon_s,
             "-" if p.first_migration_s is None else f"{p.first_migration_s:.1f}",
             p.peak_temp_c, p.gt1_fps, p.n_migrations]
            for p in points
        ],
        title="Ablation: prediction horizon of the application-aware governor",
    )
    emit("ablation_governor_horizon", text)

    by_horizon = {p.horizon_s: p for p in points}
    migrated = [p for p in points if p.first_migration_s is not None]
    assert migrated, "at least one horizon must trigger a migration"
    # Longer horizons act earlier.
    times = [
        p.first_migration_s for p in points if p.first_migration_s is not None
    ]
    assert all(b <= a + 1.0 for a, b in zip(times, times[1:]))
    # Peak temperature is non-increasing as the horizon grows.
    peaks = [p.peak_temp_c for p in points]
    assert all(b <= a + 1.0 for a, b in zip(peaks, peaks[1:]))
    # The foreground benchmark is never sacrificed.
    for p in points:
        assert p.gt1_fps > 85.0
    # The longest horizon clearly beats the shortest on temperature.
    assert by_horizon[120.0].peak_temp_c <= by_horizon[10.0].peak_temp_c
