"""Ablation (extension): how the critical power and safe budget move.

Three sweeps on the Odroid-XU3 lumped parameters: ambient temperature,
thermal resistance (fan on/off proxy), and the thermal limit feeding the
safe-power budget.  All are direct applications of the Section IV.A
analysis — the quantities a designer would read off before choosing an
enclosure or a throttling setpoint.
"""

from repro.analysis.tables import render_table
from repro.experiments.ablations import (
    critical_power_vs_ambient,
    critical_power_vs_resistance,
    safe_budget_vs_limit,
)

from _harness import run_once


def test_ablation_critical_power_vs_ambient(benchmark, emit):
    sweep = run_once(benchmark, critical_power_vs_ambient)
    text = render_table(
        ["ambient (degC)", "critical power (W)"],
        [[amb, f"{p:.2f}"] for amb, p in sweep],
        title="Ablation: critical power vs ambient temperature",
    )
    emit("ablation_critical_power_ambient", text)
    powers = [p for _, p in sweep]
    assert all(b < a for a, b in zip(powers, powers[1:]))
    # Sanity: the span is substantial (ambient matters).
    assert powers[0] - powers[-1] > 0.5


def test_ablation_critical_power_vs_resistance(benchmark, emit):
    sweep = run_once(benchmark, critical_power_vs_resistance)
    text = render_table(
        ["R scale", "critical power (W)"],
        [[s, f"{p:.2f}"] for s, p in sweep],
        title="Ablation: critical power vs thermal resistance (fan proxy)",
    )
    emit("ablation_critical_power_resistance", text)
    by_scale = dict(sweep)
    # Unit scale reproduces the paper's 5.5 W figure.
    assert abs(by_scale[1.0] - 5.5) < 0.01
    # Halving R (adding a fan) more than doubles the safe envelope.
    assert by_scale[0.5] > 2.0 * by_scale[1.0] * 0.9


def test_ablation_safe_budget_vs_limit(benchmark, emit):
    sweep = run_once(benchmark, safe_budget_vs_limit)
    text = render_table(
        ["thermal limit (degC)", "safe dynamic power (W)"],
        [[lim, f"{b:.2f}"] for lim, b in sweep],
        title="Ablation: safe power budget vs thermal limit",
    )
    emit("ablation_safe_budget", text)
    budgets = [b for _, b in sweep]
    assert all(b >= a for a, b in zip(budgets, budgets[1:]))
    assert budgets[-1] > budgets[0]
