"""Figure 4: GPU-frequency residencies in Stickman Hook.

Paper shape: throttling drives the 450/510 MHz share to ~zero, lowers the
390 MHz share, and grows the two lowest frequencies (180 MHz: 12% -> 31%,
305 MHz: 0% -> 9%).
"""

from repro.analysis.residency import residency_shift, top_frequency_share
from repro.analysis.tables import render_table
from repro.experiments.nexus import residency_comparison

from _harness import run_once


def test_fig4_stickman_gpu_residency(benchmark, emit):
    base, throttled, domain = run_once(
        benchmark, lambda: residency_comparison("stickman")
    )
    assert domain == "gpu"
    rows = [
        [khz // 1000, round(base.get(khz, 0.0) * 100.0, 1),
         round(throttled.get(khz, 0.0) * 100.0, 1)]
        for khz in sorted(base)
    ]
    text = render_table(
        ["GPU MHz", "w/o throttle %", "w/ throttle %"],
        rows,
        title="Figure 4: Stickman Hook GPU frequency residencies",
    )
    emit("fig4_stickman_residency", text)

    # High frequencies lose their share under throttling.
    assert top_frequency_share(throttled, 3) < top_frequency_share(base, 3)
    # The two lowest frequencies grow (paper: 180 MHz 12%->31%, 305 0%->9%).
    low_base = base.get(180000, 0.0) + base.get(305000, 0.0)
    low_throt = throttled.get(180000, 0.0) + throttled.get(305000, 0.0)
    assert low_throt > low_base + 0.10
    assert residency_shift(base, throttled) > 0.10
