"""Figure 2: GPU-frequency residencies in Paper.io, throttle off vs on.

Paper shape: without throttling the two highest Adreno frequencies (510 and
600 MHz) carry substantial time (32% + 15%); with throttling their use drops
to ~zero and the mass shifts to 390 MHz and below.
"""

from repro.analysis.residency import (
    mean_frequency_khz,
    residency_shift,
    top_frequency_share,
)
from repro.analysis.tables import render_table
from repro.experiments.nexus import residency_comparison

from _harness import run_once


def test_fig2_paperio_gpu_residency(benchmark, emit):
    base, throttled, domain = run_once(
        benchmark, lambda: residency_comparison("paperio")
    )
    assert domain == "gpu"
    rows = [
        [khz // 1000, round(base.get(khz, 0.0) * 100.0, 1),
         round(throttled.get(khz, 0.0) * 100.0, 1)]
        for khz in sorted(base)
    ]
    text = render_table(
        ["GPU MHz", "w/o throttle %", "w/ throttle %"],
        rows,
        title="Figure 2: Paper.io GPU frequency residencies",
    )
    emit("fig2_paperio_residency", text)

    # Top two frequencies carry real weight unthrottled, collapse throttled.
    assert top_frequency_share(base, 2) > 0.25
    assert top_frequency_share(throttled, 2) < 0.15
    # The residency-weighted mean frequency drops markedly.
    assert residency_shift(base, throttled) > 0.25
    # Low frequencies dominate under throttling (paper: 390 MHz at 67%).
    low = sum(frac for khz, frac in throttled.items() if khz <= 390000)
    assert low > 0.50
    assert mean_frequency_khz(throttled) < mean_frequency_khz(base)
