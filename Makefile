# Convenience targets mirroring the CI pipeline (.github/workflows/ci.yml).
# Everything runs from the source tree via PYTHONPATH, no install required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test check

lint:
	$(PYTHON) -m repro lint

test:
	$(PYTHON) -m pytest -x -q

check: lint test
