# Convenience targets mirroring the CI pipeline (.github/workflows/ci.yml).
# Everything runs from the source tree via PYTHONPATH, no install required.

PYTHON ?= python
export PYTHONPATH := src

CAMPAIGN_STORE ?= /tmp/repro-campaign-smoke
PLATFORM_STORE ?= /tmp/repro-platform-matrix
CHAOS_STORE ?= /tmp/repro-chaos-smoke
TELEMETRY_STORE ?= /tmp/repro-telemetry-smoke
CALIB_DIR ?= /tmp/repro-calib-smoke

LINT_CACHE ?= /tmp/repro-lint-cache.json

.PHONY: lint lint-fast lint-full test check campaign-smoke chaos-smoke \
	telemetry-smoke validate-platforms calib-smoke calib-robust-smoke \
	engine-bench

lint:
	$(PYTHON) -m repro lint

# Incremental + parallel: re-lints only files whose sha changed since the
# cached pass.  For day-to-day editing loops.
lint-fast:
	$(PYTHON) -m repro lint --cache $(LINT_CACHE) --jobs 4

# Cold and serial: what CI gates on, and what the lint-speed benchmark
# compares the cached pass against.
lint-full:
	$(PYTHON) -m repro lint --jobs 1

test:
	$(PYTHON) -m pytest -x -q

validate-platforms:
	$(PYTHON) -m repro platforms validate

# Run the tiny built-in campaign twice (the first pass simulates, the
# second must be served entirely from the content-addressed store), then
# sweep every registered platform — including the purely data-defined
# devices — through one short stock-policy run each.
campaign-smoke:
	rm -rf $(CAMPAIGN_STORE) $(PLATFORM_STORE)
	$(PYTHON) -m repro campaign run --preset smoke --store $(CAMPAIGN_STORE) --jobs 2
	$(PYTHON) -m repro campaign run --preset smoke --store $(CAMPAIGN_STORE) --jobs 2 --resume --format json \
	  | $(PYTHON) -c "import json,sys; s=json.load(sys.stdin)['summary']; assert s['cached']==s['total']>0, s; print(f\"campaign-smoke: {s['cached']}/{s['total']} cached\")"
	$(PYTHON) -m repro campaign run --preset platform-matrix --store $(PLATFORM_STORE) --jobs 2

# Run the full fault-injection grid (every built-in fault plan x policy x
# platform) and fail if any run crashes or the hardened governor overshoots
# the thermal limit by more than stock anywhere (docs/FAULTS.md).
chaos-smoke:
	rm -rf $(CHAOS_STORE)
	$(PYTHON) -m repro chaos --duration 12 --jobs 2 --store $(CHAOS_STORE)

# Exercise the cross-process telemetry pipeline end to end: run the tiny
# campaign with the deterministic watch dashboard and an SLO gate, then
# re-evaluate the stored fleet aggregate with `repro obs check` and gate
# the aggregation overhead against the campaign wall time.
telemetry-smoke:
	rm -rf $(TELEMETRY_STORE)
	$(PYTHON) -m repro campaign run --preset smoke --store $(TELEMETRY_STORE) \
	  --jobs 2 --watch --no-tty --slo chaos-hardening
	$(PYTHON) -m repro obs check --campaign smoke --store $(TELEMETRY_STORE) \
	  --slo chaos-hardening
	cd benchmarks && PYTHONPATH=$(CURDIR)/src \
	  $(PYTHON) -m pytest -x -q bench_telemetry_overhead.py

# Close the calibration loop at reduced scale: excite a registered board,
# fit a definition from the trace alone, and validate the fitted JSON as
# an out-of-tree platform (docs/CALIBRATION.md).
calib-smoke:
	rm -rf $(CALIB_DIR) && mkdir -p $(CALIB_DIR)
	$(PYTHON) -m repro platforms excite --platform odroid-xu3 \
	  --dwell-s 0.5 --soak-s 4 --cooldown-s 8 --max-opps 4 \
	  --out $(CALIB_DIR)/trace.json
	$(PYTHON) -m repro platforms fit --trace $(CALIB_DIR)/trace.json \
	  --name odroid-xu3-refit --out $(CALIB_DIR)/fitted.json --register
	$(PYTHON) -m repro platforms validate --file $(CALIB_DIR)/fitted.json

# Close the loop through a degraded capture: excite, apply the contract
# degradation model (millidegree quantization + record drops + spikes),
# fit robustly, validate the fitted JSON, and gate the robust fit's wall
# time against the clean path (docs/CALIBRATION.md).
calib-robust-smoke:
	rm -rf $(CALIB_DIR)-robust && mkdir -p $(CALIB_DIR)-robust
	$(PYTHON) -m repro platforms excite --platform odroid-xu3 \
	  --seed 1 --out $(CALIB_DIR)-robust/trace.json
	$(PYTHON) -m repro platforms degrade \
	  --trace $(CALIB_DIR)-robust/trace.json --model noisy-sysfs --seed 7 \
	  --out $(CALIB_DIR)-robust/degraded.json
	$(PYTHON) -m repro platforms fit \
	  --trace $(CALIB_DIR)-robust/degraded.json \
	  --name odroid-xu3-robust-refit \
	  --out $(CALIB_DIR)-robust/fitted.json --register
	$(PYTHON) -m repro platforms validate --file $(CALIB_DIR)-robust/fitted.json
	cd benchmarks && PYTHONPATH=$(CURDIR)/src \
	  $(PYTHON) -m pytest -x -q bench_calib_robust.py

# Time the stacked batch stepper against the scalar engine on a
# 64-scenario grid and assert byte-identical outputs plus the >=10x
# per-scenario throughput floor (docs/ENGINE.md).
engine-bench:
	cd benchmarks && PYTHONPATH=$(CURDIR)/src \
	  $(PYTHON) -m pytest -x -q bench_engine_speedup.py

check: lint validate-platforms test campaign-smoke chaos-smoke telemetry-smoke calib-smoke calib-robust-smoke engine-bench
