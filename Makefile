# Convenience targets mirroring the CI pipeline (.github/workflows/ci.yml).
# Everything runs from the source tree via PYTHONPATH, no install required.

PYTHON ?= python
export PYTHONPATH := src

CAMPAIGN_STORE ?= /tmp/repro-campaign-smoke

.PHONY: lint test check campaign-smoke

lint:
	$(PYTHON) -m repro lint

test:
	$(PYTHON) -m pytest -x -q

# Run the tiny built-in campaign twice: the first pass simulates, the
# second must be served entirely from the content-addressed store.
campaign-smoke:
	rm -rf $(CAMPAIGN_STORE)
	$(PYTHON) -m repro campaign run --preset smoke --store $(CAMPAIGN_STORE) --jobs 2
	$(PYTHON) -m repro campaign run --preset smoke --store $(CAMPAIGN_STORE) --jobs 2 --resume --format json \
	  | $(PYTHON) -c "import json,sys; s=json.load(sys.stdin)['summary']; assert s['cached']==s['total']>0, s; print(f\"campaign-smoke: {s['cached']}/{s['total']} cached\")"

check: lint test campaign-smoke
