"""Thin setup shim: all metadata lives in pyproject.toml.

Kept so `pip install -e .` works in offline environments without the
`wheel` package (legacy develop-mode fallback).
"""

from setuptools import setup

setup()
