"""CPU-cluster hotplug and per-task CPU quotas."""

import pytest

from repro.apps.mibench import BatchApp, basicmath_large
from repro.errors import ConfigurationError, SchedulingError
from repro.kernel.kernel import HotplugConfig, KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3
from repro.units import kelvin_to_celsius


def make_sim(apps=(), config=None, seed=1):
    return Simulation(
        odroid_xu3(), list(apps), kernel_config=config or KernelConfig(), seed=seed
    )


# ------------------------------------------------------------------ hotplug

def test_clusters_start_online():
    sim = make_sim()
    assert sim.kernel.cluster_online("a15")
    assert sim.kernel.cluster_online("a7")


def test_offline_migrates_tasks():
    bml = basicmath_large()
    sim = make_sim([bml])
    sim.kernel.set_cluster_online("a15", False)
    assert sim.kernel.task_cluster(bml.pid) == "a7"


def test_offline_cluster_draws_no_power():
    bml = basicmath_large()
    sim = make_sim([bml])
    sim.run(2.0)
    sim.kernel.set_cluster_online("a15", False)
    sim.run(2.0)
    _, watts = sim.traces.series("power.a15")
    assert watts[-1] == 0.0
    # The migrated task keeps running on the LITTLE cluster.
    _, little = sim.traces.series("busy.a7")
    assert little[-1] > 0.5


def test_cannot_offline_last_cluster():
    sim = make_sim()
    sim.kernel.set_cluster_online("a15", False)
    with pytest.raises(ConfigurationError):
        sim.kernel.set_cluster_online("a7", False)


def test_unknown_cluster_rejected():
    sim = make_sim()
    with pytest.raises(ConfigurationError):
        sim.kernel.set_cluster_online("a99", False)
    with pytest.raises(ConfigurationError):
        sim.kernel.cluster_online("a99")


def test_spawn_falls_back_when_target_offline():
    sim = make_sim()
    sim.kernel.set_cluster_online("a15", False)
    task = sim.kernel.spawn("late", cluster="a15")
    assert task.cluster == "a7"


def test_online_sysfs_nodes():
    sim = make_sim()
    fs = sim.kernel.fs
    assert fs.read("/sys/devices/system/cpu/cpu4/online") == "1"
    fs.write("/sys/devices/system/cpu/cpu4/online", "0")
    assert not sim.kernel.cluster_online("a15")
    fs.write("/sys/devices/system/cpu/cpu7/online", "1")
    assert sim.kernel.cluster_online("a15")


def test_hotplug_daemon_trips_and_recovers():
    config = KernelConfig(
        hotplug=HotplugConfig(sensor="soc_big", cluster="a15", trip_c=70.0)
    )
    burn = BatchApp("burn", n_threads=4)
    sim = make_sim([burn], config=config)
    sim.run(120.0)
    # The big cluster got too hot, was powered off, and the task moved.
    _, watts = sim.traces.series("power.a15")
    assert (watts == 0.0).any(), "big cluster was never powered off"
    assert sim.kernel.task_cluster(burn.pid) == "a7"
    # Temperature is bounded by the hotplug action.
    assert kelvin_to_celsius(sim.thermal.max_temperature_k()) < 85.0


def test_hotplug_config_validation():
    with pytest.raises(ConfigurationError):
        HotplugConfig(sensor="s", cluster="c", trip_c=70.0, hyst_c=0.0)
    config = KernelConfig(
        hotplug=HotplugConfig(sensor="nope", cluster="a15", trip_c=70.0)
    )
    with pytest.raises(ConfigurationError):
        make_sim(config=config)


# ------------------------------------------------------------------- quotas

def test_quota_limits_consumption():
    bml = basicmath_large()
    sim = make_sim([bml])
    sim.run(5.0)
    full = bml.progress_gigacycles()
    bml2 = basicmath_large()
    sim2 = make_sim([bml2])
    sim2.kernel.scheduler.task(bml2.pid).set_cpu_quota(0.25)
    sim2.run(5.0)
    limited = bml2.progress_gigacycles()
    assert limited < 0.5 * full


def test_quota_validation():
    bml = basicmath_large()
    sim = make_sim([bml])
    task = sim.kernel.scheduler.task(bml.pid)
    with pytest.raises(SchedulingError):
        task.set_cpu_quota(0.0)
    with pytest.raises(SchedulingError):
        task.set_cpu_quota(1.5)


def test_quota_via_userspace_api():
    bml = basicmath_large()
    sim = make_sim([bml])
    api = sim.kernel.userspace_api()
    api.set_cpu_quota(bml.pid, 0.5)
    assert api.cpu_quota(bml.pid) == 0.5


def test_duty_cycle_governor_action():
    from repro.core.governor import ApplicationAwareGovernor, GovernorConfig

    bml = basicmath_large()
    sim = make_sim([bml])
    governor = ApplicationAwareGovernor.for_simulation(
        sim,
        GovernorConfig(
            t_limit_c=60.0, horizon_s=300.0, action="duty_cycle", min_quota=0.25
        ),
    )
    governor.install(sim.kernel)
    sim.run(20.0)
    assert governor.events, "duty-cycle action never fired"
    assert governor.events[0].direction.startswith("quota_")
    # The offender stays on the big cluster but with a reduced quota (the
    # governor halves until the predicted violation clears).
    assert sim.kernel.task_cluster(bml.pid) == "a15"
    assert sim.kernel.userspace_api().cpu_quota(bml.pid) <= 0.5


def test_duty_cycle_config_validation():
    from repro.core.governor import GovernorConfig

    with pytest.raises(ConfigurationError):
        GovernorConfig(action="freeze")
    with pytest.raises(ConfigurationError):
        GovernorConfig(action="duty_cycle", min_quota=0.0)
