"""Thermal model stepping, steady state, passivity."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.thermal.model import ThermalModel
from repro.thermal.rc_network import (
    AMBIENT,
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)


@pytest.fixture()
def spec():
    return ThermalNetworkSpec(
        nodes=(ThermalNodeSpec("chip", 1.0), ThermalNodeSpec("board", 5.0)),
        links=(
            ThermalLinkSpec("chip", "board", 1.0),
            ThermalLinkSpec("board", AMBIENT, 0.2),
        ),
        power_split={"cpu": {"chip": 1.0}},
    )


def test_starts_at_ambient(spec):
    model = ThermalModel(spec, 0.01, ambient_k=300.0)
    assert model.temperature_k("chip") == pytest.approx(300.0)


def test_no_power_stays_at_ambient(spec):
    model = ThermalModel(spec, 0.01, ambient_k=300.0)
    for _ in range(1000):
        model.step({"cpu": 0.0})
    assert model.temperature_k("chip") == pytest.approx(300.0, abs=1e-9)


def test_cooling_from_hot_start(spec):
    model = ThermalModel(spec, 0.01, ambient_k=300.0, initial_k=350.0)
    for _ in range(100):
        model.step({"cpu": 0.0})
    assert model.temperature_k("chip") < 350.0


def test_heating_under_power(spec):
    model = ThermalModel(spec, 0.01, ambient_k=300.0)
    for _ in range(100):
        model.step({"cpu": 2.0})
    assert model.temperature_k("chip") > 300.0


def test_converges_to_linear_steady_state(spec):
    model = ThermalModel(spec, 0.1, ambient_k=300.0)
    target = model.steady_state_k({"cpu": 2.0})
    for _ in range(5000):  # 500 s >> slowest time constant
        model.step({"cpu": 2.0})
    assert model.temperature_k("chip") == pytest.approx(target["chip"], abs=0.01)
    assert model.temperature_k("board") == pytest.approx(target["board"], abs=0.01)


def test_steady_state_matches_hand_computation(spec):
    # Series resistances: chip-board 1 K/W, board-ambient 5 K/W.
    model = ThermalModel(spec, 0.01, ambient_k=300.0)
    ss = model.steady_state_k({"cpu": 1.0})
    assert ss["board"] == pytest.approx(305.0)
    assert ss["chip"] == pytest.approx(306.0)


def test_dc_gain_is_effective_resistance(spec):
    model = ThermalModel(spec, 0.01, ambient_k=300.0)
    assert model.dc_gain("chip", "cpu") == pytest.approx(6.0)
    assert model.dc_gain("board", "cpu") == pytest.approx(5.0)


def test_exact_discretisation_step_size_invariance(spec):
    fine = ThermalModel(spec, 0.01, ambient_k=300.0)
    coarse = ThermalModel(spec, 0.1, ambient_k=300.0)
    for _ in range(1000):
        fine.step({"cpu": 3.0})
    for _ in range(100):
        coarse.step({"cpu": 3.0})
    assert fine.temperature_k("chip") == pytest.approx(
        coarse.temperature_k("chip"), abs=1e-9
    )


def test_ambient_change_shifts_equilibrium(spec):
    model = ThermalModel(spec, 0.1, ambient_k=300.0)
    model.set_ambient(310.0)
    for _ in range(5000):
        model.step({"cpu": 0.0})
    assert model.temperature_k("chip") == pytest.approx(310.0, abs=0.01)


def test_set_state(spec):
    model = ThermalModel(spec, 0.01, ambient_k=300.0)
    model.set_state({"chip": 333.0})
    assert model.temperature_k("chip") == 333.0


def test_unknown_node_and_rail_rejected(spec):
    model = ThermalModel(spec, 0.01, ambient_k=300.0)
    with pytest.raises(SimulationError):
        model.temperature_k("nope")
    with pytest.raises(SimulationError):
        model.step({"nope": 1.0})


def test_negative_power_rejected(spec):
    model = ThermalModel(spec, 0.01, ambient_k=300.0)
    with pytest.raises(SimulationError):
        model.step({"cpu": -1.0})


def test_dominant_time_constant_positive(spec):
    model = ThermalModel(spec, 0.01, ambient_k=300.0)
    tau = model.dominant_time_constant_s()
    assert tau > 0.0
    # Board pole: roughly C_board * R_board-ambient = 25 s (coupled: larger).
    assert 10.0 < tau < 100.0


def test_max_temperature(spec):
    model = ThermalModel(spec, 0.01, ambient_k=300.0)
    for _ in range(200):
        model.step({"cpu": 2.0})
    assert model.max_temperature_k() == model.temperature_k("chip")


def test_bad_dt_rejected(spec):
    with pytest.raises(ConfigurationError):
        ThermalModel(spec, 0.0)


def test_platform_networks_are_passive(odroid_platform, nexus_platform):
    for platform in (odroid_platform, nexus_platform):
        model = ThermalModel(platform.thermal, 0.01, 300.0)
        assert model.dominant_time_constant_s() > 0.0
