"""Metamorphic engine tests: directionally-known perturbations.

Full-system relations that must hold regardless of calibration details:
hotter rooms run hotter; more board power runs hotter; a slower thermal
limit throttles more; bigger demand burns more energy.
"""

import dataclasses

import pytest

from repro.apps.frames import FrameApp, FrameWorkload
from repro.apps.mibench import basicmath_large
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3

DURATION_S = 30.0


def run_bml(ambient_c=None, platform=None, seed=1):
    sim = Simulation(
        platform or odroid_xu3(), [basicmath_large()],
        kernel_config=KernelConfig(), seed=seed, ambient_c=ambient_c,
        initial_temp_c=ambient_c,
    )
    sim.run(DURATION_S)
    return sim


def test_hotter_ambient_hotter_chip():
    cool = run_bml(ambient_c=15.0)
    warm = run_bml(ambient_c=35.0)
    assert (
        warm.thermal.temperature_k("big") > cool.thermal.temperature_k("big") + 10.0
    )


def test_hotter_ambient_more_leakage_power():
    cool = run_bml(ambient_c=15.0)
    warm = run_bml(ambient_c=35.0)
    assert warm.energy.average_power_w("a15") > cool.energy.average_power_w("a15")


def test_more_board_power_hotter_board():
    base_platform = odroid_xu3()
    hot_platform = dataclasses.replace(base_platform, board_power_w=2.0)
    base = run_bml(platform=base_platform)
    hot = run_bml(platform=hot_platform)
    assert (
        hot.thermal.temperature_k("board")
        > base.thermal.temperature_k("board") + 3.0
    )


def test_heavier_frames_more_energy():
    def run_game(gpu_cycles):
        app = FrameApp(
            "g", FrameWorkload(3e6, gpu_cycles, target_fps=30.0, sigma=0.0)
        )
        sim = Simulation(odroid_xu3(), [app], kernel_config=KernelConfig(), seed=1)
        sim.run(DURATION_S)
        return sim.energy.energy_j("gpu")

    assert run_game(12e6) > 1.5 * run_game(4e6)


def test_seed_only_perturbs_noise_not_physics():
    a = run_bml(seed=1)
    b = run_bml(seed=2)
    # Same workload, same physics: temperatures agree closely even though
    # sensor noise and app RNG streams differ.
    assert a.thermal.temperature_k("big") == pytest.approx(
        b.thermal.temperature_k("big"), abs=0.5
    )


def test_double_duration_double_batch_progress():
    short = run_bml()
    long_sim = Simulation(
        odroid_xu3(), [basicmath_large()], kernel_config=KernelConfig(), seed=1
    )
    long_sim.run(2 * DURATION_S)
    assert long_sim.app("bml").progress_gigacycles() == pytest.approx(
        2.0 * short.app("bml").progress_gigacycles(), rel=0.05
    )
