"""WatchView: live dashboard rendering, TTY and deterministic modes."""

import io
from types import SimpleNamespace

from repro.obs.telemetry import (
    BUILTIN_SLOS,
    CampaignAggregator,
    WatchView,
    aggregate_block,
    find_stragglers,
)


def scenario(policy="none"):
    return SimpleNamespace(platform="odroid-xu3", policy=policy,
                           t_limit_c=50.0, faults=None)


def record(run_id, status="completed"):
    return SimpleNamespace(run_id=run_id, status=status)


def drive(view, runs=("1-a", "2-b"), waves=((1, 2),)):
    """Walk a view through a tiny campaign's observer callbacks."""
    agg = CampaignAggregator("demo")
    view.campaign_started("demo", len(runs), agg)
    for index, size in waves:
        view.wave_started(index, size)
    for run_id in runs:
        agg.ingest(run_id, scenario(), "completed", elapsed_s=1.0,
                   result=SimpleNamespace(peak_temp_c=45.0, fps={},
                                          failsafe_s=0.0))
        view.run_finished(record(run_id))
    view.campaign_finished(SimpleNamespace(records=[]))
    return agg


# ------------------------------------------------------------ plain helpers


def test_aggregate_block_counts_line():
    agg = CampaignAggregator("demo")
    agg.ingest("1", scenario(), "cached")
    agg.ingest("2", scenario(), "completed", result=SimpleNamespace(
        peak_temp_c=45.0, fps={}, failsafe_s=0.0))
    lines = aggregate_block(agg.aggregate(merge_telemetry=False))
    assert lines == ["  cached 1  completed 1  failed 0  pending 0"]


def test_aggregate_block_slo_line():
    agg = CampaignAggregator("demo")
    agg.ingest("1", scenario(), "completed", result=SimpleNamespace(
        peak_temp_c=58.0, fps={}, failsafe_s=0.0))  # excess 8.0: breach
    lines = aggregate_block(agg.aggregate(merge_telemetry=False),
                            slo=BUILTIN_SLOS["chaos-hardening"])
    assert lines[-1] == "  SLO chaos-hardening: 3/4 ok [FAIL excess-bounded]"


def test_find_stragglers():
    # Nearest-rank p90 equals the max for fewer than ten samples, so a
    # straggler can only surface once the fleet is big enough.
    agg = CampaignAggregator("demo")
    for i in range(10):
        agg.ingest(f"{i:02d}", scenario(), "completed",
                   elapsed_s=1.0 + i / 10)
    agg.ingest("99", scenario(), "completed", elapsed_s=9.0)
    (line,) = find_stragglers(agg.aggregate(merge_telemetry=False))
    assert line == "99 9.00s (p90 1.90s)"
    # Fewer than two timed runs: nothing to compare against.
    lone = CampaignAggregator("demo")
    lone.ingest("1", scenario(), "completed", elapsed_s=9.0)
    assert find_stragglers(lone.aggregate(merge_telemetry=False)) == []


# ------------------------------------------------------------------- views


def test_no_tty_output_is_plain_and_deterministic():
    out = io.StringIO()
    drive(WatchView(out=out, tty=False))
    text = out.getvalue()
    assert "\x1b" not in text
    assert all(line.startswith("watch: ") for line in text.splitlines())
    assert "watch: campaign demo: 2 run(s)" in text
    assert "watch: wave 1: 2 run(s)" in text
    assert "watch: 1-a completed (1/2)" in text
    assert "watch: 2-b completed (2/2)" in text
    assert "watch: campaign demo: 2/2 resolved -- done" in text
    # Wall times are host-dependent; the deterministic mode must not
    # leak them (stragglers are TTY-only).
    assert "straggler" not in text

    again = io.StringIO()
    drive(WatchView(out=again, tty=False))
    assert again.getvalue() == text


def test_tty_mode_redraws_in_place():
    out = io.StringIO()
    drive(WatchView(out=out, tty=True))
    text = out.getvalue()
    # First draw has no cursor movement; every redraw rewinds one block.
    assert not text.startswith("\x1b")
    # Each redraw rewinds the 2-line block (header + counts) and clears.
    assert "\x1b[2F\x1b[0J" in text
    assert text.count("resolved") >= 3  # wave + per-run + final redraws
    assert "-- done" in text


def test_render_reports_current_state():
    out = io.StringIO()
    view = WatchView(out=out, tty=False, slo=BUILTIN_SLOS["chaos-hardening"])
    drive(view)
    rendered = view.render()
    assert rendered.splitlines()[0] == "campaign demo: 2/2 resolved -- done"
    assert "SLO chaos-hardening: 4/4 ok" in rendered


def test_tty_defaults_to_stream_isatty():
    assert WatchView(out=io.StringIO()).tty is False
