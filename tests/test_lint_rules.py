"""Per-rule positive/negative snippets, suppression and baseline behaviour.

Each lint rule gets at least one known-bad snippet it must flag and one
known-good snippet it must leave alone.  Snippets are written to a temp
file and linted through the real engine (``lint_file``), so suppression
comments and path scoping are exercised exactly as in production.
"""

import json
import pathlib
import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    BaselineEntry,
    all_rules,
    get_rule,
    lint_file,
    run_lint,
    update_baseline,
)
from repro.lint import baseline as baseline_mod
from repro.lint.rules.sysfs_contract import sysfs_authority

#: Shared across the module so the R301 sysfs authority (which boots both
#: platform kernels) is computed once, not per test.
SERVICES: dict = {}


def lint_snippet(tmp_path, source, relpath="core/snippet.py", rules=None):
    """Lint ``source`` as if it lived at ``relpath`` inside the package."""
    path = tmp_path / pathlib.PurePosixPath(relpath).name
    path.write_text(textwrap.dedent(source))
    active = list(rules) if rules is not None else all_rules()
    return lint_file(path, relpath, active, SERVICES)


def rule_ids(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------- registry


def test_registry_ids_unique_and_sorted():
    ids = [r.id for r in all_rules()]
    assert ids == sorted(ids)
    assert len(ids) == len(set(ids))
    assert {"R101", "R102", "R103", "R104",
            "R201", "R202", "R203", "R204",
            "R301", "R401"} <= set(ids)


def test_get_rule_unknown_raises():
    with pytest.raises(ConfigurationError):
        get_rule("R999")


# ------------------------------------------------------------- R1: units


def test_r101_flags_raw_kelvin_offset(tmp_path):
    findings = lint_snippet(tmp_path, """
        def to_c(temp_k):
            x = temp_k - 273.15
            return x * 2.0
        """)
    assert "R101" in rule_ids(findings)


def test_r101_clean_when_using_units_module(tmp_path):
    findings = lint_snippet(tmp_path, """
        from repro.units import kelvin_to_celsius

        def to_c(temp_k):
            return kelvin_to_celsius(temp_k)
        """)
    assert "R101" not in rule_ids(findings)


def test_r101_not_applied_inside_units_py(tmp_path):
    findings = lint_snippet(tmp_path, """
        ZERO = 273.15
        """, relpath="units.py")
    assert "R101" not in rule_ids(findings)


def test_r102_flags_scale_on_unit_suffixed_assignment(tmp_path):
    findings = lint_snippet(tmp_path, """
        def f(freq_hz):
            freq_khz = freq_hz / 1000
            return freq_khz
        """)
    assert "R102" in rule_ids(findings)


def test_r102_flags_scale_times_unit_operand(tmp_path):
    findings = lint_snippet(tmp_path, """
        def f(power_w, fps):
            report(energy_per_frame_mj=power_w / fps * 1000.0)
        """)
    assert "R102" in rule_ids(findings)


def test_r102_ignores_unitless_arithmetic(tmp_path):
    findings = lint_snippet(tmp_path, """
        def f(count):
            batches = count / 1000
            return batches
        """)
    assert "R102" not in rule_ids(findings)


def test_r103_flags_mixed_unit_addition(tmp_path):
    findings = lint_snippet(tmp_path, """
        def f(temp_c, temp_k):
            return temp_c + temp_k
        """)
    assert "R103" in rule_ids(findings)


def test_r103_flags_mixed_unit_comparison(tmp_path):
    findings = lint_snippet(tmp_path, """
        def f(freq_hz, limit_khz):
            return freq_hz > limit_khz
        """)
    assert "R103" in rule_ids(findings)


def test_r103_same_unit_different_spelling_is_clean(tmp_path):
    # ``_c`` and ``_celsius`` are the same unit; must not flag.
    findings = lint_snippet(tmp_path, """
        def f(skin_c, limit_celsius):
            return skin_c - limit_celsius
        """)
    assert "R103" not in rule_ids(findings)


def test_r104_flags_reimplemented_converter(tmp_path):
    findings = lint_snippet(tmp_path, """
        def to_khz(hz):
            return hz / 1000
        """)
    assert "R104" in rule_ids(findings)


def test_r104_ignores_non_conversion_helpers(tmp_path):
    findings = lint_snippet(tmp_path, """
        def clamp(value):
            return max(0.25, value)
        """)
    assert "R104" not in rule_ids(findings)


# ------------------------------------------------------- R2: determinism


def test_r201_flags_stdlib_random_import(tmp_path):
    assert "R201" in rule_ids(lint_snippet(tmp_path, "import random\n"))
    assert "R201" in rule_ids(
        lint_snippet(tmp_path, "from random import choice\n"))


def test_r201_numpy_import_is_clean(tmp_path):
    assert "R201" not in rule_ids(lint_snippet(tmp_path, "import numpy as np\n"))


def test_r202_flags_wall_clock_reads(tmp_path):
    findings = lint_snippet(tmp_path, """
        import datetime
        import time

        def stamp():
            return time.time(), datetime.datetime.now()
        """)
    assert rule_ids(findings).count("R202") == 2


def test_r202_perf_counter_is_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        import time

        def elapsed(start):
            return time.perf_counter() - start
        """)
    assert "R202" not in rule_ids(findings)


def test_r203_flags_unseeded_numpy_random(tmp_path):
    findings = lint_snippet(tmp_path, """
        import numpy as np

        def noise(n):
            return np.random.rand(n)
        """)
    assert "R203" in rule_ids(findings)


def test_r203_seeded_generator_is_clean(tmp_path):
    findings = lint_snippet(tmp_path, """
        import numpy as np

        def noise(n, seed):
            rng = np.random.default_rng(seed)
            return rng.normal(0.0, 1.0, n)
        """)
    assert "R203" not in rule_ids(findings)


def test_r204_flags_iteration_over_set_literal(tmp_path):
    findings = lint_snippet(tmp_path, """
        def f(xs):
            for x in {1, 2, 3}:
                xs.append(x)
        """)
    assert "R204" in rule_ids(findings)


def test_r204_sorted_set_is_clean(tmp_path):
    findings = lint_snippet(tmp_path, """
        def f(xs):
            for x in sorted({1, 2, 3}):
                xs.append(x)
        """)
    assert "R204" not in rule_ids(findings)


def test_campaign_runner_is_determinism_clean(tmp_path):
    """The campaign subsystem's only wall-clock reads are perf_counter
    (sanctioned) and one justified, suppressed manifest timestamp."""
    import repro.campaign.runner as runner_mod

    source = pathlib.Path(runner_mod.__file__).read_text()
    findings = lint_snippet(tmp_path, source, relpath="campaign/runner.py")
    assert not [f for f in findings if f.rule.startswith("R2")], findings


def test_campaign_runner_suppression_is_load_bearing(tmp_path):
    """Strip the manifest timestamp's inline disable and R202 must fire —
    proving the suppression exists because the read is really there."""
    import repro.campaign.runner as runner_mod

    source = pathlib.Path(runner_mod.__file__).read_text()
    assert "# repro-lint: disable=R202" in source
    stripped = source.replace("# repro-lint: disable=R202", "")
    findings = lint_snippet(tmp_path, stripped, relpath="campaign/runner.py")
    assert rule_ids(findings).count("R202") == 1


# ----------------------------------------------------- R3: sysfs contract


def test_r301_flags_unregistered_sysfs_path(tmp_path):
    findings = lint_snippet(tmp_path, """
        BOGUS = "/sys/class/thermal/thermal_zone99/temp"
        """, relpath="experiments/snippet.py")
    assert "R301" in rule_ids(findings)


def test_r301_registered_path_is_clean(tmp_path):
    paths, _prefixes = sysfs_authority()
    real = sorted(paths)[0]
    findings = lint_snippet(tmp_path, f"""
        KNOWN = "{real}"
        """, relpath="experiments/snippet.py")
    assert "R301" not in rule_ids(findings)


def test_r301_proc_resolver_prefix_is_clean(tmp_path):
    findings = lint_snippet(tmp_path, """
        def stat_path(pid):
            return f"/proc/{pid}/stat"
        """, relpath="experiments/snippet.py")
    assert "R301" not in rule_ids(findings)


def test_r301_skips_kernel_wiring_itself(tmp_path):
    findings = lint_snippet(tmp_path, """
        BOGUS = "/sys/class/thermal/thermal_zone99/temp"
        """, relpath="kernel/snippet.py")
    assert "R301" not in rule_ids(findings)


# ------------------------------------------------------ R4: float hygiene


def test_r401_flags_float_equality(tmp_path):
    findings = lint_snippet(tmp_path, """
        def at_limit(temp_c, limit_c):
            return temp_c == limit_c
        """)
    assert "R401" in rule_ids(findings)


def test_r401_integer_comparison_is_clean(tmp_path):
    findings = lint_snippet(tmp_path, """
        def f(count):
            return count == 3
        """)
    assert "R401" not in rule_ids(findings)


def test_r401_tolerance_comparison_is_clean(tmp_path):
    findings = lint_snippet(tmp_path, """
        def close(a_c, b_c):
            return abs(a_c - b_c) <= 1e-9
        """)
    assert "R401" not in rule_ids(findings)


def test_r401_scoped_to_numerical_core(tmp_path):
    findings = lint_snippet(tmp_path, """
        def at_limit(temp_c, limit_c):
            return temp_c == limit_c
        """, relpath="analysis/snippet.py")
    assert "R401" not in rule_ids(findings)


# ----------------------------------------------------------- suppression


def test_disable_on_offending_line(tmp_path):
    findings = lint_snippet(tmp_path, """
        def f(temp_k):
            return temp_k - 273.15  # repro-lint: disable=R101
        """)
    assert "R101" not in rule_ids(findings)


def test_disable_next_line(tmp_path):
    findings = lint_snippet(tmp_path, """
        def f(temp_k):
            # repro-lint: disable-next-line=R101
            return temp_k - 273.15
        """)
    assert "R101" not in rule_ids(findings)


def test_disable_only_silences_named_rule(tmp_path):
    findings = lint_snippet(tmp_path, """
        def f(temp_k):
            return temp_k - 273.15  # repro-lint: disable=R401
        """)
    assert "R101" in rule_ids(findings)


def test_disable_file(tmp_path):
    findings = lint_snippet(tmp_path, """
        # repro-lint: disable-file=R101
        def f(temp_k):
            return temp_k - 273.15
        """)
    assert "R101" not in rule_ids(findings)


def test_disable_file_rejected_after_first_lines(tmp_path):
    filler = "\n".join(f"x{i} = {i}" for i in range(12))
    with pytest.raises(ConfigurationError, match="disable-file"):
        lint_snippet(
            tmp_path, filler + "\n# repro-lint: disable-file=R101\n")


def test_malformed_rule_id_rejected(tmp_path):
    with pytest.raises(ConfigurationError, match="malformed"):
        lint_snippet(tmp_path, "x = 1  # repro-lint: disable=banana\n")


# -------------------------------------------------------------- baseline


VIOLATION = "def to_c(temp_k):\n    return temp_k - 273.15\n"


def test_baseline_add_then_accept(tmp_path):
    target = tmp_path / "snippet.py"
    target.write_text(VIOLATION)
    baseline = tmp_path / "baseline.json"

    first = run_lint(targets=[target], baseline_path=baseline)
    assert not first.ok
    assert first.new

    count = update_baseline(first, baseline_path=baseline,
                            justification="known issue, tracked")
    assert count == len(first.new)
    data = json.loads(baseline.read_text())
    assert data["version"] == 1
    assert all(e["justification"] == "known issue, tracked"
               for e in data["entries"])

    second = run_lint(targets=[target], baseline_path=baseline)
    assert second.ok
    assert not second.new
    assert len(second.baselined) == len(first.new)


def test_baseline_expires_when_violation_fixed(tmp_path):
    target = tmp_path / "snippet.py"
    target.write_text(VIOLATION)
    baseline = tmp_path / "baseline.json"
    update_baseline(run_lint(targets=[target], baseline_path=baseline),
                    baseline_path=baseline)

    target.write_text(
        "from repro.units import kelvin_to_celsius\n"
        "def to_c(temp_k):\n    return kelvin_to_celsius(temp_k)\n")
    report = run_lint(targets=[target], baseline_path=baseline)
    assert report.stale_baseline
    assert not report.ok  # stale entries demand baseline maintenance

    update_baseline(report, baseline_path=baseline)
    assert json.loads(baseline.read_text())["entries"] == []
    assert run_lint(targets=[target], baseline_path=baseline).ok


def test_baseline_survives_edits_on_other_lines(tmp_path):
    target = tmp_path / "snippet.py"
    target.write_text(VIOLATION)
    baseline = tmp_path / "baseline.json"
    update_baseline(run_lint(targets=[target], baseline_path=baseline),
                    baseline_path=baseline)

    # Insert lines above: the match is by line text, not line number.
    target.write_text("import math\n\n" + VIOLATION)
    assert run_lint(targets=[target], baseline_path=baseline).ok


def test_baseline_occurrence_disambiguates_identical_lines(tmp_path):
    src = ("def a(temp_k):\n    return temp_k - 273.15\n"
           "def b(temp_k):\n    return temp_k - 273.15\n")
    target = tmp_path / "snippet.py"
    target.write_text(src)
    baseline = tmp_path / "baseline.json"
    first = run_lint(targets=[target], baseline_path=baseline,
                     rules=[get_rule("R101")])
    assert len(first.new) == 2
    # Baseline only the first occurrence: the second must stay new.
    entries = baseline_mod.entries_for(first.new)[:1]
    baseline_mod.save(baseline, entries)
    second = run_lint(targets=[target], baseline_path=baseline,
                      rules=[get_rule("R101")])
    assert len(second.baselined) == 1
    assert len(second.new) == 1


def test_baseline_unsupported_version_rejected(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ConfigurationError, match="version"):
        baseline_mod.load(bad)


def test_no_baseline_flag_reports_everything(tmp_path):
    target = tmp_path / "snippet.py"
    target.write_text(VIOLATION)
    report = run_lint(targets=[target], use_baseline=False)
    assert not report.ok
    assert not report.baselined


def test_baseline_entry_key_roundtrip():
    entry = BaselineEntry(rule="R101", path="core/x.py",
                          context="x = 273.15", occurrence=1,
                          justification="why")
    assert entry.key == ("R101", "core/x.py", "x = 273.15", 1)
    assert entry.to_json()["occurrence"] == 1
