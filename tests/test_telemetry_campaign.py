"""The telemetry pipeline end to end through the campaign runner and CLI.

Acceptance criteria of the observability PR:

* a 2-worker campaign's merged ``telemetry.json``/``telemetry.prom`` are
  byte-identical to the single-process run's (snapshot -> merge ->
  Prometheus equals one shared registry);
* ``repro obs check --slo`` exits non-zero on a grid seeded to breach and
  zero on a healthy grid;
* the report pins its cache-hit-ratio and wall-time percentile lines.
"""

import json

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, ResultStore
from repro.campaign.runner import CampaignReport, RunRecord
from repro.campaign.spec import Axis
from repro.cli import main
from repro.obs import SNAPSHOT_SCHEMA


def mini_spec(name, t_limit_c=None, policies=("none",), seeds=(1, 2)):
    base = {
        "platform": "odroid-xu3",
        "apps": ({"kind": "catalog", "name": "stickman", "cluster": None},),
        "duration_s": 6.0,
    }
    if t_limit_c is not None:
        base["t_limit_c"] = t_limit_c
    return CampaignSpec(
        name=name, base=base,
        axes=(Axis("policy", tuple(policies)), Axis("seed", tuple(seeds))),
    )


@pytest.fixture(scope="module")
def healthy(tmp_path_factory):
    """A 2-run healthy campaign, fully executed (built once, reused)."""
    store = ResultStore(tmp_path_factory.mktemp("healthy") / "store")
    runner = CampaignRunner(mini_spec("healthy"), store, jobs=1)
    report = runner.run()
    assert report.ok
    return store, runner, report


# ---------------------------------------------------------- byte identity


def test_two_workers_merge_byte_identical_to_one(tmp_path):
    spec = mini_spec("ident", seeds=(1, 2, 3, 4))
    serial = CampaignRunner(spec, ResultStore(tmp_path / "serial"), jobs=1)
    assert serial.run().ok
    parallel = CampaignRunner(spec, ResultStore(tmp_path / "par"), jobs=2)
    assert parallel.run().ok

    for artefact in ("telemetry.json", "telemetry.prom"):
        a = (serial.store.campaign_dir("ident") / artefact).read_bytes()
        b = (parallel.store.campaign_dir("ident") / artefact).read_bytes()
        assert a == b, f"{artefact} differs between jobs=1 and jobs=2"

    # The aggregate carries host wall times (nondeterministic by nature);
    # everything else about it must agree.
    def comparable(store):
        data = json.loads(
            (store.campaign_dir("ident") / "aggregate.json").read_text()
        )
        for sample in data["samples"]:
            sample["values"].pop("wall_s", None)
        del data["summary"]
        return data

    assert comparable(serial.store) == comparable(parallel.store)


def test_cached_rerun_reproduces_the_same_telemetry(healthy):
    store, runner, _ = healthy
    before = store.telemetry_path("healthy").read_bytes()
    rerun = CampaignRunner(mini_spec("healthy"), store, jobs=1)
    report = rerun.run()
    assert report.count("cached") == 2
    assert store.telemetry_path("healthy").read_bytes() == before


# -------------------------------------------------------------- artefacts


def test_telemetry_artifacts_written(healthy):
    store, runner, _ = healthy
    snapshot = json.loads(store.telemetry_path("healthy").read_text())
    assert snapshot["schema"] == SNAPSHOT_SCHEMA
    # Wall-clock families must never reach the deterministic snapshot.
    assert not any(f["wall_clock"] for f in snapshot["families"].values())
    # Two 6-second runs merged: the step counters summed.
    steps = snapshot["families"]["repro_sim_steps_total"]
    assert sum(c["value"] for c in steps["children"]) == 1200.0

    from repro.obs.telemetry import CampaignAggregate

    payload = store.load_aggregate("healthy")
    assert payload is not None
    aggregate = CampaignAggregate.from_dict(payload)
    assert aggregate.name == "healthy"
    assert len(aggregate.samples) == 2
    # A later invocation may have re-served the runs from the cache; both
    # ways every run resolved cleanly and derived its thermal series.
    resolved = (aggregate.scalar("runs_completed")
                + aggregate.scalar("runs_cached"))
    assert resolved == 2.0
    assert all("excess_c" in s.values for s in aggregate.samples)

    fleet = (store.campaign_dir("healthy") / "fleet.prom").read_text()
    assert 'repro_fleet_runs{campaign="healthy"' in fleet
    assert "repro_fleet_excess_celsius" in fleet


def test_runner_exposes_last_aggregate(healthy):
    _, runner, _ = healthy
    assert runner.last_aggregate is not None
    assert runner.last_aggregate.scalar("runs_total") == 2.0
    # aggregate() folds the store view without executing: the runs are in
    # the cache now, and the merged telemetry matches the live run's.
    rebuilt = runner.aggregate()
    assert rebuilt.scalar("runs_cached") == 2.0
    assert rebuilt.snapshot == runner.last_aggregate.snapshot


# ------------------------------------------------------------ report lines


def test_report_render_text_format_is_pinned():
    report = CampaignReport(
        name="pinned",
        records=(
            RunRecord(run_id="0-a", key="k0", status="cached"),
            RunRecord(run_id="1-b", key="k1", status="completed",
                      elapsed_s=1.0),
            RunRecord(run_id="2-c", key="k2", status="completed",
                      elapsed_s=3.0),
            RunRecord(run_id="3-d", key="k3", status="completed",
                      elapsed_s=2.0),
        ),
    )
    lines = report.render_text().splitlines()
    assert lines[-2] == "cache hit ratio: 0.25"
    assert lines[-1] == "wall s: p50 2.00, p90 3.00, max 3.00"


def test_report_wall_line_without_executed_runs():
    report = CampaignReport(
        name="cold",
        records=(RunRecord(run_id="0-a", key="k0", status="cached"),),
    )
    lines = report.render_text().splitlines()
    assert lines[-2] == "cache hit ratio: 1.00"
    assert lines[-1] == "wall s: no executed runs"


# -------------------------------------------------------------------- CLI


def spec_file(tmp_path, spec):
    path = tmp_path / f"{spec.name}.json"
    path.write_text(json.dumps(spec.to_dict()))
    return str(path)


def test_obs_check_exit_codes(tmp_path, capsys):
    store = str(tmp_path / "store")
    # Seeded breach: a 45 degC limit the 6 s stickman run overshoots.
    breach = spec_file(tmp_path, mini_spec("breach", t_limit_c=45.0))
    assert main(["campaign", "run", "--spec", breach, "--store", store]) == 0
    capsys.readouterr()
    rc = main(["obs", "check", "--campaign", "breach", "--store", store,
               "--slo", "chaos-hardening"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "[FAIL] excess-bounded" in out
    assert "BREACH" in out

    healthy = spec_file(tmp_path, mini_spec("healthy"))
    assert main(["campaign", "run", "--spec", healthy, "--store", store]) == 0
    capsys.readouterr()
    rc = main(["obs", "check", "--campaign", "healthy", "--store", store,
               "--slo", "chaos-hardening"])
    out = capsys.readouterr().out
    assert rc == 0
    assert out.rstrip().endswith("PASS")


def test_obs_check_json_and_missing_campaign(tmp_path, capsys):
    store = str(tmp_path / "store")
    healthy = spec_file(tmp_path, mini_spec("healthy"))
    assert main(["campaign", "run", "--spec", healthy, "--store", store]) == 0
    capsys.readouterr()
    assert main(["obs", "check", "--campaign", "healthy", "--store", store,
                 "--slo", "chaos-hardening", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["slo"] == "chaos-hardening"
    assert {r["name"] for r in payload["rules"]} == {
        "excess-bounded", "detects-quickly", "no-crashes", "no-failures",
    }
    with pytest.raises(SystemExit, match="no aggregate"):
        main(["obs", "check", "--campaign", "ghost", "--store", store,
              "--slo", "chaos-hardening"])
    with pytest.raises(SystemExit, match="slo:"):
        main(["obs", "check", "--campaign", "healthy", "--store", store,
              "--slo", "no-such-spec"])


def test_campaign_run_watch_no_tty(tmp_path, capsys):
    store = str(tmp_path / "store")
    spec = spec_file(tmp_path, mini_spec("watched"))
    assert main(["campaign", "run", "--spec", spec, "--store", store,
                 "--watch", "--no-tty", "--slo", "chaos-hardening"]) == 0
    out = capsys.readouterr().out
    assert "\x1b" not in out
    assert "watch: campaign watched: 2 run(s)" in out
    assert "watch: campaign watched: 2/2 resolved -- done" in out
    assert "watch:   SLO chaos-hardening: 4/4 ok" in out
    # The final report still prints after the watch lines.
    assert "cache hit ratio: 0.00" in out


def test_campaign_run_slo_gates_exit_code(tmp_path, capsys):
    store = str(tmp_path / "store")
    breach = spec_file(tmp_path, mini_spec("breach", t_limit_c=45.0))
    rc = main(["campaign", "run", "--spec", breach, "--store", store,
               "--slo", "chaos-hardening"])
    out = capsys.readouterr().out
    assert rc == 1  # every run completed, but the SLO breached
    assert "BREACH" in out


def test_campaign_watch_command(tmp_path, capsys):
    store = str(tmp_path / "store")
    spec = spec_file(tmp_path, mini_spec("later"))
    assert main(["campaign", "run", "--spec", spec, "--store", store]) == 0
    capsys.readouterr()
    assert main(["campaign", "watch", "--spec", spec, "--store", store,
                 "--slo", "chaos-hardening"]) == 0
    out = capsys.readouterr().out
    assert "campaign later: 2/2 resolved" in out
    assert "cached 2  completed 0  failed 0  pending 0" in out
    assert "SLO chaos-hardening: 4/4 ok" in out

    assert main(["campaign", "watch", "--spec", spec, "--store", store,
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["name"] == "later"
    assert "snapshot" not in payload
    assert {s["status"] for s in payload["samples"]} == {"cached"}
