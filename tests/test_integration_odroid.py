"""End-to-end Odroid-XU3 behaviour (shortened Section IV.C scenarios)."""

import pytest

from repro.apps.gfxbench import ThreeDMarkApp
from repro.apps.mibench import basicmath_large
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.experiments.odroid import odroid_default_thermal
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3

DURATION_S = 100.0


def run_scenario(with_bml, proposed, seed=3):
    mark = ThreeDMarkApp(gt1_duration_s=DURATION_S, gt2_duration_s=10.0)
    apps = [mark] + ([basicmath_large()] if with_bml else [])
    config = (
        KernelConfig() if proposed
        else KernelConfig(thermal=odroid_default_thermal())
    )
    sim = Simulation(odroid_xu3(), apps, kernel_config=config, seed=seed)
    governor = None
    if proposed:
        governor = ApplicationAwareGovernor.for_simulation(
            sim, GovernorConfig(t_limit_c=85.0, horizon_s=60.0)
        )
        for pid in mark.pids():
            governor.registry.register(pid, mark.name)
        governor.install(sim.kernel)
    sim.run(DURATION_S)
    return sim, mark, governor


@pytest.fixture(scope="module")
def alone():
    return run_scenario(False, False)


@pytest.fixture(scope="module")
def bml_default():
    return run_scenario(True, False)


@pytest.fixture(scope="module")
def bml_proposed():
    return run_scenario(True, True)


def test_background_app_heats_the_system(alone, bml_default):
    _, temps_alone = alone[0].traces.series("temp.max")
    _, temps_bml = bml_default[0].traces.series("temp.max")
    assert temps_bml[-1] > temps_alone[-1] + 5.0


def test_proposed_governor_migrates_bml(bml_proposed):
    sim, _, governor = bml_proposed
    assert governor.events
    assert governor.events[0].name == "bml"
    assert governor.events[0].direction == "to_little"
    assert sim.kernel.task_cluster(sim.app("bml").pid) == "a7"


def test_proposed_controls_temperature(bml_default, bml_proposed):
    _, temps_default = bml_default[0].traces.series("temp.max")
    _, temps_proposed = bml_proposed[0].traces.series("temp.max")
    assert temps_proposed[-1] < temps_default[-1] - 3.0


def test_proposed_preserves_foreground_fps(alone, bml_default, bml_proposed):
    fps_alone = alone[1].fps.median_fps(start_s=10.0, end_s=DURATION_S)
    fps_default = bml_default[1].fps.median_fps(start_s=10.0, end_s=DURATION_S)
    fps_proposed = bml_proposed[1].fps.median_fps(start_s=10.0, end_s=DURATION_S)
    # Within one FPS bucket of the default (which barely throttles inside
    # this shortened 100 s window) and of the standalone upper bound.
    assert fps_proposed >= fps_default - 1.5
    assert fps_proposed >= fps_alone - 5.0


def test_bml_keeps_progressing_after_migration(bml_proposed):
    sim, _, _ = bml_proposed
    assert sim.app("bml").progress_gigacycles() > 50.0


def test_power_shifts_from_big_to_little(bml_default, bml_proposed):
    from repro.analysis.breakdown import breakdown_from_traces

    default_bd = breakdown_from_traces(
        bml_default[0].traces, ("a15", "a7", "gpu", "mem"), start_s=20.0
    )
    proposed_bd = breakdown_from_traces(
        bml_proposed[0].traces, ("a15", "a7", "gpu", "mem"), start_s=20.0
    )
    assert proposed_bd.shares["a15"] < default_bd.shares["a15"]
    assert proposed_bd.shares["a7"] > default_bd.shares["a7"]


def test_governor_prediction_stream(bml_proposed):
    _, _, governor = bml_proposed
    assert len(governor.predictions) > 500
    hot = [p for p in governor.predictions if p.stable_temp_c is None
           or p.stable_temp_c > 85.0]
    assert hot, "a violation should have been predicted at some point"
