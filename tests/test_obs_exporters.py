"""Exporters: Prometheus text, JSONL events, CSVs, run bundles."""

import csv
import json

import pytest

from repro.apps.catalog import make_app
from repro.errors import AnalysisError
from repro.kernel.kernel import KernelConfig
from repro.kernel.tracing import EventTracer
from repro.obs.exporters import (
    export_run_set,
    export_simulation,
    iter_event_dicts,
    prometheus_text,
    read_events_jsonl,
    write_channel_csvs,
    write_events_jsonl,
)
from repro.obs.manifest import build_manifest, read_manifest, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.sim.engine import Simulation
from repro.sim.trace import TraceRecorder
from repro.soc.snapdragon810 import nexus6p


@pytest.fixture(scope="module")
def short_sim():
    sim = Simulation(nexus6p(), [make_app("hangouts")],
                     kernel_config=KernelConfig(), seed=3)
    sim.run(2.0)
    return sim


# ------------------------------------------------------------- prometheus


def test_prometheus_text_counters_and_help():
    reg = MetricsRegistry()
    reg.counter("repro_x_total", "help text", labels={"d": "a"}).inc(3)
    text = prometheus_text(reg)
    assert "# HELP repro_x_total help text" in text
    assert "# TYPE repro_x_total counter" in text
    assert 'repro_x_total{d="a"} 3' in text


def test_prometheus_text_histogram_exposition():
    reg = MetricsRegistry()
    reg.histogram("repro_h_seconds", buckets=(0.5,)).observe(0.1)
    text = prometheus_text(reg)
    assert 'repro_h_seconds_bucket{le="0.5"} 1' in text
    assert 'repro_h_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_h_seconds_sum 0.1" in text
    assert "repro_h_seconds_count 1" in text


def test_prometheus_text_extra_labels_and_escaping():
    reg = MetricsRegistry()
    reg.counter("repro_x_total", labels={"app": 'we"ird\\'}).inc()
    text = prometheus_text(reg, extra_labels={"run": "r1"})
    assert 'run="r1"' in text
    assert 'app="we\\"ird\\\\"' in text


def test_prometheus_text_declared_family_gets_header():
    reg = MetricsRegistry()
    reg.declare("repro_rare_total", "counter", "may never fire")
    text = prometheus_text(reg)
    assert "# TYPE repro_rare_total counter" in text


def test_prometheus_text_empty_registry_is_empty_string():
    assert prometheus_text(MetricsRegistry()) == ""


def test_prometheus_text_label_newline_escaped():
    reg = MetricsRegistry()
    reg.counter("repro_x_total", labels={"app": "a\nb"}).inc()
    text = prometheus_text(reg)
    assert 'app="a\\nb"' in text
    # The rendered exposition must stay one sample per line.
    samples = [l for l in text.splitlines() if not l.startswith("#")]
    assert samples == ['repro_x_total{app="a\\nb"} 1']


def test_prometheus_text_help_escaped():
    reg = MetricsRegistry()
    reg.declare("repro_odd_total", "counter", "line\nbreak \\ slash")
    text = prometheus_text(reg)
    assert "# HELP repro_odd_total line\\nbreak \\\\ slash" in text
    assert len(text.splitlines()) == 2  # HELP + TYPE, nothing leaked


def test_prometheus_text_help_escaping_also_on_populated_family():
    # The HELP escape must apply on the collect() path too, not just the
    # declared-but-empty path.
    reg = MetricsRegistry()
    reg.counter("repro_odd_total", "two\nlines").inc()
    text = prometheus_text(reg)
    assert "# HELP repro_odd_total two\\nlines" in text


def test_prometheus_text_inf_bucket_present_even_when_empty():
    reg = MetricsRegistry()
    reg.histogram("repro_h_seconds", buckets=(1.0,), labels={"k": "v"})
    text = prometheus_text(reg)
    assert 'repro_h_seconds_bucket{k="v",le="+Inf"} 0' in text
    assert 'repro_h_seconds_count{k="v"} 0' in text


def test_prometheus_text_inf_observation_lands_in_inf_bucket():
    reg = MetricsRegistry()
    hist = reg.histogram("repro_h_seconds", buckets=(1.0,))
    hist.observe(float("inf"))
    text = prometheus_text(reg)
    assert 'repro_h_seconds_bucket{le="1"} 0' in text
    assert 'repro_h_seconds_bucket{le="+Inf"} 1' in text


# ----------------------------------------------------------------- events


def test_events_jsonl_round_trip(tmp_path):
    spans = SpanTracer()
    with spans.span("governor.update", domain="a57"):
        pass
    tracer = EventTracer()
    tracer.emit(0.5, "sched", "spawn", "pid=1")
    path = write_events_jsonl(tmp_path / "events.jsonl", spans=spans,
                              tracer=tracer, run="r1")
    records = read_events_jsonl(path)
    assert len(records) == 2
    kinds = {r["kind"] for r in records}
    assert kinds == {"span", "event"}
    assert all(r["run"] == "r1" for r in records)
    event = next(r for r in records if r["kind"] == "event")
    assert event["name"] == "sched.spawn"
    assert event["detail"] == "pid=1"


def test_iter_event_dicts_sorted_by_sim_time():
    tracer = EventTracer()
    tracer.emit(2.0, "s", "late")
    tracer.emit(1.0, "s", "early")
    times = [r["sim_time_s"] for r in iter_event_dicts(tracer=tracer)]
    assert times == sorted(times)


# ------------------------------------------------------------------- CSVs


def test_write_channel_csvs(tmp_path):
    traces = TraceRecorder()
    traces.record("power.total", 0.0, 1.5)
    traces.record("power.total", 0.1, 2.5)
    (path,) = write_channel_csvs(traces, tmp_path)
    assert path.name == "power.total.csv"
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["time_s", "power.total"]
    assert float(rows[1][1]) == 1.5
    assert len(rows) == 3


# --------------------------------------------------------------- manifests


def test_manifest_content(short_sim, tmp_path):
    manifest = build_manifest(short_sim, label="t", extra={"command": "x"})
    assert manifest["platform"] == "nexus6p"
    assert manifest["seed"] == 3
    assert manifest["dt_s"] == 0.01
    assert manifest["duration_s"] == pytest.approx(2.0)
    assert manifest["apps"] == ["hangouts"]
    assert manifest["command"] == "x"
    assert "repro_sim_steps_total" in manifest["metric_families"]
    assert isinstance(manifest["kernel_config"], dict)
    path = write_manifest(manifest, tmp_path / "manifest.json")
    assert read_manifest(path) == manifest


# -------------------------------------------------------------- run dumps


def test_export_simulation_writes_bundle(short_sim, tmp_path):
    out = export_simulation(short_sim, tmp_path / "run", label="r")
    assert (tmp_path / "run" / "manifest.json").exists()
    assert (tmp_path / "run" / "metrics.prom").exists()
    assert (tmp_path / "run" / "events.jsonl").exists()
    assert out["traces"], "at least one channel CSV"
    assert all(p.exists() for p in out["traces"])
    text = (tmp_path / "run" / "metrics.prom").read_text()
    assert "repro_sim_steps_total 200" in text


def test_export_run_set_merges(short_sim, tmp_path):
    out = export_run_set({"a": short_sim, "b": short_sim}, tmp_path,
                         command="test", seed=3)
    merged = read_manifest(tmp_path / "manifest.json")
    assert merged["schema"].endswith("+set")
    assert sorted(merged["runs"]) == ["a", "b"]
    assert merged["command"] == "test"
    prom = (tmp_path / "metrics.prom").read_text()
    assert 'run="a"' in prom and 'run="b"' in prom
    for record in read_events_jsonl(tmp_path / "events.jsonl"):
        assert record["run"] in ("a", "b")
    assert (tmp_path / "a" / "traces").is_dir()
    assert set(out["runs"]) == {"a", "b"}


def test_export_run_set_empty_raises(tmp_path):
    with pytest.raises(AnalysisError):
        export_run_set({}, tmp_path)


def test_events_jsonl_lines_are_json(short_sim, tmp_path):
    path = write_events_jsonl(tmp_path / "e.jsonl", spans=short_sim.spans,
                              tracer=short_sim.kernel.tracer)
    with path.open() as handle:
        for line in handle:
            json.loads(line)
