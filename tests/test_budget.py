"""Safe power budgets."""

import dataclasses
import math

import pytest

from repro.core.budget import (
    headroom_w,
    safe_power_budget_w,
    sustainable_frequency_fraction,
)
from repro.core.fixed_point import critical_power_w, steady_state_temp_k
from repro.core.stability import ODROID_XU3_LUMPED
from repro.errors import StabilityError
from repro.units import celsius_to_kelvin

P = ODROID_XU3_LUMPED


def test_budget_is_tight():
    # Running exactly at the budget lands the steady state on the limit.
    limit = celsius_to_kelvin(85.0)
    budget = safe_power_budget_w(P, limit)
    assert steady_state_temp_k(P, budget) == pytest.approx(limit, abs=0.01)


def test_budget_monotone_in_limit():
    budgets = [
        safe_power_budget_w(P, celsius_to_kelvin(c)) for c in (70, 80, 90)
    ]
    assert budgets[0] < budgets[1] < budgets[2]


def test_budget_capped_by_critical_power():
    # Very permissive limits cannot exceed the critical power.
    huge = safe_power_budget_w(P, celsius_to_kelvin(300.0))
    assert huge <= critical_power_w(P) + 1e-9


def test_budget_zero_for_limit_barely_above_ambient():
    tiny = safe_power_budget_w(P, P.t_ambient_k + 0.01)
    assert tiny == pytest.approx(0.0, abs=0.01)


def test_limit_below_ambient_rejected():
    with pytest.raises(StabilityError):
        safe_power_budget_w(P, P.t_ambient_k - 5.0)


def test_headroom_sign():
    limit = celsius_to_kelvin(85.0)
    budget = safe_power_budget_w(P, limit)
    assert headroom_w(P, limit, budget - 0.5) == pytest.approx(0.5)
    assert headroom_w(P, limit, budget + 0.5) == pytest.approx(-0.5)


def test_headroom_rejects_negative_power():
    with pytest.raises(StabilityError):
        headroom_w(P, celsius_to_kelvin(85.0), -1.0)


def test_frequency_fraction_one_when_safe():
    limit = celsius_to_kelvin(85.0)
    assert sustainable_frequency_fraction(P, limit, 0.1) == 1.0


def test_frequency_fraction_cubic_when_over():
    limit = celsius_to_kelvin(85.0)
    budget = safe_power_budget_w(P, limit)
    frac = sustainable_frequency_fraction(P, limit, budget * 8.0)
    assert frac == pytest.approx(0.5, rel=1e-6)


def test_better_cooling_larger_budget():
    cooler = dataclasses.replace(P, r_k_per_w=P.r_k_per_w / 2.0)
    limit = celsius_to_kelvin(85.0)
    assert safe_power_budget_w(cooler, limit) > safe_power_budget_w(P, limit)
