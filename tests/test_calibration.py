"""Lumped-model identification from the full platform."""

import numpy as np
import pytest

from repro.core.calibration import (
    ambient_offset_k,
    effective_resistance_k_per_w,
    fit_leakage,
    lump_platform,
)
from repro.core.fixed_point import critical_power_w
from repro.errors import StabilityError
from repro.soc.power_model import leakage_power_w
from repro.thermal.model import ThermalModel


@pytest.fixture()
def model(odroid_platform):
    return ThermalModel(
        odroid_platform.thermal, 0.01, ambient_k=odroid_platform.default_ambient_k
    )


def test_effective_resistance_weighted_average(model):
    r_big = effective_resistance_k_per_w(model, "big", {"a15": 1.0})
    assert r_big == pytest.approx(model.dc_gain("big", "a15"))
    mixed = effective_resistance_k_per_w(model, "big", {"a15": 0.5, "gpu": 0.5})
    assert mixed == pytest.approx(
        0.5 * model.dc_gain("big", "a15") + 0.5 * model.dc_gain("big", "gpu")
    )


def test_effective_resistance_rejects_zero_shares(model):
    with pytest.raises(StabilityError):
        effective_resistance_k_per_w(model, "big", {"a15": 0.0})


def test_ambient_offset(model):
    offset = ambient_offset_k(model, "big", {"board": 0.5})
    assert offset == pytest.approx(0.5 * model.dc_gain("big", "board"))


def test_fit_leakage_reproduces_totals(odroid_platform):
    kappa, beta = fit_leakage(odroid_platform)
    # Re-evaluate the true total and the fit at a probe temperature.
    t = 340.0
    true_total = 0.0
    for c in odroid_platform.clusters:
        true_total += leakage_power_w(c.leakage, t, c.opps[len(c.opps) - 1].voltage_v)
    true_total += leakage_power_w(
        odroid_platform.gpu.leakage, t,
        odroid_platform.gpu.opps[len(odroid_platform.gpu.opps) - 1].voltage_v,
    )
    true_total += leakage_power_w(
        odroid_platform.memory.leakage, t, odroid_platform.memory.leakage.v_ref
    )
    fitted = kappa * t * t * np.exp(-beta / t)
    assert fitted == pytest.approx(true_total, rel=0.01)


def test_lump_platform_full_identification(odroid_platform, model):
    params = lump_platform(odroid_platform, model)
    assert 10.0 < params.r_k_per_w < 16.0
    assert params.t_ambient_k > model.ambient_k  # board-power offset folded in
    assert params.c_j_per_k > 0.0


def test_lumped_critical_power_near_paper_value(odroid_platform, model):
    # The identified model must place the critical power near the paper's
    # 5.5 W (Figure 7b).
    params = lump_platform(odroid_platform, model)
    assert critical_power_w(params) == pytest.approx(5.5, abs=0.3)


def test_lump_accepts_custom_hotspot(odroid_platform, model):
    params_gpu = lump_platform(odroid_platform, model, node="gpu")
    params_big = lump_platform(odroid_platform, model, node="big")
    assert params_gpu.r_k_per_w != params_big.r_k_per_w
