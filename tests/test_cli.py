"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_critical_command(capsys):
    assert main(["critical"]) == 0
    out = capsys.readouterr().out
    assert "5.50 W" in out


def test_stability_command_stable(capsys):
    main(["stability", "--power", "2.0"])
    out = capsys.readouterr().out
    assert "stable" in out
    assert "68.1" in out


def test_stability_command_runaway(capsys):
    main(["stability", "--power", "8.0"])
    out = capsys.readouterr().out
    assert "runaway" in out


def test_budget_command(capsys):
    main(["budget", "--limit", "85"])
    out = capsys.readouterr().out
    assert "2.85 W" in out


def test_fig7_command(capsys):
    main(["fig7"])
    out = capsys.readouterr().out
    assert "P_dyn=2.0" in out
    assert "runaway" in out


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_stability_requires_power():
    with pytest.raises(SystemExit):
        main(["stability"])


def test_parser_lists_all_commands():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, type(a)) and hasattr(a, "choices") and a.choices
    )
    assert set(sub.choices) >= {
        "table1", "table2", "fig7", "fig8", "fig9",
        "stability", "budget", "critical",
        "advise", "describe", "metrics", "trace",
    }


def test_epilog_names_every_command():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if hasattr(a, "choices") and a.choices
    )
    for name in sub.choices:
        assert name in parser.epilog, f"epilog must mention {name!r}"


def test_export_dir_flag_parses():
    parser = build_parser()
    for cmd in ("table1", "table2", "fig8", "fig9"):
        args = parser.parse_args([cmd, "--export-dir", "/tmp/x"])
        assert args.export_dir == "/tmp/x"
        args = parser.parse_args([cmd])
        assert args.export_dir is None


def test_describe_command(capsys):
    main(["describe", "--platform", "odroid-xu3"])
    out = capsys.readouterr().out
    assert "Thermal network:" in out
    assert "board" in out


def test_describe_unknown_platform():
    with pytest.raises(SystemExit):
        main(["describe", "--platform", "pixel9"])


def test_advise_command(capsys):
    main(["advise", "--app", "hangouts", "--limit", "50",
          "--profile-s", "20"])
    out = capsys.readouterr().out
    assert "hangouts" in out
    assert "verdict" in out


def test_advise_unknown_app():
    with pytest.raises(SystemExit):
        main(["advise", "--app", "tiktok"])


def test_metrics_command(capsys):
    main(["metrics", "--app", "hangouts", "--duration", "2"])
    out = capsys.readouterr().out
    assert "# TYPE repro_sim_steps_total counter" in out
    assert "repro_sim_steps_total 200" in out
    assert "repro_governor_decision_latency_seconds_bucket" in out


def test_metrics_command_profile(capsys):
    main(["metrics", "--app", "hangouts", "--duration", "1", "--profile"])
    out = capsys.readouterr().out
    assert "Step profile:" in out


def test_trace_command(capsys):
    main(["trace", "--app", "hangouts", "--duration", "2", "--limit", "5"])
    out = capsys.readouterr().out
    assert "# spans (last 5)" in out
    assert "governor.update" in out
    assert "# kernel events" in out
    assert "sched: spawn" in out


def test_metrics_unknown_app():
    with pytest.raises(SystemExit):
        main(["metrics", "--app", "tiktok"])


def test_table_export_dir(capsys, tmp_path, monkeypatch):
    # Patch the heavy run helpers: the export plumbing is what's under test.
    import repro.experiments.nexus as nexus
    from repro.apps.catalog import make_app
    from repro.kernel.kernel import KernelConfig
    from repro.sim.engine import Simulation
    from repro.soc.snapdragon810 import nexus6p

    sim = Simulation(nexus6p(), [make_app("hangouts")],
                     kernel_config=KernelConfig(), seed=3)
    sim.run(1.0)
    monkeypatch.setattr(nexus, "table1", lambda seed: [])
    monkeypatch.setattr(nexus, "table1_runs", lambda seed: {"only": sim})
    main(["table1", "--export-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert f"exported to {tmp_path}" in out
    assert (tmp_path / "manifest.json").exists()
    assert (tmp_path / "metrics.prom").exists()
    assert (tmp_path / "events.jsonl").exists()
    assert (tmp_path / "only" / "traces").is_dir()


def test_platforms_list_command(capsys):
    assert main(["platforms", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("nexus6p", "odroid-xu3", "odroid-xu3-fan", "pixel-xl"):
        assert name in out


def test_platforms_list_json_round_trips(capsys):
    import json

    from repro.soc.defs import PlatformDef

    assert main(["platforms", "list", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) >= {"nexus6p", "odroid-xu3", "pixel-xl"}
    for data in payload.values():
        PlatformDef.from_dict(data).validate()


def test_platforms_describe_text(capsys):
    assert main(["platforms", "describe", "--platform", "pixel-xl"]) == 0
    out = capsys.readouterr().out
    assert "kryo-gold" in out
    assert "step_wise" in out
    assert "Thermal network" in out


def test_platforms_describe_json_is_the_def(capsys):
    import json

    from repro.soc.registry import get

    assert main(["platforms", "describe", "--platform", "odroid-xu3",
                 "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data == get("odroid-xu3").to_dict()


def test_platforms_describe_unknown_exits():
    with pytest.raises(SystemExit):
        main(["platforms", "describe", "--platform", "palm-pre"])


def test_platforms_validate_command(capsys):
    assert main(["platforms", "validate"]) == 0
    out = capsys.readouterr().out
    assert "5 platform definition(s) valid" in out


def test_platforms_validate_file(tmp_path, capsys):
    import json

    from repro.soc.registry import get

    good = tmp_path / "good.json"
    good.write_text(json.dumps(get("pixel-xl").to_dict()))
    assert main(["platforms", "validate", "--file", str(good)]) == 0
    assert "pixel-xl: OK" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    data = get("pixel-xl").to_dict()
    data["software"]["thermal"]["sensor"] = "bogus"
    bad.write_text(json.dumps(data))
    with pytest.raises(SystemExit):
        main(["platforms", "validate", "--file", str(bad)])


def test_describe_any_registered_platform(capsys):
    assert main(["describe", "--platform", "pixel-xl"]) == 0
    assert "skin" in capsys.readouterr().out


def test_describe_unknown_platform_exits():
    with pytest.raises(SystemExit):
        main(["describe", "--platform", "palm-pre"])


# -------------------------------------------------- calibration pipeline


@pytest.fixture(scope="module")
def clean_trace_file(tmp_path_factory):
    """One clean excitation trace on disk, shared by the calib CLI tests."""
    path = tmp_path_factory.mktemp("calib") / "xu3.json"
    assert main([
        "platforms", "excite", "--platform", "odroid-xu3",
        "--seed", "1", "--out", str(path),
    ]) == 0
    return path


def test_platforms_excite_writes_trace(clean_trace_file):
    from repro.calib import load_trace_file

    trace = load_trace_file(clean_trace_file)
    assert trace.platform_hint == "odroid-xu3"
    assert trace.duration_s() > 0.0


def test_platforms_degrade_round_trip(clean_trace_file, tmp_path, capsys):
    from repro.calib import BUILTIN_MODELS, load_trace_file

    out = tmp_path / "degraded.json"
    assert main([
        "platforms", "degrade", "--trace", str(clean_trace_file),
        "--model", "noisy-sysfs", "--seed", "7", "--out", str(out),
    ]) == 0
    assert "noisy-sysfs" in capsys.readouterr().out
    degraded = load_trace_file(out)
    assert degraded.meta["degradation"] == {
        "model": BUILTIN_MODELS["noisy-sysfs"].to_dict(), "seed": 7,
    }
    clean = load_trace_file(clean_trace_file)
    assert len(degraded.series("temp.big")[0]) < len(clean.series("temp.big")[0])


def test_platforms_degrade_unusable_inputs_exit_2(tmp_path, capsys, clean_trace_file):
    from repro.cli import EXIT_TRACE_ERROR

    code = main([
        "platforms", "degrade", "--trace", str(tmp_path / "nope.json"),
        "--model", "sysfs",
    ])
    assert code == EXIT_TRACE_ERROR
    assert "cannot read trace" in capsys.readouterr().err

    code = main([
        "platforms", "degrade", "--trace", str(clean_trace_file),
        "--model", "bogus-model",
    ])
    assert code == EXIT_TRACE_ERROR
    assert "neither a built-in" in capsys.readouterr().err


def test_platforms_fit_truncated_trace_exits_2(tmp_path, capsys, clean_trace_file):
    from repro.cli import EXIT_TRACE_ERROR

    cut = tmp_path / "cut.json"
    cut.write_text(clean_trace_file.read_text()[:100])
    assert main(["platforms", "fit", "--trace", str(cut)]) == EXIT_TRACE_ERROR
    err = capsys.readouterr().err
    assert "bad trace" in err and "line" in err


def test_platforms_fit_clean_trace_summary(clean_trace_file, capsys):
    assert main([
        "platforms", "fit", "--trace", str(clean_trace_file),
        "--name", "xu3-cli-refit",
    ]) == 0
    assert "fit report" in capsys.readouterr().out


def test_platforms_fit_missing_channel_exits_3(tmp_path, capsys, clean_trace_file):
    import json

    from repro.cli import EXIT_DEGRADED_FIT

    data = json.loads(clean_trace_file.read_text())
    del data["channels"]["volt.gpu"]
    partial = tmp_path / "partial.json"
    partial.write_text(json.dumps(data))
    code = main([
        "platforms", "fit", "--trace", str(partial),
        "--name", "xu3-partial",
    ])
    assert code == EXIT_DEGRADED_FIT
    captured = capsys.readouterr()
    assert "dvfs.gpu=unfitted" in captured.err
    assert "fit report" in captured.out


def test_platforms_fit_robust_off_raises_trace_exit(tmp_path, capsys, clean_trace_file):
    import json

    from repro.cli import EXIT_TRACE_ERROR

    data = json.loads(clean_trace_file.read_text())
    del data["channels"]["volt.gpu"]
    partial = tmp_path / "partial.json"
    partial.write_text(json.dumps(data))
    code = main([
        "platforms", "fit", "--trace", str(partial),
        "--name", "xu3-partial-strict", "--robust", "off",
    ])
    assert code == EXIT_TRACE_ERROR
    assert "fit failed" in capsys.readouterr().err
