"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_critical_command(capsys):
    assert main(["critical"]) == 0
    out = capsys.readouterr().out
    assert "5.50 W" in out


def test_stability_command_stable(capsys):
    main(["stability", "--power", "2.0"])
    out = capsys.readouterr().out
    assert "stable" in out
    assert "68.1" in out


def test_stability_command_runaway(capsys):
    main(["stability", "--power", "8.0"])
    out = capsys.readouterr().out
    assert "runaway" in out


def test_budget_command(capsys):
    main(["budget", "--limit", "85"])
    out = capsys.readouterr().out
    assert "2.85 W" in out


def test_fig7_command(capsys):
    main(["fig7"])
    out = capsys.readouterr().out
    assert "P_dyn=2.0" in out
    assert "runaway" in out


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_stability_requires_power():
    with pytest.raises(SystemExit):
        main(["stability"])


def test_parser_lists_all_commands():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, type(a)) and hasattr(a, "choices") and a.choices
    )
    assert set(sub.choices) >= {
        "table1", "table2", "fig7", "fig8", "fig9",
        "stability", "budget", "critical",
    }


def test_describe_command(capsys):
    main(["describe", "--platform", "odroid-xu3"])
    out = capsys.readouterr().out
    assert "Thermal network:" in out
    assert "board" in out


def test_describe_unknown_platform():
    with pytest.raises(SystemExit):
        main(["describe", "--platform", "pixel9"])


def test_advise_command(capsys):
    main(["advise", "--app", "hangouts", "--limit", "50",
          "--profile-s", "20"])
    out = capsys.readouterr().out
    assert "hangouts" in out
    assert "verdict" in out


def test_advise_unknown_app():
    with pytest.raises(SystemExit):
        main(["advise", "--app", "tiktok"])
