"""Per-rail energy meter."""

import pytest

from repro.errors import AnalysisError
from repro.power.energy import EnergyMeter


def test_accumulates_energy():
    meter = EnergyMeter()
    for _ in range(100):
        meter.accumulate({"a15": 2.0, "gpu": 1.0}, 0.01)
    assert meter.energy_j("a15") == pytest.approx(2.0)
    assert meter.total_energy_j() == pytest.approx(3.0)
    assert meter.elapsed_s == pytest.approx(1.0)


def test_average_power():
    meter = EnergyMeter()
    meter.accumulate({"a15": 4.0}, 0.5)
    meter.accumulate({"a15": 0.0}, 0.5)
    assert meter.average_power_w("a15") == pytest.approx(2.0)


def test_breakdown_shares_sum_to_one():
    meter = EnergyMeter()
    meter.accumulate({"a15": 3.0, "gpu": 1.0}, 1.0)
    shares = meter.breakdown()
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares["a15"] == pytest.approx(0.75)


def test_breakdown_subset_renormalises():
    meter = EnergyMeter()
    meter.accumulate({"a15": 3.0, "gpu": 1.0, "board": 4.0}, 1.0)
    shares = meter.breakdown(("a15", "gpu"))
    assert shares["a15"] == pytest.approx(0.75)


def test_unknown_rail_energy_is_zero():
    meter = EnergyMeter()
    meter.accumulate({"a15": 1.0}, 1.0)
    assert meter.energy_j("gpu") == 0.0


def test_errors_without_accumulation():
    meter = EnergyMeter()
    with pytest.raises(AnalysisError):
        meter.average_power_w("a15")
    with pytest.raises(AnalysisError):
        meter.breakdown()


def test_bad_dt():
    meter = EnergyMeter()
    with pytest.raises(AnalysisError):
        meter.accumulate({"a15": 1.0}, 0.0)


def test_reset():
    meter = EnergyMeter()
    meter.accumulate({"a15": 1.0}, 1.0)
    meter.reset()
    assert meter.elapsed_s == 0.0
    assert meter.total_energy_j() == 0.0
