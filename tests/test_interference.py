"""App-interference measurement."""

import pytest

from repro.analysis.interference import measure_interference
from repro.apps.catalog import make_app
from repro.apps.mibench import basicmath_large
from repro.errors import AnalysisError
from repro.experiments.nexus import nexus_thermal_config
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.snapdragon810 import nexus6p

DURATION_S = 60.0


def run(with_background, throttled=True, seed=3):
    apps = [make_app("stickman")]
    if with_background:
        apps.append(basicmath_large(cluster="a57"))
    config = KernelConfig(thermal=nexus_thermal_config() if throttled else None)
    sim = Simulation(nexus6p(), apps, kernel_config=config, seed=seed)
    sim.run(DURATION_S)
    return sim


@pytest.fixture(scope="module")
def solo():
    return run(False)


@pytest.fixture(scope="module")
def contended():
    return run(True)


def test_background_slows_foreground(solo, contended):
    result = measure_interference(solo, contended, "stickman", "bml")
    assert result.slowdown_pct > 5.0
    assert result.contended_fps < result.solo_fps


def test_background_adds_heat_without_governor():
    solo = run(False, throttled=False)
    contended = run(True, throttled=False)
    result = measure_interference(solo, contended, "stickman", "bml")
    # The delta is named for its Celsius operands (lint R502): a peak
    # difference, never an absolute kelvin temperature.
    assert not hasattr(result, "extra_heat_k")
    assert result.extra_heat_c > 1.0


def test_result_fields(solo, contended):
    result = measure_interference(solo, contended, "stickman", "bml")
    assert result.foreground == "stickman"
    assert result.background == "bml"
    assert result.solo_fps > 0.0


def test_background_in_solo_run_rejected(contended):
    with pytest.raises(AnalysisError):
        measure_interference(contended, contended, "stickman", "bml")


def test_unknown_apps_rejected(solo, contended):
    with pytest.raises(Exception):
        measure_interference(solo, contended, "ghost", "bml")
