"""Energy-optimal frequency analysis."""

import pytest

from repro.analysis.energy_opt import (
    energy_optimal_point,
    energy_per_gigacycle,
    race_to_idle_penalty,
)
from repro.errors import AnalysisError
from repro.kernel.kernel import KernelConfig
from repro.apps.mibench import basicmath_large
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3

TEMP_K = 350.0


@pytest.fixture(scope="module")
def big():
    return odroid_xu3().big_cluster


def test_one_point_per_opp(big):
    points = energy_per_gigacycle(big, TEMP_K)
    assert len(points) == len(big.opps)
    freqs = [p.freq_hz for p in points]
    assert freqs == sorted(freqs)


def test_seconds_inverse_to_frequency(big):
    points = energy_per_gigacycle(big, TEMP_K)
    assert points[0].seconds_per_gcycle > points[-1].seconds_per_gcycle
    assert points[0].seconds_per_gcycle == pytest.approx(
        1e9 / (big.ipc * big.opps.min_freq_hz), rel=1e-9
    )


def test_interior_energy_minimum(big):
    points = energy_per_gigacycle(big, TEMP_K)
    best = energy_optimal_point(big, TEMP_K)
    # The optimum is strictly inside the ladder at gaming temperatures:
    # leakage punishes the bottom, V^2 punishes the top.
    assert points[0].joules_per_gcycle > best.joules_per_gcycle
    assert points[-1].joules_per_gcycle > best.joules_per_gcycle
    assert big.opps.min_freq_hz < best.freq_hz < big.opps.max_freq_hz


def test_hotter_chip_pushes_optimum_up(big):
    # More leakage makes waiting more expensive: run faster when hot.
    cool = energy_optimal_point(big, 310.0)
    hot = energy_optimal_point(big, 370.0)
    assert hot.freq_hz >= cool.freq_hz


def test_race_to_idle_penalty_positive(big):
    penalty = race_to_idle_penalty(big, TEMP_K)
    assert penalty > 0.0


def test_busy_cores_validation(big):
    with pytest.raises(AnalysisError):
        energy_per_gigacycle(big, TEMP_K, busy_cores=0.0)
    with pytest.raises(AnalysisError):
        energy_per_gigacycle(big, TEMP_K, busy_cores=5.0)


def test_simulation_cross_check(big):
    """Measured J/Gcycle of pinned BML runs matches the analytic ordering."""
    def measure(freq_mhz):
        sim = Simulation(
            odroid_xu3(), [basicmath_large()],
            kernel_config=KernelConfig(
                cpu_governor="userspace", gpu_governor="powersave"
            ),
            seed=1,
        )
        sim.kernel.userspace_set_speed("a15", freq_mhz * 1e6)
        sim.run(20.0)
        joules = sim.energy.energy_j("a15")
        gcycles = sim.app("bml").progress_gigacycles()
        return joules / gcycles

    # Compare the very bottom, a mid OPP and the top of the ladder.
    low, mid, high = measure(200), measure(1000), measure(2000)
    assert mid < low    # crawling wastes leakage/idle energy
    assert mid < high   # sprinting wastes V^2 energy
