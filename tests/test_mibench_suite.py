"""MiBench suite: rate-limited vs compute-bound kernels."""

import pytest

from repro.apps.mibench import (
    MIBENCH_SUITE,
    BatchApp,
    dijkstra_large,
    fft_large,
    qsort_large,
    susan_corners,
)
from repro.errors import ConfigurationError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3


def make_sim(apps, seed=1):
    return Simulation(odroid_xu3(), apps, kernel_config=KernelConfig(), seed=seed)


def test_suite_contains_five_kernels():
    assert set(MIBENCH_SUITE) == {"bml", "qsort", "susan", "fft", "dijkstra"}
    for factory in MIBENCH_SUITE.values():
        assert isinstance(factory(), BatchApp)


def test_rate_validation():
    with pytest.raises(ConfigurationError):
        BatchApp("x", rate_gcycles_per_s=0.0)


def test_rate_limited_kernel_uses_partial_cpu():
    dijkstra = dijkstra_large()
    sim = make_sim([dijkstra])
    sim.run(10.0)
    # 0.8 Gcycles/s of demand: the interactive governor settles at a low
    # frequency (load ~target) instead of pinning the cluster at 2 GHz.
    _, busy = sim.traces.series("busy.a15")
    assert 0.3 < busy[-1] < 0.95
    assert sim.kernel.policies["a15"].cur_freq_hz < 1200e6
    assert dijkstra.progress_gigacycles() == pytest.approx(8.0, rel=0.1)


def test_compute_bound_kernel_saturates_core():
    qsort = qsort_large()
    sim = make_sim([qsort])
    sim.run(5.0)
    _, busy = sim.traces.series("busy.a15")
    assert busy[-1] == pytest.approx(1.0, abs=0.05)


def test_multithreaded_susan_uses_two_cores():
    susan = susan_corners()
    sim = make_sim([susan])
    sim.run(5.0)
    _, busy = sim.traces.series("busy.a15")
    assert busy[-1] == pytest.approx(2.0, abs=0.1)


def test_memory_bound_draws_less_power_than_compute_bound():
    fft = fft_large()
    sim_fft = make_sim([fft])
    sim_fft.run(10.0)
    bml_sim = make_sim([MIBENCH_SUITE["bml"]()])
    bml_sim.run(10.0)
    assert (
        sim_fft.energy.average_power_w("a15")
        < bml_sim.energy.average_power_w("a15")
    )


def test_rate_limited_progress_independent_of_frequency():
    # The kernel is stalled on memory: pinning the CPU slower barely
    # changes its retirement rate (as long as capacity >= demand).
    slow = Simulation(
        odroid_xu3(), [fft_large()],
        kernel_config=KernelConfig(cpu_governor="userspace"), seed=1,
    )
    slow.kernel.userspace_set_speed("a15", 1200e6)
    slow.run(10.0)
    fast = make_sim([fft_large()])
    fast.run(10.0)
    assert slow.app("fft").progress_gigacycles() == pytest.approx(
        fast.app("fft").progress_gigacycles(), rel=0.1
    )
