"""Platform registry semantics, and a data-only device running end-to-end."""

import pytest

from repro.errors import ConfigurationError
from repro.soc import registry
from repro.soc.defs import PlatformDef
from repro.soc.exynos5422 import ODROID_XU3, ODROID_XU3_FAN
from repro.soc.platform import PlatformSpec
from repro.soc.registry import REGISTRY, PlatformRegistry
from repro.soc.snapdragon810 import NEXUS6P, NEXUS6P_DEF
from repro.soc.snapdragon821 import PIXEL_XL
from repro.soc.snapdragon_modern import SNAPDRAGON_MODERN


def _testbox_def(name="testbox"):
    """A device no repo code knows: the phone definition patched as data."""
    data = REGISTRY.get(PIXEL_XL).to_dict()
    data["name"] = name
    data["extras"] = {"soc": "Testbox"}
    data["software"]["t_limit_c"] = 50.0
    return PlatformDef.from_dict(data)


def test_builtins_registered():
    assert registry.platform_names() == (
        NEXUS6P, ODROID_XU3, ODROID_XU3_FAN, PIXEL_XL, SNAPDRAGON_MODERN,
    )
    for name in registry.platform_names():
        assert registry.is_registered(name)
        assert name in REGISTRY


def test_build_compiles_a_fresh_spec():
    spec = registry.build(NEXUS6P)
    assert isinstance(spec, PlatformSpec)
    assert spec.name == NEXUS6P
    assert spec == registry.build(NEXUS6P)
    assert spec is not registry.build(NEXUS6P)


def test_get_unknown_lists_names():
    with pytest.raises(ConfigurationError) as err:
        registry.get("palm-pre")
    assert "palm-pre" in str(err.value)
    assert NEXUS6P in str(err.value)


def test_fresh_registry_register_get_unregister():
    reg = PlatformRegistry()
    assert len(reg) == 0
    returned = reg.register(_testbox_def())
    assert returned.name == "testbox"
    assert reg.names() == ("testbox",)
    assert list(reg) == ["testbox"]
    assert reg.build("testbox").extras == {"soc": "Testbox"}
    removed = reg.unregister("testbox")
    assert removed is returned
    assert "testbox" not in reg
    with pytest.raises(ConfigurationError):
        reg.unregister("testbox")


def test_duplicate_register_requires_replace():
    reg = PlatformRegistry()
    reg.register(_testbox_def())
    with pytest.raises(ConfigurationError):
        reg.register(_testbox_def())
    patched = _testbox_def()
    assert reg.register(patched, replace=True) is patched


def test_register_rejects_non_defs():
    with pytest.raises(ConfigurationError):
        PlatformRegistry().register(NEXUS6P_DEF.compile())


def test_register_rejects_broken_defs():
    data = _testbox_def().to_dict()
    data["thermal"]["nodes"] = [{"name": "soc", "capacitance_j_per_k": 2.0}]
    data["thermal"]["links"] = [
        {"a": "soc", "b": "ambient", "conductance_w_per_k": 0.1}
    ]
    broken = PlatformDef.from_dict(data)  # memory maps to a missing node
    reg = PlatformRegistry()
    with pytest.raises(ConfigurationError):
        reg.register(broken)
    assert len(reg) == 0


def test_data_only_platform_runs_end_to_end(capsys):
    """Register a device as pure data; run it through every layer."""
    from repro.campaign.spec import Axis, CampaignSpec
    from repro.cli import main
    from repro.sim.experiment import AppSpec, Scenario

    registry.register(_testbox_def())
    try:
        result = Scenario(
            platform="testbox", apps=(AppSpec.catalog("stickman"),),
            policy="stock", duration_s=8.0, seed=1,
        ).run()
        assert result.peak_temp_c > 0.0

        runs = CampaignSpec(
            name="testbox-grid",
            base={"apps": (AppSpec.catalog("stickman"),), "duration_s": 8.0},
            axes=(Axis("platform", ("testbox", PIXEL_XL)),),
        ).expand()
        assert [r.scenario.platform for r in runs] == ["testbox", PIXEL_XL]

        assert main(["describe", "--platform", "testbox"]) == 0
        assert main(["platforms", "describe", "--platform", "testbox"]) == 0
        out = capsys.readouterr().out
        assert "testbox" in out
    finally:
        registry.unregister("testbox")


def test_unknown_platform_scenario_names_the_catalogue():
    from repro.sim.experiment import AppSpec, Scenario

    with pytest.raises(ConfigurationError) as err:
        Scenario(platform="palm-pre", apps=(AppSpec.catalog("stickman"),))
    assert PIXEL_XL in str(err.value)


def test_lint_sysfs_authority_covers_all_platforms():
    from repro.lint.rules.sysfs_contract import sysfs_authority

    paths, _prefixes = sysfs_authority()
    # The Odroid's INA231 nodes and the phones' tsens zones both appear:
    # the authority is the union over every registered platform.
    assert any("4-0040" in p for p in paths)
    assert any("thermal" in p for p in paths)
