"""docs/FAULTS.md must match the fault subsystem and the CLI."""

import argparse
import pathlib
import re
from dataclasses import fields as dataclass_fields

import pytest

from repro.cli import build_parser
from repro.core import governor as governor_mod
from repro.core.governor import GovernorConfig
from repro.faults import FAULT_KINDS, FaultEvent, builtin_plan_names
from repro.faults.report import EXCESS_TOLERANCE_C

DOC = pathlib.Path(__file__).parent.parent / "docs" / "FAULTS.md"

#: Inline-code tokens that look like CLI flags, e.g. `--format {text,json}`.
_FLAG_RE = re.compile(r"`(--[a-z][a-z-]*)")

#: GovernorConfig knobs the degradation ladder documents.
HARDENING_FIELDS = (
    "sensor_staleness_s",
    "max_temp_rate_c_per_s",
    "eio_retries",
    "eio_backoff_s",
    "failsafe_after_s",
    "breach_after_s",
    "failsafe_exit_s",
    "failsafe_margin_c",
)

#: Metric families the fault subsystem owns.
FAULT_METRICS = (
    "repro_faults_injected_total",
    "repro_faults_detected_total",
    "repro_governor_failsafe_seconds_total",
    "repro_fault_detection_latency_seconds",
)


def _subparser_choices(parser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    raise AssertionError("no subparsers found")


@pytest.fixture(scope="module")
def doc_text():
    return DOC.read_text()


def test_doc_exists():
    assert DOC.exists(), "docs/FAULTS.md is part of the fault contract"


def test_every_fault_kind_documented(doc_text):
    for kind in FAULT_KINDS:
        assert f"`{kind}`" in doc_text, f"fault kind {kind!r} missing"


def test_every_event_field_documented(doc_text):
    for field in dataclass_fields(FaultEvent):
        assert f"`{field.name}`" in doc_text, (
            f"FaultEvent field {field.name!r} missing from the doc"
        )


def test_every_builtin_plan_documented(doc_text):
    for name in builtin_plan_names():
        assert f"`{name}`" in doc_text, f"built-in plan {name!r} missing"


def test_hardening_knobs_documented_and_real(doc_text):
    config_fields = {f.name for f in dataclass_fields(GovernorConfig)}
    for name in HARDENING_FIELDS:
        assert name in config_fields, f"{name!r} is not a GovernorConfig field"
        assert f"`{name}`" in doc_text, f"hardening knob {name!r} missing"


def test_ladder_constants_documented_and_real(doc_text):
    for const in ("FAILSAFE_RELAX_PERIODS", "FAILSAFE_HYST_C",
                  "EIO_BACKOFF_CAP"):
        assert hasattr(governor_mod, const), f"{const} gone from governor"
        assert f"`{const}`" in doc_text, f"constant {const} missing"
    assert f"`EXCESS_TOLERANCE_C` ({EXCESS_TOLERANCE_C:g}" in doc_text, (
        "documented excess tolerance does not match repro.faults.report"
    )


def test_fault_metrics_documented_everywhere(doc_text):
    obs_doc = (DOC.parent / "OBSERVABILITY.md").read_text()
    for family in FAULT_METRICS:
        assert f"`{family}`" in doc_text, f"{family} missing from FAULTS.md"
        assert f"`{family}`" in obs_doc, (
            f"{family} missing from OBSERVABILITY.md"
        )


def test_detection_kinds_documented(doc_text):
    # The detection kinds the governor's _note_fault may emit.
    for kind in ("stale", "implausible", "eio", "stall", "breach"):
        assert f"`{kind}`" in doc_text, f"detection kind {kind!r} missing"


def test_chaos_flags_documented(doc_text):
    chaos = _subparser_choices(build_parser())["chaos"]
    chaos_flags = {
        flag
        for action in chaos._actions
        for flag in action.option_strings
        if flag.startswith("--") and flag != "--help"
    }
    documented = set(_FLAG_RE.findall(doc_text))
    missing = chaos_flags - documented
    assert not missing, f"chaos flags missing from the doc: {sorted(missing)}"
    # Nothing documented may be stale anywhere in the CLI.
    all_flags = set()

    def walk(parsers):
        for sub in parsers.values():
            for action in sub._actions:
                for flag in action.option_strings:
                    if flag.startswith("--") and flag != "--help":
                        all_flags.add(flag)
            try:
                walk(_subparser_choices(sub))
            except AssertionError:
                pass

    walk(_subparser_choices(build_parser()))
    stale = documented - all_flags
    assert not stale, f"documented but not in build_parser(): {sorted(stale)}"
