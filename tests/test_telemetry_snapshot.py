"""Snapshot/merge algebra: unit tests plus hypothesis properties.

The merge is the correctness core of cross-process telemetry: campaign
workers snapshot their registries independently and the parent folds them
in grid order.  Associativity (always) and commutativity (for counters
and histograms) are what make the fold order irrelevant.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.obs.metrics import SNAPSHOT_SCHEMA, MetricsRegistry
from repro.obs.telemetry import (
    merge_snapshots,
    registry_from_snapshot,
    snapshot_json,
)

BUCKETS = (0.5, 2.0)


def make_snapshot(counters=(), observations=(), gauge=None, as_of=None):
    """A registry snapshot from compact test data.

    ``counters`` is (label, amount) pairs, ``observations`` histogram
    samples, ``gauge`` an optional float set on one gauge family.
    """
    reg = MetricsRegistry()
    reg.declare("repro_c_total", "counter", "a counter")
    reg.declare("repro_h_seconds", "histogram", "a histogram",
                buckets=BUCKETS)
    for label, amount in counters:
        reg.counter("repro_c_total", labels={"k": label}).inc(amount)
    for value in observations:
        reg.histogram("repro_h_seconds").observe(value)
    if gauge is not None:
        reg.gauge("repro_g_celsius", "a gauge").set(gauge)
    return reg.snapshot(as_of_s=as_of)


# ------------------------------------------------------------------- units


def test_snapshot_json_is_byte_stable():
    a = make_snapshot(counters=[("x", 1), ("y", 2)], observations=[0.1])
    b = make_snapshot(counters=[("y", 2), ("x", 1)], observations=[0.1])
    assert snapshot_json(a) == snapshot_json(b)


def test_merge_requires_at_least_one_snapshot():
    with pytest.raises(ConfigurationError):
        merge_snapshots()


def test_merge_rejects_wrong_schema():
    with pytest.raises(ConfigurationError, match="schema"):
        merge_snapshots({"schema": "bogus/9", "families": {}})


def test_merge_of_one_is_identity():
    snap = make_snapshot(counters=[("x", 3)], observations=[0.1, 5.0],
                         gauge=41.0)
    assert snapshot_json(merge_snapshots(snap)) == snapshot_json(snap)


def test_counters_sum_and_histograms_add():
    merged = merge_snapshots(
        make_snapshot(counters=[("x", 2)], observations=[0.1]),
        make_snapshot(counters=[("x", 3), ("y", 1)], observations=[1.0, 9.0]),
    )
    counter = merged["families"]["repro_c_total"]
    by_label = {tuple(c["labels"][0]): c["value"] for c in counter["children"]}
    assert by_label == {("k", "x"): 5.0, ("k", "y"): 1.0}
    (hist,) = merged["families"]["repro_h_seconds"]["children"]
    assert hist["counts"] == [1, 1, 1]  # 0.1 <= 0.5, 1.0 <= 2.0, 9.0 -> +Inf
    assert hist["sum"] == pytest.approx(10.1)


def test_gauge_last_write_wins_by_sim_time():
    early = make_snapshot(gauge=10.0, as_of=1.0)
    late = make_snapshot(gauge=20.0, as_of=2.0)
    for order in ((early, late), (late, early)):
        merged = merge_snapshots(*order)
        (child,) = merged["families"]["repro_g_celsius"]["children"]
        assert child["value"] == 20.0
        assert child["as_of_s"] == 2.0


def test_gauge_tie_breaks_toward_later_argument():
    a = make_snapshot(gauge=10.0, as_of=1.0)
    b = make_snapshot(gauge=20.0, as_of=1.0)
    (child,) = merge_snapshots(a, b)["families"]["repro_g_celsius"][
        "children"]
    assert child["value"] == 20.0


def test_merge_rejects_kind_conflicts():
    a = make_snapshot()
    b = make_snapshot()
    b["families"]["repro_c_total"]["kind"] = "gauge"
    with pytest.raises(ConfigurationError, match="cannot merge"):
        merge_snapshots(a, b)


def test_merge_rejects_bucket_mismatch():
    a = make_snapshot(observations=[0.1])
    b = make_snapshot(observations=[0.1])
    b["families"]["repro_h_seconds"]["buckets"] = [1.0]
    with pytest.raises(ConfigurationError, match="bucket bounds"):
        merge_snapshots(a, b)


def test_registry_round_trip():
    snap = make_snapshot(counters=[("x", 2), ("y", 7)],
                         observations=[0.1, 1.0, 3.0], gauge=55.0)
    rebuilt = registry_from_snapshot(snap).snapshot()
    assert snapshot_json(rebuilt) == snapshot_json(snap)


def test_wall_clock_families_can_be_excluded():
    reg = MetricsRegistry()
    reg.counter("repro_sim_total", "sim").inc()
    reg.histogram("repro_host_seconds", "host", buckets=(1.0,),
                  wall_clock=True).observe(0.5)
    full = reg.snapshot()
    assert set(full["families"]) == {"repro_sim_total", "repro_host_seconds"}
    trimmed = reg.snapshot(include_wall_clock=False)
    assert set(trimmed["families"]) == {"repro_sim_total"}
    assert trimmed["schema"] == SNAPSHOT_SCHEMA


# -------------------------------------------------------------- properties

counter_data = st.lists(
    st.tuples(st.sampled_from("abcd"), st.integers(0, 50)),
    min_size=0, max_size=4,
)
# Dyadic rationals: their addition is exact in binary floating point, so
# associativity holds bit-for-bit.  (For arbitrary floats the histogram
# sums agree only up to rounding — which is why the campaign runner pins
# one fold order, the grid order, for its byte-identity guarantee.)
observation_data = st.lists(
    st.integers(0, 40).map(lambda n: n * 0.25), min_size=0, max_size=5
)
snapshot_data = st.builds(
    make_snapshot,
    counters=counter_data,
    observations=observation_data,
    gauge=st.one_of(st.none(), st.floats(0.0, 100.0, allow_nan=False)),
    as_of=st.one_of(st.none(), st.floats(0.0, 60.0, allow_nan=False)),
)


@given(a=snapshot_data, b=snapshot_data, c=snapshot_data)
@settings(max_examples=100, deadline=None)
def test_merge_is_associative(a, b, c):
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    assert snapshot_json(left) == snapshot_json(right)
    assert snapshot_json(left) == snapshot_json(merge_snapshots(a, b, c))


@given(a=st.builds(make_snapshot, counters=counter_data,
                   observations=observation_data),
       b=st.builds(make_snapshot, counters=counter_data,
                   observations=observation_data))
@settings(max_examples=100, deadline=None)
def test_merge_commutes_for_counters_and_histograms(a, b):
    assert snapshot_json(merge_snapshots(a, b)) == snapshot_json(
        merge_snapshots(b, a)
    )


@given(av=st.floats(0.0, 100.0, allow_nan=False),
       bv=st.floats(0.0, 100.0, allow_nan=False),
       at=st.floats(0.0, 60.0, allow_nan=False),
       bt=st.floats(0.0, 60.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_gauge_merge_commutes_for_distinct_stamps(av, bv, at, bt):
    if at == bt:
        return  # ties legitimately break by argument order
    a = make_snapshot(gauge=av, as_of=at)
    b = make_snapshot(gauge=bv, as_of=bt)
    assert snapshot_json(merge_snapshots(a, b)) == snapshot_json(
        merge_snapshots(b, a)
    )


@given(data=st.lists(st.builds(make_snapshot, counters=counter_data,
                               observations=observation_data),
                     min_size=1, max_size=4))
@settings(max_examples=50, deadline=None)
def test_merged_snapshot_round_trips_through_registry(data):
    merged = merge_snapshots(*data)
    rebuilt = registry_from_snapshot(merged).snapshot()
    assert snapshot_json(rebuilt) == snapshot_json(merged)
