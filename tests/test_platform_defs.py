"""PlatformDef schema: validation, serialisation, and property tests."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.kernel.kernel import ThermalConfig
from repro.soc.defs import DEFAULT_T_LIMIT_C, PlatformDef
from repro.soc.platform import PlatformSpec
from repro.soc.registry import REGISTRY, platform_names


# -- every registered platform ----------------------------------------------


@pytest.mark.parametrize("name", platform_names())
def test_registered_platform_compiles(name):
    spec = REGISTRY.get(name).validate()
    assert isinstance(spec, PlatformSpec)
    assert spec.name == name
    assert spec.big_cluster is not spec.little_cluster


@pytest.mark.parametrize("name", platform_names())
def test_registered_platform_round_trips_through_json(name):
    pdef = REGISTRY.get(name)
    wire = json.dumps(pdef.to_dict(), sort_keys=True)
    again = PlatformDef.from_dict(json.loads(wire))
    assert again == pdef
    assert again.compile() == pdef.compile()
    assert json.dumps(again.to_dict(), sort_keys=True) == wire


@pytest.mark.parametrize("name", platform_names())
def test_registered_platform_software_defaults(name):
    pdef = REGISTRY.get(name)
    config = pdef.stock_thermal_config()
    assert isinstance(config, ThermalConfig)
    assert config.sensor in {s["name"] for s in pdef.sensors}
    assert pdef.default_t_limit_c > 0.0


def test_to_dict_is_a_deep_copy():
    pdef = REGISTRY.get("nexus6p")
    data = pdef.to_dict()
    data["thermal"]["nodes"][0]["capacitance_j_per_k"] = 1e9
    assert pdef.compile() == REGISTRY.build("nexus6p")


# -- schema rejections -------------------------------------------------------


def _phone_data(**overrides):
    data = REGISTRY.get("pixel-xl").to_dict()
    data["name"] = "schema-probe"
    data.update(overrides)
    return data


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigurationError) as err:
        PlatformDef.from_dict(_phone_data(price_usd=769))
    assert "price_usd" in str(err.value)


def test_bad_platform_names_rejected():
    for name in ("", "Pixel XL", "UPPER", "-leading", "a b"):
        with pytest.raises(ConfigurationError):
            PlatformDef.from_dict(_phone_data(name=name))


def test_cluster_unknown_key_rejected_at_compile():
    data = _phone_data()
    data["clusters"][0]["tdp_w"] = 2.0
    with pytest.raises(ConfigurationError) as err:
        PlatformDef.from_dict(data).compile()
    assert "tdp_w" in str(err.value)


def test_opp_block_must_be_ladder_or_points():
    data = _phone_data()
    data["clusters"][0]["opps"] = {"freqs_mhz": [100, 200], "v_min": 0.8}
    with pytest.raises(ConfigurationError):
        PlatformDef.from_dict(data).compile()
    data["clusters"][0]["opps"] = {
        "points_mhz_v": [[100, 0.8], [200, 0.9, 1.0]]
    }
    with pytest.raises(ConfigurationError):
        PlatformDef.from_dict(data).compile()


def test_explicit_opp_points_compile():
    data = _phone_data()
    data["gpu"]["opps"] = {"points_mhz_v": [[100, 0.80], [200, 0.95]]}
    gpu = PlatformDef.from_dict(data).compile().gpu
    assert gpu.opps.frequencies_khz() == (100000, 200000)
    assert gpu.opps[1].voltage_v == 0.95


def test_software_unknown_key_rejected_at_construction():
    with pytest.raises(ConfigurationError) as err:
        PlatformDef.from_dict(_phone_data(software={"governor": "ipa"}))
    assert "governor" in str(err.value)


def test_software_thermal_unknown_key_rejected():
    data = _phone_data()
    data["software"]["thermal"]["fan_curve"] = [1, 2]
    pdef = PlatformDef.from_dict(data)
    with pytest.raises(ConfigurationError):
        pdef.stock_thermal_config()


def test_software_sensor_must_exist():
    data = _phone_data()
    data["software"]["thermal"]["sensor"] = "bogus"
    with pytest.raises(ConfigurationError) as err:
        PlatformDef.from_dict(data).validate()
    assert "bogus" in str(err.value)


def test_no_software_block_means_unmanaged_defaults():
    data = _phone_data(software={})
    pdef = PlatformDef.from_dict(data)
    assert pdef.stock_thermal_config() is None
    assert pdef.default_t_limit_c == DEFAULT_T_LIMIT_C
    pdef.validate()


def test_non_json_data_rejected():
    with pytest.raises(ConfigurationError):
        PlatformDef.from_dict(_phone_data(extras={"when": object()}))


# -- property tests ----------------------------------------------------------

_volts = st.floats(min_value=0.5, max_value=1.0, allow_nan=False,
                   allow_infinity=False)
_caps = st.floats(min_value=0.1, max_value=100.0, allow_nan=False,
                  allow_infinity=False)
_conductances = st.floats(min_value=0.01, max_value=5.0, allow_nan=False,
                          allow_infinity=False)


@st.composite
def platform_defs(draw):
    """Small but fully valid definitions with randomised constants."""
    def opps():
        n = draw(st.integers(min_value=2, max_value=8))
        freqs = draw(st.lists(st.integers(100, 3000), min_size=n, max_size=n,
                              unique=True))
        v_min = draw(_volts)
        return {"freqs_mhz": sorted(freqs), "v_min": v_min,
                "v_max": v_min + draw(st.floats(0.0, 0.5))}

    def leakage():
        return {
            "kappa_w_per_k2": draw(st.floats(1e-6, 1e-3)),
            "beta_k": draw(st.floats(500.0, 3000.0)),
        }

    def cluster(name, big):
        return {
            "name": name, "core_type": name.upper(),
            "n_cores": draw(st.integers(1, 8)), "opps": opps(),
            "ceff_w_per_v2hz": draw(st.floats(1e-11, 1e-9)),
            "leakage": leakage(), "thermal_node": "die",
            "rail": name, "is_big": big,
        }

    name = draw(st.from_regex(r"[a-z0-9][a-z0-9._-]{0,8}", fullmatch=True))
    return PlatformDef(
        name=name,
        clusters=(cluster("small", False), cluster("large", True)),
        gpu={
            "name": "gfx", "gpu_type": "GFX", "opps": opps(),
            "ceff_w_per_v2hz": draw(st.floats(1e-10, 1e-8)),
            "leakage": leakage(), "thermal_node": "die", "rail": "gfx",
        },
        memory={"name": "mem", "base_power_w": draw(st.floats(0.0, 1.0)),
                "thermal_node": "die", "rail": "mem"},
        thermal={
            "nodes": [{"name": "die", "capacitance_j_per_k": draw(_caps)}],
            "links": [{"a": "die", "b": "ambient",
                       "conductance_w_per_k": draw(_conductances)}],
            "power_split": {
                rail: {"die": 1.0}
                for rail in ("small", "large", "gfx", "mem", "board")
            },
        },
        sensors=({"name": "t_die", "node": "die",
                  "quantization_c": draw(st.floats(0.0, 1.0))},),
        board_power_w=draw(st.floats(0.0, 2.0)),
        default_ambient_c=draw(st.floats(0.0, 45.0)),
        software={
            "thermal": {
                "kind": "step_wise", "sensor": "t_die",
                "cooled": ["large", "small"],
                "trips": [{"temp_c": draw(st.floats(40.0, 90.0))}],
            },
            "t_limit_c": draw(st.floats(40.0, 110.0)),
        },
    )


@settings(max_examples=25, deadline=None)
@given(pdef=platform_defs())
def test_generated_defs_compile_and_round_trip(pdef):
    spec = pdef.validate()
    assert spec.big_cluster.name == "large"
    assert spec.little_cluster.name == "small"
    wire = json.dumps(pdef.to_dict(), sort_keys=True)
    again = PlatformDef.from_dict(json.loads(wire))
    assert again == pdef
    assert again.compile() == spec
    assert again.default_t_limit_c == pdef.default_t_limit_c


@settings(max_examples=10, deadline=None)
@given(pdef=platform_defs())
def test_generated_defs_register_and_build(pdef):
    from repro.soc.registry import PlatformRegistry

    reg = PlatformRegistry()
    reg.register(pdef)
    assert reg.build(pdef.name) == pdef.compile()
