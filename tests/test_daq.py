"""NI-DAQ power capture."""

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.power.daq import PowerDaq
from repro.sim.rng import RngRegistry


def make_daq(**kwargs):
    return PowerDaq(RngRegistry(0).stream("daq"), **kwargs)


def test_sample_count_matches_rate():
    daq = make_daq(sample_rate_hz=1000.0, noise_std_w=0.0)
    for i in range(100):  # 1 s of 10 ms ticks
        daq.capture(i * 0.01, 0.01, 2.0)
    times, watts = daq.samples()
    assert times.size == pytest.approx(1000, abs=2)


def test_mean_power_noiseless():
    daq = make_daq(noise_std_w=0.0)
    for i in range(100):
        daq.capture(i * 0.01, 0.01, 3.5)
    assert daq.mean_power_w() == pytest.approx(3.5)


def test_mean_power_window():
    daq = make_daq(noise_std_w=0.0)
    for i in range(100):
        power = 1.0 if i < 50 else 3.0
        daq.capture(i * 0.01, 0.01, power)
    assert daq.mean_power_w(end_s=0.5) == pytest.approx(1.0)
    assert daq.mean_power_w(start_s=0.5) == pytest.approx(3.0)


def test_noise_statistics():
    daq = make_daq(noise_std_w=0.05)
    for i in range(200):
        daq.capture(i * 0.01, 0.01, 2.0)
    _, watts = daq.samples()
    assert watts.mean() == pytest.approx(2.0, abs=0.01)
    assert watts.std() == pytest.approx(0.05, rel=0.15)


def test_energy_integration():
    daq = make_daq(noise_std_w=0.0)
    for i in range(1000):  # 10 s at 2 W -> 20 J
        daq.capture(i * 0.01, 0.01, 2.0)
    assert daq.energy_j() == pytest.approx(20.0, rel=0.01)


def test_sample_times_strictly_increasing():
    daq = make_daq()
    for i in range(50):
        daq.capture(i * 0.01, 0.01, 1.0)
    times, _ = daq.samples()
    assert (np.diff(times) > 0).all()


def test_empty_capture_errors():
    daq = make_daq()
    with pytest.raises(AnalysisError):
        daq.mean_power_w()
    with pytest.raises(AnalysisError):
        daq.energy_j()


def test_window_without_samples_errors():
    daq = make_daq(noise_std_w=0.0)
    daq.capture(0.0, 0.01, 1.0)
    with pytest.raises(AnalysisError):
        daq.mean_power_w(start_s=100.0)


def test_validation():
    with pytest.raises(ConfigurationError):
        make_daq(sample_rate_hz=0.0)
    with pytest.raises(ConfigurationError):
        make_daq(noise_std_w=-1.0)


def test_low_rate_subsampling():
    daq = make_daq(sample_rate_hz=10.0, noise_std_w=0.0)
    for i in range(100):  # 1 s -> 10 samples
        daq.capture(i * 0.01, 0.01, 1.0)
    times, _ = daq.samples()
    assert times.size == pytest.approx(10, abs=1)
