"""Per-cluster water-filling scheduler."""

import pytest

from repro.errors import SchedulingError
from repro.kernel.scheduler import Scheduler, _water_fill
from repro.soc.components import ClusterSpec, LeakageParams
from repro.soc.opp import OppTable


def make_clusters():
    opps = OppTable.from_pairs([(200e6, 0.9), (1000e6, 1.1)])
    leak = LeakageParams(kappa_w_per_k2=1e-4, beta_k=1650.0)
    big = ClusterSpec("big", "A15", 4, opps, 1e-10, leak, ipc=1.0, is_big=True)
    little = ClusterSpec("little", "A7", 4, opps, 1e-11, leak, ipc=1.0)
    return {"big": big, "little": little}


@pytest.fixture()
def sched():
    return Scheduler(make_clusters())


FREQS = {"big": 1000e6, "little": 1000e6}


def test_water_fill_even_split():
    assert _water_fill(9.0, [10.0, 10.0, 10.0]) == [3.0, 3.0, 3.0]


def test_water_fill_respects_ceilings():
    out = _water_fill(9.0, [1.0, 10.0, 10.0])
    assert out[0] == 1.0
    assert out[1] == out[2] == 4.0


def test_water_fill_surplus_capacity():
    assert _water_fill(100.0, [5.0, 5.0]) == [5.0, 5.0]


def test_water_fill_empty():
    assert _water_fill(10.0, []) == []


def test_spawn_and_lookup(sched):
    t = sched.spawn("game", "big")
    assert sched.task(t.pid) is t
    assert t in sched.tasks()


def test_spawn_unknown_cluster(sched):
    with pytest.raises(SchedulingError):
        sched.spawn("x", "mid")


def test_unknown_pid(sched):
    with pytest.raises(SchedulingError):
        sched.task(424242)


def test_single_thread_capped_at_one_core(sched):
    t = sched.spawn("bml", "big", unbounded=True)
    result = sched.run_tick(FREQS, 0.01)
    usage = result.usage["big"]
    # One thread can use at most one core's capacity.
    assert usage.busy_cores == pytest.approx(1.0)
    assert usage.per_task_cycles[t.pid] == pytest.approx(1000e6 * 0.01)


def test_capacity_fully_shared_among_unbounded(sched):
    for i in range(6):
        sched.spawn(f"t{i}", "big", unbounded=True)
    usage = sched.run_tick(FREQS, 0.01).usage["big"]
    assert usage.busy_cores == pytest.approx(4.0)  # saturated cluster
    # Fair split: 6 tasks share 4 cores.
    grants = list(usage.per_task_cycles.values())
    assert max(grants) == pytest.approx(min(grants))


def test_bounded_task_completes_and_frees_capacity(sched):
    t = sched.spawn("ui", "big")
    t.add_work(1e6, tag=("ui", 1))
    result = sched.run_tick(FREQS, 0.01)
    assert ("ui", 1) in result.completed_tags
    assert not t.runnable


def test_clusters_are_isolated(sched):
    sched.spawn("big-task", "big", unbounded=True)
    usage = sched.run_tick(FREQS, 0.01).usage
    assert usage["little"].busy_cores == 0.0
    assert usage["big"].busy_cores > 0.0


def test_migration_moves_load(sched):
    t = sched.spawn("bml", "big", unbounded=True)
    sched.set_affinity(t.pid, "little")
    usage = sched.run_tick(FREQS, 0.01).usage
    assert usage["big"].busy_cores == 0.0
    assert usage["little"].busy_cores == pytest.approx(1.0)


def test_kill_removes_from_dispatch(sched):
    t = sched.spawn("bml", "big", unbounded=True)
    sched.kill(t.pid)
    usage = sched.run_tick(FREQS, 0.01).usage
    assert usage["big"].busy_cores == 0.0
    assert t not in sched.tasks()


def test_max_core_load_single_busy_thread(sched):
    sched.spawn("bml", "big", unbounded=True)
    usage = sched.run_tick(FREQS, 0.01).usage["big"]
    # One fully-busy thread: the busiest core is at 100%, the mean is 25%.
    assert usage.max_core_load == pytest.approx(1.0)
    assert usage.utilization == pytest.approx(0.25)


def test_missing_frequency_rejected(sched):
    with pytest.raises(SchedulingError):
        sched.run_tick({"big": 1e9}, 0.01)


def test_bad_dt_rejected(sched):
    with pytest.raises(SchedulingError):
        sched.run_tick(FREQS, 0.0)


def test_multithreaded_task_uses_multiple_cores(sched):
    sched.spawn("render", "big", n_threads=3, unbounded=True)
    usage = sched.run_tick(FREQS, 0.01).usage["big"]
    assert usage.busy_cores == pytest.approx(3.0)


def test_scheduler_requires_clusters():
    with pytest.raises(SchedulingError):
        Scheduler({})
