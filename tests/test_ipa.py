"""Intelligent Power Allocation (power_allocator) governor."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.cpufreq.policy import DvfsPolicy
from repro.kernel.thermal.cooling import DvfsCoolingDevice
from repro.kernel.thermal.ipa import PowerActor, PowerAllocatorGovernor
from repro.kernel.thermal.zone import ThermalZone
from repro.sim.rng import RngRegistry
from repro.soc.opp import OppTable
from repro.thermal.model import ThermalModel
from repro.thermal.rc_network import (
    AMBIENT,
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)
from repro.thermal.sensors import SensorSpec, TemperatureSensor
from repro.units import celsius_to_kelvin


def make_fixture(temp_c=60.0, requests=(2.0, 1.0)):
    spec = ThermalNetworkSpec(
        nodes=(ThermalNodeSpec("chip", 1.0),),
        links=(ThermalLinkSpec("chip", AMBIENT, 0.5),),
        power_split={"cpu": {"chip": 1.0}},
    )
    model = ThermalModel(spec, 0.01, ambient_k=celsius_to_kelvin(temp_c))
    sensor = TemperatureSensor(
        SensorSpec("tmu", node="chip", noise_std_c=0.0, quantization_c=0.0),
        model,
        RngRegistry(0).stream("s"),
    )
    opps = OppTable.from_pairs(
        [(200e6, 0.9), (400e6, 0.95), (800e6, 1.05), (1600e6, 1.25)]
    )
    actors = []
    devices = []
    for i, req in enumerate(requests):
        policy = DvfsPolicy(f"d{i}", opps, initial_freq_hz=1600e6)
        device = DvfsCoolingDevice(f"cdev{i}", policy)
        devices.append(device)
        # Linear power table: watts proportional to frequency, peak = req*2.
        actors.append(
            PowerActor(
                device=device,
                max_power_w=lambda f, peak=req * 2.0: peak * f / 1600e6,
                requested_power_w=lambda req=req: req,
            )
        )
    governor = PowerAllocatorGovernor(
        actors,
        sustainable_power_w=2.0,
        switch_on_temp_c=50.0,
        control_temp_c=70.0,
    )
    zone = ThermalZone("tmu", sensor, governor=governor, bindings=devices)
    return zone, governor, devices, model


def test_validation():
    zone, gov, devices, _ = make_fixture()
    with pytest.raises(ConfigurationError):
        PowerAllocatorGovernor([], 2.0, 50.0, 70.0)
    with pytest.raises(ConfigurationError):
        PowerAllocatorGovernor(gov.actors, 2.0, 70.0, 50.0)
    with pytest.raises(ConfigurationError):
        PowerAllocatorGovernor(gov.actors, -1.0, 50.0, 70.0)


def test_below_switch_on_no_throttle():
    zone, _, devices, model = make_fixture(temp_c=40.0)
    for d in devices:
        d.set_state(2)
    zone.poll(0.0)
    assert all(d.cur_state == 0 for d in devices)


def test_at_control_temp_budget_equals_sustainable():
    zone, gov, _, _ = make_fixture(temp_c=70.0)
    assert gov._budget_w(70.0, 0.0) == pytest.approx(2.0, abs=1e-6)


def test_budget_grows_below_control():
    zone, gov, _, _ = make_fixture()
    assert gov._budget_w(60.0, 0.0) > gov._budget_w(69.0, 0.1)


def test_budget_shrinks_above_control():
    zone, gov, _, _ = make_fixture()
    assert gov._budget_w(75.0, 0.0) < 2.0


def test_budget_never_negative():
    zone, gov, _, _ = make_fixture()
    assert gov._budget_w(200.0, 0.0) == 0.0


def test_allocation_proportional_to_requests():
    zone, gov, _, _ = make_fixture(requests=(3.0, 1.0))
    grants = gov._allocate(2.0)
    assert grants[0] == pytest.approx(1.5)
    assert grants[1] == pytest.approx(0.5)


def test_allocation_redistributes_surplus():
    # Actor 0 is capped at its ceiling; the surplus flows to actor 1.
    zone, gov, _, _ = make_fixture(requests=(10.0, 1.0))
    ceilings = [a.max_power_w(1600e6) for a in gov.actors]
    grants = gov._allocate(sum(ceilings) + 5.0)
    assert grants[0] == pytest.approx(ceilings[0])
    assert grants[1] <= ceilings[1] + 1e-9


def test_throttles_when_hot():
    zone, _, devices, model = make_fixture(temp_c=80.0)
    zone.poll(0.0)
    assert any(d.cur_state > 0 for d in devices)


def test_no_throttle_when_budget_ample():
    zone, _, devices, _ = make_fixture(temp_c=55.0, requests=(0.5, 0.2))
    zone.poll(0.0)
    assert all(d.cur_state == 0 for d in devices)


def test_integral_antiwindup_bounded():
    zone, gov, _, _ = make_fixture()
    for i in range(1000):
        gov._budget_w(71.0, i * 0.1)  # persistent small error
    bound = gov.sustainable_power_w / gov.k_i
    assert abs(gov._integral) <= bound + 1e-9


def test_reset_clears_state():
    zone, gov, _, _ = make_fixture()
    gov._budget_w(71.0, 0.0)
    gov._budget_w(71.0, 1.0)
    gov.reset()
    assert gov._integral == 0.0
