"""Random workload generation and whole-system robustness."""

import pytest

from repro.apps.frames import FrameApp
from repro.apps.mibench import BatchApp
from repro.errors import ConfigurationError
from repro.experiments.odroid import odroid_default_thermal
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry
from repro.sim.workload_gen import WorkloadGenerator, WorkloadRanges
from repro.soc.exynos5422 import odroid_xu3
from repro.units import kelvin_to_celsius


def make_generator(seed=0, ranges=None):
    return WorkloadGenerator(RngRegistry(seed).stream("gen"), ranges)


def test_ranges_validation():
    with pytest.raises(ConfigurationError):
        WorkloadRanges(cpu_mcycles=(10.0, 1.0))


def test_frame_app_within_ranges():
    gen = make_generator()
    r = gen.ranges
    for _ in range(50):
        app = gen.frame_app()
        w = app.workload
        assert r.cpu_mcycles[0] * 1e6 <= w.cpu_cycles_per_frame <= r.cpu_mcycles[1] * 1e6
        assert r.gpu_mcycles[0] * 1e6 <= w.gpu_cycles_per_frame <= r.gpu_mcycles[1] * 1e6
        assert r.target_fps[0] <= w.target_fps <= r.target_fps[1]
        assert 1 <= w.pipeline_depth <= 3


def test_unique_names():
    gen = make_generator()
    apps = gen.mix(3, 3)
    names = [a.name for a in apps]
    assert len(set(names)) == 6
    assert sum(isinstance(a, FrameApp) for a in apps) == 3
    assert sum(isinstance(a, BatchApp) for a in apps) == 3


def test_deterministic_per_seed():
    a = make_generator(seed=7).frame_app().workload
    b = make_generator(seed=7).frame_app().workload
    assert a == b


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_random_mix_runs_safely_under_stock_policy(seed):
    """Robustness: any generated mix simulates without blowing up, and the
    stock IPA keeps the SoC out of the runaway regime."""
    gen = make_generator(seed=seed)
    apps = gen.mix(2, 1)
    sim = Simulation(
        odroid_xu3(), apps,
        kernel_config=KernelConfig(thermal=odroid_default_thermal()),
        seed=seed,
    )
    sim.run(60.0)
    temp_c = kelvin_to_celsius(sim.thermal.max_temperature_k())
    assert temp_c < 100.0  # IPA held the line
    _, watts = sim.traces.series("power.total")
    assert (watts >= 0.0).all()
    assert (watts < 15.0).all()
