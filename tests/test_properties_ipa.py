"""Property-based tests of IPA budget allocation (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.cpufreq.policy import DvfsPolicy
from repro.kernel.thermal.cooling import DvfsCoolingDevice
from repro.kernel.thermal.ipa import PowerActor, PowerAllocatorGovernor
from repro.soc.opp import OppTable


def make_governor(requests, peaks):
    opps = OppTable.from_pairs([(200e6, 0.9), (800e6, 1.0), (1600e6, 1.2)])
    actors = []
    for i, (request, peak) in enumerate(zip(requests, peaks)):
        policy = DvfsPolicy(f"d{i}", opps, initial_freq_hz=1600e6)
        device = DvfsCoolingDevice(f"c{i}", policy)
        actors.append(
            PowerActor(
                device=device,
                max_power_w=lambda f, p=peak: p * f / 1600e6,
                requested_power_w=lambda r=request: r,
            )
        )
    return PowerAllocatorGovernor(
        actors, sustainable_power_w=2.0, switch_on_temp_c=50.0,
        control_temp_c=70.0,
    )


actor_lists = st.lists(
    st.tuples(st.floats(0.01, 10.0), st.floats(0.1, 10.0)),
    min_size=1, max_size=6,
)


@given(items=actor_lists, budget=st.floats(0.0, 50.0))
@settings(max_examples=200, deadline=None)
def test_grants_are_bounded(items, budget):
    requests = [r for r, _ in items]
    peaks = [p for _, p in items]
    governor = make_governor(requests, peaks)
    grants = governor._allocate(budget)
    assert len(grants) == len(items)
    for grant, peak in zip(grants, peaks):
        assert -1e-9 <= grant <= peak + 1e-9
    # Never hands out more than the budget.
    assert sum(grants) <= budget + 1e-6


@given(items=actor_lists, budget=st.floats(0.1, 50.0))
@settings(max_examples=200, deadline=None)
def test_allocation_proportional_when_unconstrained(items, budget):
    requests = [r for r, _ in items]
    peaks = [1e9] * len(items)  # no ceiling binds
    governor = make_governor(requests, peaks)
    grants = governor._allocate(budget)
    total_req = sum(requests)
    for grant, request in zip(grants, requests):
        assert grant == pytest.approx(budget * request / total_req, rel=1e-6)


@given(
    items=actor_lists,
    temp=st.floats(30.0, 120.0),
    now=st.floats(0.0, 100.0),
)
@settings(max_examples=200, deadline=None)
def test_budget_non_negative_and_monotone_in_temperature(items, temp, now):
    requests = [r for r, _ in items]
    peaks = [p for _, p in items]
    governor = make_governor(requests, peaks)
    budget = governor._budget_w(temp, now)
    assert budget >= 0.0
    hotter = make_governor(requests, peaks)._budget_w(temp + 10.0, now)
    assert hotter <= budget + 1e-9
