"""Thermal network spec validation and matrix construction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.thermal.rc_network import (
    AMBIENT,
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)


def simple_spec(**kwargs):
    defaults = dict(
        nodes=(
            ThermalNodeSpec("chip", 1.0),
            ThermalNodeSpec("board", 10.0),
        ),
        links=(
            ThermalLinkSpec("chip", "board", 1.0),
            ThermalLinkSpec("board", AMBIENT, 0.1),
        ),
        power_split={"cpu": {"chip": 1.0}},
    )
    defaults.update(kwargs)
    return ThermalNetworkSpec(**defaults)


def test_node_validation():
    with pytest.raises(ConfigurationError):
        ThermalNodeSpec("x", 0.0)
    with pytest.raises(ConfigurationError):
        ThermalNodeSpec(AMBIENT, 1.0)


def test_link_validation():
    with pytest.raises(ConfigurationError):
        ThermalLinkSpec("a", "a", 1.0)
    with pytest.raises(ConfigurationError):
        ThermalLinkSpec("a", "b", 0.0)


def test_duplicate_node_names_rejected():
    with pytest.raises(ConfigurationError):
        simple_spec(nodes=(ThermalNodeSpec("x", 1.0), ThermalNodeSpec("x", 2.0)))


def test_unknown_link_endpoint_rejected():
    with pytest.raises(ConfigurationError):
        simple_spec(links=(ThermalLinkSpec("chip", "nowhere", 1.0),))


def test_must_reach_ambient():
    with pytest.raises(ConfigurationError):
        simple_spec(links=(ThermalLinkSpec("chip", "board", 1.0),))


def test_power_split_must_sum_to_one():
    with pytest.raises(ConfigurationError):
        simple_spec(power_split={"cpu": {"chip": 0.5}})


def test_power_split_unknown_node_rejected():
    with pytest.raises(ConfigurationError):
        simple_spec(power_split={"cpu": {"nowhere": 1.0}})


def test_power_split_negative_fraction_rejected():
    with pytest.raises(ConfigurationError):
        simple_spec(power_split={"cpu": {"chip": 1.5, "board": -0.5}})


def test_power_split_onto_ambient_rejected():
    with pytest.raises(ConfigurationError):
        simple_spec(power_split={"cpu": {AMBIENT: 1.0}})


def test_matrices_shapes():
    spec = simple_spec()
    a, b, w = spec.build_matrices()
    assert a.shape == (2, 2)
    assert b.shape == (2, 1)
    assert w.shape == (2,)


def test_a_matrix_row_sums_non_positive():
    # Diffusive system: A row sums are <= 0 (equality for interior nodes).
    spec = simple_spec()
    a, _b, _w = spec.build_matrices()
    assert (a.sum(axis=1) <= 1e-12).all()


def test_a_plus_w_conserves_at_uniform_temperature():
    # At T = T_amb everywhere and zero power, dT/dt must vanish.
    spec = simple_spec()
    a, _b, w = spec.build_matrices()
    t_amb = 300.0
    rate = a @ np.full(2, t_amb) + w * t_amb
    assert np.allclose(rate, 0.0, atol=1e-12)


def test_b_scales_inverse_capacitance():
    spec = simple_spec()
    _a, b, _w = spec.build_matrices()
    assert b[0, 0] == pytest.approx(1.0)  # C_chip = 1
    assert b[1, 0] == pytest.approx(0.0)


def test_rail_order_matches_power_split_order():
    spec = simple_spec(power_split={"gpu": {"chip": 1.0}, "cpu": {"board": 1.0}})
    assert spec.rail_names == ("gpu", "cpu")
