"""OPP table semantics."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.opp import OperatingPoint, OppTable


@pytest.fixture()
def table():
    return OppTable.from_pairs(
        [(200e6, 0.90), (400e6, 0.95), (800e6, 1.05), (1600e6, 1.25)]
    )


def test_operating_point_validation():
    with pytest.raises(ConfigurationError):
        OperatingPoint(0.0, 1.0)
    with pytest.raises(ConfigurationError):
        OperatingPoint(1e9, -0.1)


def test_table_needs_two_points():
    with pytest.raises(ConfigurationError):
        OppTable([OperatingPoint(1e9, 1.0)])


def test_frequencies_must_increase():
    with pytest.raises(ConfigurationError):
        OppTable.from_pairs([(400e6, 0.9), (400e6, 1.0)])
    with pytest.raises(ConfigurationError):
        OppTable.from_pairs([(800e6, 0.9), (400e6, 1.0)])


def test_voltages_must_not_decrease():
    with pytest.raises(ConfigurationError):
        OppTable.from_pairs([(400e6, 1.0), (800e6, 0.9)])


def test_min_max(table):
    assert table.min_freq_hz == 200e6
    assert table.max_freq_hz == 1600e6


def test_len_iter_getitem(table):
    assert len(table) == 4
    assert [p.freq_hz for p in table][0] == 200e6
    assert table[1].voltage_v == 0.95


def test_frequencies_khz(table):
    assert table.frequencies_khz() == (200000, 400000, 800000, 1600000)


def test_index_of_exact(table):
    assert table.index_of(800e6) == 2


def test_index_of_missing_raises(table):
    with pytest.raises(ConfigurationError):
        table.index_of(801e6)


def test_voltage_for(table):
    assert table.voltage_for(1600e6) == 1.25


def test_floor_picks_highest_not_above(table):
    assert table.floor(900e6).freq_hz == 800e6
    assert table.floor(800e6).freq_hz == 800e6


def test_floor_clamps_below_table(table):
    assert table.floor(50e6).freq_hz == 200e6


def test_ceil_picks_lowest_at_or_above(table):
    assert table.ceil(500e6).freq_hz == 800e6
    assert table.ceil(800e6).freq_hz == 800e6


def test_ceil_clamps_above_table(table):
    assert table.ceil(5e9).freq_hz == 1600e6


def test_clamp(table):
    assert table.clamp(1e5) == 200e6
    assert table.clamp(1e12) == 1600e6
    assert table.clamp(500e6) == 500e6


def test_capped_returns_allowed_prefix(table):
    capped = table.capped(800e6)
    assert [p.freq_hz for p in capped] == [200e6, 400e6, 800e6]


def test_capped_never_empty(table):
    capped = table.capped(1e6)
    assert len(capped) == 1
    assert capped[0].freq_hz == 200e6


def test_voltage_ladder_endpoints_and_rounding():
    from repro.soc.opp import voltage_ladder

    ladder = voltage_ladder((200, 500, 800), 0.90, 1.20)
    assert ladder.frequencies_khz() == (200000, 500000, 800000)
    assert ladder[0].voltage_v == 0.90
    assert ladder[-1].voltage_v == 1.20
    # Interpolated voltages round to 0.1 mV: 0.9 + 0.3 * 300/600 = 1.05.
    assert ladder[1].voltage_v == 1.05


def test_voltage_ladder_flat_voltage_is_allowed():
    from repro.soc.opp import voltage_ladder

    ladder = voltage_ladder((100, 200), 1.0, 1.0)
    assert [p.voltage_v for p in ladder] == [1.0, 1.0]


def test_voltage_ladder_rejects_bad_inputs():
    from repro.soc.opp import voltage_ladder

    with pytest.raises(ConfigurationError):
        voltage_ladder((800,), 0.9, 1.2)          # one frequency
    with pytest.raises(ConfigurationError):
        voltage_ladder((800, 200), 0.9, 1.2)      # descending endpoints
    with pytest.raises(ConfigurationError):
        voltage_ladder((200, 200), 0.9, 1.2)      # zero span
    with pytest.raises(ConfigurationError):
        voltage_ladder((200, 800), 1.2, 0.9)      # v_max < v_min


def test_table_value_equality_and_hash(table):
    twin = OppTable.from_pairs(
        [(200e6, 0.90), (400e6, 0.95), (800e6, 1.05), (1600e6, 1.25)]
    )
    other = OppTable.from_pairs([(200e6, 0.90), (400e6, 0.95)])
    assert table == twin
    assert hash(table) == hash(twin)
    assert table != other
    assert table != "not a table"
