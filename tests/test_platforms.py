"""Concrete platform definitions match the paper's hardware descriptions."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.exynos5422 import INA231_ADDRESSES, odroid_xu3
from repro.soc.platform import PlatformSpec
from repro.soc.snapdragon810 import nexus6p


def test_nexus_clusters_match_snapdragon810(nexus_platform):
    big = nexus_platform.big_cluster
    little = nexus_platform.little_cluster
    assert big.core_type == "Cortex-A57"
    assert little.core_type == "Cortex-A53"
    assert big.n_cores == 4
    assert little.n_cores == 4


def test_nexus_gpu_frequencies_match_paper(nexus_platform):
    # The paper names 180/305/390/450/510/600 MHz for the Adreno 430.
    mhz = [round(f / 1e6) for f in nexus_platform.gpu.opps.frequencies_hz()]
    assert mhz == [180, 305, 390, 450, 510, 600]


def test_nexus_big_cluster_has_paper_frequencies(nexus_platform):
    # 384 MHz (lowest) and 960 MHz are explicitly quoted in Section III.
    mhz = [round(f / 1e6) for f in nexus_platform.big_cluster.opps.frequencies_hz()]
    assert mhz[0] == 384
    assert 960 in mhz
    assert mhz[-1] == 1958


def test_nexus_has_package_sensor(nexus_platform):
    assert nexus_platform.sensor("pkg").node == "soc"
    assert nexus_platform.sensor("skin").node == "skin"


def test_nexus_defaults(nexus_platform):
    assert nexus_platform.default_ambient_c == 25.0
    assert nexus_platform.initial_temp_c == 35.0
    assert nexus_platform.board_power_w > 0.0


def test_odroid_clusters_match_exynos5422(odroid_platform):
    assert odroid_platform.big_cluster.core_type == "Cortex-A15"
    assert odroid_platform.little_cluster.core_type == "Cortex-A7"
    assert odroid_platform.gpu.gpu_type.startswith("Mali T628")


def test_odroid_frequency_ranges(odroid_platform):
    big = odroid_platform.big_cluster.opps
    little = odroid_platform.little_cluster.opps
    assert (big.min_freq_hz, big.max_freq_hz) == (200e6, 2000e6)
    assert (little.min_freq_hz, little.max_freq_hz) == (200e6, 1400e6)


def test_odroid_ina231_addresses_cover_all_rails(odroid_platform):
    assert set(INA231_ADDRESSES) == {"a15", "a7", "gpu", "mem"}
    assert odroid_platform.extras["ina231"] == INA231_ADDRESSES


def test_odroid_fan_disabled_means_weak_convection(odroid_platform):
    # Junction-to-ambient resistance must be large without the fan: the
    # big-core DC gain lands in the 10-16 K/W band used by the analysis.
    from repro.thermal.model import ThermalModel

    model = ThermalModel(odroid_platform.thermal, 0.01, 300.0)
    assert 10.0 < model.dc_gain("big", "a15") < 16.0


def test_platform_validation_catches_bad_sensor(odroid_platform):
    from repro.thermal.sensors import SensorSpec

    with pytest.raises(ConfigurationError):
        PlatformSpec(
            name="broken",
            clusters=odroid_platform.clusters,
            gpu=odroid_platform.gpu,
            memory=odroid_platform.memory,
            thermal=odroid_platform.thermal,
            sensors=(SensorSpec("bad", node="nowhere"),),
            board_power_w=odroid_platform.board_power_w,
        )


def test_platform_exactly_one_big(odroid_platform, nexus_platform):
    for platform in (odroid_platform, nexus_platform):
        assert platform.big_cluster.is_big
        assert not platform.little_cluster.is_big


def test_cluster_lookup(odroid_platform):
    assert odroid_platform.cluster("a15").is_big
    with pytest.raises(ConfigurationError):
        odroid_platform.cluster("a99")


def test_power_model_builds(odroid_platform, nexus_platform):
    for platform in (odroid_platform, nexus_platform):
        assert platform.power_model() is not None


def _cluster(name, is_big=False, is_little=False, ceff=1e-10):
    from repro.soc.components import ClusterSpec, LeakageParams
    from repro.soc.opp import voltage_ladder

    return ClusterSpec(
        name=name, core_type=name.upper(), n_cores=4,
        opps=voltage_ladder((200, 1000), 0.9, 1.1),
        ceff_w_per_v2hz=ceff,
        leakage=LeakageParams(kappa_w_per_k2=1e-4, beta_k=1650.0),
        thermal_node="soc", rail="cpu",
        is_big=is_big, is_little=is_little,
    )


def _two_cluster_platform(clusters):
    from repro.soc.components import GpuSpec, LeakageParams, MemorySpec
    from repro.soc.opp import voltage_ladder
    from repro.thermal.rc_network import (
        ThermalLinkSpec, ThermalNetworkSpec, ThermalNodeSpec,
    )

    leak = LeakageParams(kappa_w_per_k2=1e-4, beta_k=1650.0)
    return PlatformSpec(
        name="twobox",
        clusters=clusters,
        gpu=GpuSpec(name="gfx", gpu_type="GFX",
                    opps=voltage_ladder((100, 400), 0.8, 1.0),
                    ceff_w_per_v2hz=1e-9, leakage=leak,
                    thermal_node="soc", rail="gpu"),
        memory=MemorySpec(thermal_node="soc", rail="mem"),
        thermal=ThermalNetworkSpec(
            nodes=(ThermalNodeSpec("soc", 2.0),),
            links=(ThermalLinkSpec("soc", "ambient", 0.5),),
            power_split={r: {"soc": 1.0}
                         for r in ("cpu", "gpu", "mem", "a", "b")},
        ),
        sensors=(),
    )


def test_explicit_little_flag_wins_over_power_rule():
    # "a" burns less power, but "b" carries the flag — the flag wins.
    platform = _two_cluster_platform((
        _cluster("a", ceff=1e-11),
        _cluster("b", is_little=True, ceff=5e-10),
        _cluster("big", is_big=True),
    ))
    assert platform.little_cluster.name == "b"


def test_little_fallback_is_order_independent():
    lo, hi = _cluster("lo", ceff=1e-11), _cluster("hi", ceff=5e-10)
    big = _cluster("big", is_big=True)
    for order in ((lo, hi, big), (hi, lo, big), (big, hi, lo)):
        assert _two_cluster_platform(order).little_cluster.name == "lo"


def test_multiple_little_flags_rejected():
    with pytest.raises(ConfigurationError):
        _two_cluster_platform((
            _cluster("a", is_little=True),
            _cluster("b", is_little=True),
            _cluster("big", is_big=True),
        ))


def test_cluster_cannot_be_big_and_little():
    with pytest.raises(ConfigurationError):
        _cluster("both", is_big=True, is_little=True)


def test_builtin_littles_are_flagged(nexus_platform, odroid_platform):
    from repro.soc.snapdragon821 import pixel_xl

    for platform in (nexus_platform, odroid_platform, pixel_xl()):
        assert platform.little_cluster.is_little
        assert platform.big_cluster.is_big
        assert not platform.little_cluster.is_big


def test_pixel_xl_matches_snapdragon821():
    from repro.soc.snapdragon821 import pixel_xl

    platform = pixel_xl()
    assert platform.big_cluster.core_type == "Kryo-HP"
    assert platform.little_cluster.n_cores == 2
    mhz = [round(f / 1e6) for f in platform.gpu.opps.frequencies_hz()]
    assert mhz == [133, 214, 315, 401, 510, 560, 624]
    assert platform.sensor("pkg").node == "soc"


def test_odroid_fan_variant_differs_only_in_cooling():
    fanless, fanned = odroid_xu3(), odroid_xu3(fan=True)
    assert fanned.name == "odroid-xu3-fan"
    assert fanned.extras["fan"] == "enabled"
    g = {(l.node_a, l.node_b): l.conductance_w_per_k
         for l in fanless.thermal.links}
    g_fan = {(l.node_a, l.node_b): l.conductance_w_per_k
             for l in fanned.thermal.links}
    assert g_fan[("board", "ambient")] > g[("board", "ambient")]
    del g[("board", "ambient")], g_fan[("board", "ambient")]
    assert g == g_fan
    assert fanless.clusters == fanned.clusters
