"""Thermal runaway: the analysis predicts what the full plant actually does.

Section IV.A's punchline is that the number of fixed points tells you
whether the operating point is safe.  Here we push the simulated Odroid
past its critical power with every protection disabled and verify the plant
really runs away — and that the same workload under the critical power
settles exactly where the analysis says.
"""

import pytest

from repro.apps.mibench import BatchApp
from repro.core.calibration import lump_platform
from repro.core.fixed_point import StabilityClass, analyze, critical_power_w
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3
from repro.units import kelvin_to_celsius


def make_hot_sim(n_threads: int):
    """All protections off, performance governors, n busy big threads."""
    config = KernelConfig(cpu_governor="performance", gpu_governor="performance")
    sim = Simulation(
        odroid_xu3(), [BatchApp("burn", n_threads=n_threads)],
        kernel_config=config, seed=1,
    )
    return sim


def test_four_busy_big_cores_exceed_critical_power():
    sim = make_hot_sim(4)
    sim.run(5.0)
    params = lump_platform(sim.platform, sim.thermal)
    _, watts = sim.traces.series("power.total")
    p_dyn = watts[-1] - params.leakage_w(sim.thermal.temperature_k("big"))
    assert p_dyn > critical_power_w(params)
    report = analyze(params, p_dyn)
    assert report.classification is StabilityClass.RUNAWAY


def test_runaway_happens_in_the_plant():
    sim = make_hot_sim(4)
    sim.run(400.0)
    # No governor, super-critical power: the plant must blow past any
    # plausible junction temperature.
    assert kelvin_to_celsius(sim.thermal.temperature_k("big")) > 120.0


def test_subcritical_load_settles_near_predicted_fixed_point():
    sim = make_hot_sim(1)  # one busy core: well below critical
    sim.run(600.0)  # several time constants
    # Identify the lumped model with the *actual* rail mix of this workload
    # (big-cluster dominated), as a real characterisation run would.
    shares = sim.energy.breakdown(("a15", "a7", "gpu", "mem"))
    params = lump_platform(sim.platform, sim.thermal, rail_shares=shares)
    # Sum the measurable SoC rails only: the constant board power is already
    # folded into the identified effective ambient, and the external
    # power.total channel would double-count it.
    soc_watts = sum(
        sim.traces.series(f"power.{rail}")[1][-1]
        for rail in ("a15", "a7", "gpu", "mem")
    )
    t_big_k = sim.thermal.temperature_k("big")
    p_dyn = soc_watts - params.leakage_w(t_big_k)
    report = analyze(params, p_dyn)
    assert report.classification is StabilityClass.STABLE
    # The lumped prediction lands within a few kelvin of the plant.
    assert report.stable_temp_k == pytest.approx(t_big_k, abs=5.0)


def test_reactive_governor_mode():
    """predictive=False acts only at the limit crossing."""
    from repro.core.governor import ApplicationAwareGovernor, GovernorConfig

    sim = Simulation(
        odroid_xu3(), [BatchApp("burn", n_threads=2)],
        kernel_config=KernelConfig(), seed=1,
    )
    governor = ApplicationAwareGovernor.for_simulation(
        sim, GovernorConfig(t_limit_c=70.0, horizon_s=60.0, predictive=False)
    )
    governor.install(sim.kernel)
    sim.run(30.0)
    # Temperature has not reached 70 degC yet: the reactive mode waits.
    below = [p for p in governor.predictions if p.temp_c < 70.0]
    acted_below = [
        e for e in governor.events
        if e.time_s < min((p.time_s for p in governor.predictions
                           if p.temp_c >= 70.0), default=float("inf"))
    ]
    assert below
    assert not acted_below
