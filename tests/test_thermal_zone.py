"""Thermal zones and the step_wise governor."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.cpufreq.policy import DvfsPolicy
from repro.kernel.thermal.cooling import DvfsCoolingDevice
from repro.kernel.thermal.step_wise import StepWiseGovernor
from repro.kernel.thermal.zone import ThermalZone, TripPoint
from repro.sim.rng import RngRegistry
from repro.soc.opp import OppTable
from repro.thermal.model import ThermalModel
from repro.thermal.rc_network import (
    AMBIENT,
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)
from repro.thermal.sensors import SensorSpec, TemperatureSensor
from repro.units import celsius_to_kelvin


def make_zone(temp_c=35.0, trips=(TripPoint(40.0, hyst_c=2.0),)):
    spec = ThermalNetworkSpec(
        nodes=(ThermalNodeSpec("chip", 1.0),),
        links=(ThermalLinkSpec("chip", AMBIENT, 0.5),),
        power_split={"cpu": {"chip": 1.0}},
    )
    model = ThermalModel(spec, 0.01, ambient_k=celsius_to_kelvin(temp_c))
    sensor = TemperatureSensor(
        SensorSpec("tmu", node="chip", noise_std_c=0.0, quantization_c=0.0),
        model,
        RngRegistry(0).stream("s"),
    )
    opps = OppTable.from_pairs(
        [(200e6, 0.9), (400e6, 0.95), (800e6, 1.05), (1600e6, 1.25)]
    )
    policy = DvfsPolicy("cpu", opps, initial_freq_hz=1600e6)
    device = DvfsCoolingDevice("cdev", policy)
    zone = ThermalZone(
        "tmu", sensor, trips=trips, governor=StepWiseGovernor(),
        bindings=(device,),
    )
    return zone, device, model


def test_trip_validation():
    with pytest.raises(ConfigurationError):
        TripPoint(40.0, hyst_c=-1.0)
    with pytest.raises(ConfigurationError):
        TripPoint(40.0, trip_type="weird")


def test_zone_validation():
    zone, _, _ = make_zone()
    with pytest.raises(ConfigurationError):
        ThermalZone("z", zone.sensor, polling_s=0.0)


def test_trips_sorted():
    zone, _, _ = make_zone(trips=(TripPoint(45.0), TripPoint(40.0)))
    assert [t.temp_c for t in zone.trips] == [40.0, 45.0]


def test_below_trip_no_throttle():
    zone, device, _ = make_zone(temp_c=35.0)
    for _ in range(5):
        zone.poll(0.0)
    assert device.cur_state == 0


def test_above_trip_escalates_one_step_per_poll():
    zone, device, model = make_zone(temp_c=35.0)
    model.set_state({"chip": celsius_to_kelvin(45.0)})
    zone.poll(0.0)
    s1 = device.cur_state
    model.set_state({"chip": celsius_to_kelvin(46.0)})  # still rising
    zone.poll(0.1)
    assert s1 == 1
    assert device.cur_state == 2


def test_cooling_below_hysteresis_relaxes():
    zone, device, model = make_zone(temp_c=35.0)
    model.set_state({"chip": celsius_to_kelvin(45.0)})
    zone.poll(0.0)
    assert device.cur_state == 1
    model.set_state({"chip": celsius_to_kelvin(37.0)})  # below 40 - 2
    zone.poll(0.1)
    assert device.cur_state == 0


def test_in_band_relaxes_slowly():
    # Relaxation inside the hysteresis band is paced: one step per
    # ``relax_every`` polls while the trend is dropping.
    zone, device, model = make_zone(temp_c=35.0)
    model.set_state({"chip": celsius_to_kelvin(45.0)})
    zone.poll(0.0)
    assert device.cur_state == 1
    model.set_state({"chip": celsius_to_kelvin(38.5)})  # in [38, 40]
    relax_every = zone.governor.relax_every
    for i in range(relax_every - 1):
        zone.poll(0.1 * (i + 1))
        assert device.cur_state == 1  # still holding
    zone.poll(0.1 * relax_every)
    assert device.cur_state == 0  # paced relaxation fired


def test_unthrottle_helper():
    zone, device, model = make_zone()
    device.set_state(3)
    zone.unthrottle()
    assert device.cur_state == 0


def test_zone_records_last_temp():
    zone, _, _ = make_zone(temp_c=35.0)
    temp = zone.poll(0.0)
    assert temp == pytest.approx(35.0)
    assert zone.last_temp_c == pytest.approx(35.0)
