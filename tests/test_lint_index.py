"""The whole-program index: symbol tables, call resolution, fingerprints.

The index is purely syntactic, so these tests build small fixture
packages on disk and assert resolution behaves identically to how it
does over ``src/repro`` — same code path, no mocking.
"""

import ast
import textwrap

import pytest

from repro.lint.index import (
    ProjectIndex,
    detect_package,
    index_module,
    module_name_for,
)


def write_pkg(tmp_path, files):
    """Materialise ``{relpath: source}`` as package ``app`` under tmp."""
    pkg = tmp_path / "app"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    out = [(pkg / "__init__.py", "__init__.py")]
    for relpath, source in files.items():
        path = pkg / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        out.append((path, relpath))
    return pkg, out


def build(tmp_path, files):
    pkg, pairs = write_pkg(tmp_path, files)
    return ProjectIndex.build(pairs, detect_package(pkg))


# ------------------------------------------------------------- naming


def test_module_name_for():
    assert module_name_for("core/governor.py", "repro") == "repro.core.governor"
    assert module_name_for("__init__.py", "repro") == "repro"
    assert module_name_for("sub/__init__.py", "repro") == "repro.sub"
    assert module_name_for("loose.py", None) == "loose"


def test_detect_package(tmp_path):
    pkg, _ = write_pkg(tmp_path, {})
    assert detect_package(pkg) == "app"
    loose = tmp_path / "scripts"
    loose.mkdir()
    assert detect_package(loose) is None


# ------------------------------------------------------- symbol tables


def test_index_module_symbols(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent("""
        import numpy as np
        from app.units import celsius_to_kelvin as c2k

        LIMIT_C = 75.0
        WIRE = "repro.fixture/1"

        def top(x):
            return x

        class Box:
            width_mm: float
            def area(self):
                return 0.0
    """))
    info = index_module(path, "mod.py", "app")
    assert info.name == "app.mod"
    assert info.imports["np"] == "numpy"
    assert info.imports["c2k"] == "app.units.celsius_to_kelvin"
    assert set(info.functions) == {"top"}
    assert set(info.classes) == {"Box"}
    assert info.classes["Box"].methods["area"].params == ()  # self dropped
    assert isinstance(info.constants["LIMIT_C"], ast.Constant)


def test_relative_import_resolution(tmp_path):
    index = build(tmp_path, {
        "units.py": "def mc_to_c(v):\n    return v / 1000.0\n",
        "core/gov.py": "from ..units import mc_to_c\n",
    })
    gov = index.modules["app.core.gov"]
    assert gov.imports["mc_to_c"] == "app.units.mc_to_c"
    resolved = index.resolve_name(gov, "mc_to_c")
    assert resolved is not None and resolved.qualname == "mc_to_c"


# ------------------------------------------------------ call resolution


def first_call(module, func_name):
    func = module.functions[func_name]
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call):
            return node
    raise AssertionError("no call in fixture function")


def test_resolve_imported_function_call(tmp_path):
    index = build(tmp_path, {
        "units.py": "def khz_to_hz(freq_khz):\n    return freq_khz * 1000\n",
        "use.py": (
            "from app.units import khz_to_hz\n"
            "def f(freq_khz):\n"
            "    return khz_to_hz(freq_khz)\n"
        ),
    })
    use = index.modules["app.use"]
    callee = index.resolve_call(use, first_call(use, "f"))
    assert callee is not None
    assert callee.module == "app.units"
    assert callee.params == ("freq_khz",)


def test_resolve_dotted_module_attribute(tmp_path):
    index = build(tmp_path, {
        "units.py": "def hz_to_khz(freq_hz):\n    return freq_hz // 1000\n",
        "use.py": (
            "from app import units\n"
            "def f(freq_hz):\n"
            "    return units.hz_to_khz(freq_hz)\n"
        ),
    })
    use = index.modules["app.use"]
    callee = index.resolve_call(use, first_call(use, "f"))
    assert callee is not None and callee.qualname == "hz_to_khz"


def test_resolve_self_method(tmp_path):
    index = build(tmp_path, {
        "gov.py": """
            class Governor:
                def limit_c(self):
                    return 75.0
                def run(self):
                    return self.limit_c()
        """,
    })
    gov = index.modules["app.gov"]
    run = gov.classes["Governor"].methods["run"]
    call = next(n for n in ast.walk(run.node) if isinstance(n, ast.Call))
    callee = index.resolve_call(gov, call, enclosing_class="Governor")
    assert callee is not None and callee.qualname == "Governor.limit_c"


def test_resolve_dataclass_constructor(tmp_path):
    index = build(tmp_path, {
        "model.py": """
            from dataclasses import dataclass

            @dataclass
            class Trip:
                temp_c: float
                hyst_c: float
        """,
        "use.py": (
            "from app.model import Trip\n"
            "def f():\n"
            "    return Trip(60.0, 5.0)\n"
        ),
    })
    use = index.modules["app.use"]
    callee = index.resolve_call(use, first_call(use, "f"))
    assert callee is not None
    assert callee.params == ("temp_c", "hyst_c")  # synthesised __init__


def test_unresolvable_call_is_none_not_error(tmp_path):
    index = build(tmp_path, {
        "use.py": (
            "def f(sensor):\n"
            "    return sensor.read()\n"
        ),
    })
    use = index.modules["app.use"]
    assert index.resolve_call(use, first_call(use, "f")) is None


# ---------------------------------------------------------- fingerprint


def test_fingerprint_tracks_content(tmp_path):
    pkg, pairs = write_pkg(tmp_path, {"a.py": "X = 1\n"})
    before = ProjectIndex.build(pairs, "app").fingerprint()
    assert ProjectIndex.build(pairs, "app").fingerprint() == before  # stable
    (pkg / "a.py").write_text("X = 2\n")
    assert ProjectIndex.build(pairs, "app").fingerprint() != before


def test_iter_functions_stable_order(tmp_path):
    index = build(tmp_path, {
        "b.py": "def zz():\n    pass\n\ndef aa():\n    pass\n",
        "a.py": "class C:\n    def m(self):\n        pass\n",
    })
    names = [f.qualname for f in index.iter_functions()]
    assert names == ["C.m", "aa", "zz"]
    assert names == [f.qualname for f in index.iter_functions()]


def test_syntax_error_surfaces(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text("def broken(:\n")
    with pytest.raises(SyntaxError):
        index_module(path, "bad.py", "app")
