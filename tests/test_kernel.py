"""Kernel facade: assembly, governor cadence, daemons, syscalls."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.kernel.kernel import GPU_DOMAIN, Kernel, KernelConfig, ThermalConfig
from repro.kernel.thermal.zone import TripPoint
from repro.sim.clock import Clock
from repro.sim.rng import RngRegistry
from repro.soc.exynos5422 import odroid_xu3
from repro.thermal.model import ThermalModel


def make_kernel(config=None):
    platform = odroid_xu3()
    clock = Clock(0.01)
    model = ThermalModel(
        platform.thermal, 0.01, ambient_k=platform.default_ambient_k,
        initial_k=platform.initial_temp_k,
    )
    kernel = Kernel(platform, model, clock, RngRegistry(1), config)
    return kernel, clock, model


def tick(kernel, clock, model, n=1, rails=None):
    rails = rails or {"a15": 0.5, "a7": 0.1, "gpu": 0.2, "mem": 0.2, "board": 0.5}
    results = []
    for _ in range(n):
        results.append(kernel.tick(clock.now, clock.dt))
        model.step(rails)
        kernel.update_power_readings(rails, clock.dt)
        clock.advance()
    return results


def test_policies_cover_all_domains():
    kernel, _, _ = make_kernel()
    assert set(kernel.policies) == {"a7", "a15", GPU_DOMAIN}


def test_default_zones_cover_all_sensors():
    kernel, _, _ = make_kernel()
    assert set(kernel.zones) == {"soc_big", "soc_gpu", "board"}


def test_thermal_config_builds_cooling():
    cfg = KernelConfig(
        thermal=ThermalConfig(
            kind="step_wise", sensor="soc_big", cooled=("a15",),
            trips=(TripPoint(80.0),),
        )
    )
    kernel, _, _ = make_kernel(cfg)
    assert len(kernel.cooling_devices) == 1
    assert kernel.zones["soc_big"].governor is not None


def test_thermal_config_validation():
    with pytest.raises(ConfigurationError):
        ThermalConfig(kind="magic", sensor="s", cooled=("a15",))
    with pytest.raises(ConfigurationError):
        ThermalConfig(kind="step_wise", sensor="s", cooled=("a15",))  # no trips
    with pytest.raises(ConfigurationError):
        ThermalConfig(kind="ipa", sensor="s", cooled=())


def test_thermal_config_unknown_domain_rejected():
    cfg = KernelConfig(
        thermal=ThermalConfig(kind="ipa", sensor="soc_big", cooled=("a72",))
    )
    with pytest.raises(ConfigurationError):
        make_kernel(cfg)


def test_thermal_config_unknown_sensor_rejected():
    cfg = KernelConfig(
        thermal=ThermalConfig(kind="ipa", sensor="nope", cooled=("a15",))
    )
    with pytest.raises(ConfigurationError):
        make_kernel(cfg)


def test_spawn_defaults_to_big_cluster():
    kernel, _, _ = make_kernel()
    task = kernel.spawn("x")
    assert task.cluster == "a15"


def test_tick_runs_scheduler_and_gpu():
    kernel, clock, model = make_kernel()
    kernel.spawn("bml", unbounded=True)
    kernel.gpu.submit("x", 1e5, tag=("x", 1))
    result = tick(kernel, clock, model)[0]
    assert result.usage["a15"].busy_cores > 0.0
    assert ("x", 1) in result.gpu.completed_tags


def test_interactive_raises_frequency_for_busy_thread():
    kernel, clock, model = make_kernel()
    kernel.spawn("bml", unbounded=True)
    tick(kernel, clock, model, n=200)
    assert kernel.policies["a15"].cur_freq_hz == pytest.approx(2000e6)


def test_idle_system_stays_at_min_frequency():
    kernel, clock, model = make_kernel()
    tick(kernel, clock, model, n=200)
    assert kernel.policies["a15"].cur_freq_hz == pytest.approx(200e6)


def test_daemon_runs_at_period():
    kernel, clock, model = make_kernel()
    calls = []
    kernel.register_daemon("d", 0.1, calls.append)
    tick(kernel, clock, model, n=100)  # 1 second
    assert len(calls) == 10


def test_governor_switch_via_api():
    kernel, clock, model = make_kernel()
    kernel.set_cpu_governor("a15", "performance")
    tick(kernel, clock, model, n=10)
    assert kernel.policies["a15"].cur_freq_hz == pytest.approx(2000e6)


def test_userspace_set_speed_requires_userspace_governor():
    kernel, _, _ = make_kernel()
    with pytest.raises(ConfigurationError):
        kernel.userspace_set_speed("a15", 1e9)
    kernel.set_cpu_governor("a15", "userspace")
    kernel.userspace_set_speed("a15", 1e9)  # now fine


def test_input_event_boosts_policies():
    kernel, clock, model = make_kernel()
    kernel.input_event(0.0)
    assert kernel.policies["a15"].boosted(0.1)


def test_power_sensor_readings_flow_through():
    kernel, clock, model = make_kernel()
    tick(kernel, clock, model, n=50, rails={"a15": 1.5, "a7": 0.1, "gpu": 0.2, "mem": 0.2})
    assert kernel.power_sensors["a15"].read_w() == pytest.approx(1.5, rel=0.1)


def test_migrate_and_cputime():
    kernel, clock, model = make_kernel()
    task = kernel.spawn("bml", unbounded=True)
    tick(kernel, clock, model, n=10)
    assert kernel.cputime_s(task.pid) > 0.0
    kernel.migrate(task.pid, "a7")
    assert kernel.task_cluster(task.pid) == "a7"


def test_task_by_name():
    kernel, _, _ = make_kernel()
    task = kernel.spawn("bml", unbounded=True)
    assert kernel.task_by_name("bml") is task
    with pytest.raises(SchedulingError):
        kernel.task_by_name("ghost")


def test_userspace_api_surface():
    kernel, _, _ = make_kernel()
    task = kernel.spawn("bml", unbounded=True)
    api = kernel.userspace_api()
    assert task.pid in api.pids()
    assert api.process_name(task.pid) == "bml"
    assert api.big_cluster == "a15"
    assert api.little_cluster == "a7"
    api.set_affinity(task.pid, "a7")
    assert kernel.task_cluster(task.pid) == "a7"
