"""docs/OBSERVABILITY.md must match what the code actually emits."""

import pathlib
import re

import pytest

from repro.apps.catalog import make_app
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.snapdragon810 import nexus6p

DOC = pathlib.Path(__file__).parent.parent / "docs" / "OBSERVABILITY.md"

#: Inline-code tokens that look like metric family names.
_METRIC_RE = re.compile(r"`(repro_[a-z0-9_]+)`")


@pytest.fixture(scope="module")
def loaded_sim():
    """A sim exercising every registration path: app + app-aware governor."""
    sim = Simulation(nexus6p(), [make_app("hangouts")],
                     kernel_config=KernelConfig(), seed=3)
    governor = ApplicationAwareGovernor.for_simulation(sim, GovernorConfig())
    for pid in sim.app("hangouts").pids():
        governor.registry.register(pid, "hangouts")
    governor.install(sim.kernel)
    sim.run(1.0)
    return sim


def test_doc_exists():
    assert DOC.exists(), "docs/OBSERVABILITY.md is part of the obs contract"


def test_metric_catalogue_matches_registry(loaded_sim):
    documented = set(_METRIC_RE.findall(DOC.read_text()))
    emitted = set(loaded_sim.metrics.names())
    missing = emitted - documented
    stale = documented - emitted
    assert not missing, f"registered but undocumented: {sorted(missing)}"
    assert not stale, f"documented but never registered: {sorted(stale)}"


def test_catalogue_is_registered_eagerly(loaded_sim):
    """The family list must not depend on which events happened to fire."""
    sim = Simulation(nexus6p(), [make_app("hangouts")],
                     kernel_config=KernelConfig(), seed=3)
    governor = ApplicationAwareGovernor.for_simulation(sim, GovernorConfig())
    for pid in sim.app("hangouts").pids():
        governor.registry.register(pid, "hangouts")
    governor.install(sim.kernel)
    # No run() at all: everything is registered at construction/install.
    assert sim.metrics.names() == loaded_sim.metrics.names()


def test_span_taxonomy_documented(loaded_sim):
    text = DOC.read_text()
    for name in ("governor.update", "thermal.zone_poll", "thermal.trip",
                 "thermal.cooling_state", "hotplug.transition",
                 "sched.migrate", "app_governor.run"):
        assert f"`{name}`" in text
    # Every span name actually emitted must be in the documented taxonomy.
    emitted = {s.name for s in loaded_sim.spans.spans()}
    for name in emitted:
        assert f"`{name}`" in text, f"span {name!r} missing from the doc"
