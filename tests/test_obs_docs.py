"""docs/OBSERVABILITY.md must match what the code actually emits."""

import pathlib
import re

import pytest

from repro.apps.catalog import make_app
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.snapdragon810 import nexus6p

DOC = pathlib.Path(__file__).parent.parent / "docs" / "OBSERVABILITY.md"

#: Inline-code tokens that look like metric family names.
_METRIC_RE = re.compile(r"`(repro_[a-z0-9_]+)`")


@pytest.fixture(scope="module")
def loaded_sim():
    """A sim exercising every registration path: app + app-aware governor."""
    sim = Simulation(nexus6p(), [make_app("hangouts")],
                     kernel_config=KernelConfig(), seed=3)
    governor = ApplicationAwareGovernor.for_simulation(sim, GovernorConfig())
    for pid in sim.app("hangouts").pids():
        governor.registry.register(pid, "hangouts")
    governor.install(sim.kernel)
    sim.run(1.0)
    return sim


def test_doc_exists():
    assert DOC.exists(), "docs/OBSERVABILITY.md is part of the obs contract"


def test_metric_catalogue_matches_registry(loaded_sim):
    documented = {
        name for name in _METRIC_RE.findall(DOC.read_text())
        # Fleet and campaign families come from the campaign layer, not a
        # sim registry; they are checked against FLEET_FAMILIES and a live
        # CampaignRunner below.
        if not name.startswith(("repro_fleet_", "repro_campaign_"))
    }
    emitted = set(loaded_sim.metrics.names())
    missing = emitted - documented
    stale = documented - emitted
    assert not missing, f"registered but undocumented: {sorted(missing)}"
    assert not stale, f"documented but never registered: {sorted(stale)}"


def test_fleet_catalogue_matches_aggregator():
    """Documented repro_fleet_* names == what the aggregate can emit."""
    from repro.obs.telemetry import FLEET_FAMILIES

    documented = {
        name for name in _METRIC_RE.findall(DOC.read_text())
        if name.startswith("repro_fleet_")
    }
    emitted = set(FLEET_FAMILIES)
    assert documented == emitted, (
        f"doc/aggregator drift: doc-only {sorted(documented - emitted)}, "
        f"code-only {sorted(emitted - documented)}"
    )


def test_campaign_catalogue_matches_runner(tmp_path):
    """Documented repro_campaign_* names == what a runner registers.

    These families are emitted by ``repro.campaign.runner`` (host-side),
    so the sim-registry check above cannot see them; lint rule R801 is
    what originally forced them into this catalogue.
    """
    from repro.campaign import Axis, CampaignRunner, CampaignSpec, ResultStore

    spec = CampaignSpec(
        name="doc-check",
        base={"platform": "odroid-xu3",
              "apps": ({"kind": "catalog", "name": "stickman",
                        "cluster": None},)},
        axes=(Axis("seed", (1,)),),
    )
    runner = CampaignRunner(spec, ResultStore(tmp_path), jobs=1)
    documented = {
        name for name in _METRIC_RE.findall(DOC.read_text())
        if name.startswith("repro_campaign_")
    }
    emitted = {n for n in runner.metrics.names()
               if n.startswith("repro_campaign_")}
    assert documented == emitted, (
        f"doc/runner drift: doc-only {sorted(documented - emitted)}, "
        f"code-only {sorted(emitted - documented)}"
    )


def test_slo_vocabulary_documented():
    """Every series, scalar, aggregation and built-in spec is in the doc."""
    from repro.obs.telemetry import BUILTIN_SLOS, SCALARS, SERIES
    from repro.obs.telemetry.slo import AGGREGATIONS

    text = DOC.read_text()
    for token in (*SERIES, *SCALARS, *AGGREGATIONS, *BUILTIN_SLOS):
        assert f"`{token}`" in text, f"SLO token {token!r} missing from doc"


def test_cli_telemetry_flags_documented():
    """The obs/telemetry CLI surface named in the doc exists, and the new
    flags are documented."""
    import argparse

    from repro.cli import build_parser

    def subparsers(parser):
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                return action.choices
        raise AssertionError("no subparsers found")

    top = subparsers(build_parser())
    assert "obs" in top
    assert "check" in subparsers(top["obs"])
    check_flags = {
        flag
        for action in subparsers(top["obs"])["check"]._actions
        for flag in action.option_strings
    }
    assert {"--slo", "--campaign", "--store", "--format"} <= check_flags
    text = DOC.read_text()
    for flag in ("--slo", "--watch", "--no-tty", "--format json"):
        assert flag in text, f"flag {flag!r} missing from the doc"
    for name in ("metrics", "trace"):
        flags = {
            flag
            for action in top[name]._actions
            for flag in action.option_strings
        }
        assert "--format" in flags, f"{name} lost its --format flag"


def test_catalogue_is_registered_eagerly(loaded_sim):
    """The family list must not depend on which events happened to fire."""
    sim = Simulation(nexus6p(), [make_app("hangouts")],
                     kernel_config=KernelConfig(), seed=3)
    governor = ApplicationAwareGovernor.for_simulation(sim, GovernorConfig())
    for pid in sim.app("hangouts").pids():
        governor.registry.register(pid, "hangouts")
    governor.install(sim.kernel)
    # No run() at all: everything is registered at construction/install.
    assert sim.metrics.names() == loaded_sim.metrics.names()


def test_span_taxonomy_documented(loaded_sim):
    text = DOC.read_text()
    for name in ("governor.update", "thermal.zone_poll", "thermal.trip",
                 "thermal.cooling_state", "hotplug.transition",
                 "sched.migrate", "app_governor.run"):
        assert f"`{name}`" in text
    # Every span name actually emitted must be in the documented taxonomy.
    emitted = {s.name for s in loaded_sim.spans.spans()}
    for name in emitted:
        assert f"`{name}`" in text, f"span {name!r} missing from the doc"


def test_step_phase_list_matches_doc():
    """The documented step-phase bullets are exactly STEP_PHASES, in order."""
    from repro.obs.profiler import STEP_PHASES

    text = DOC.read_text()
    section = text.split("STEP_PHASES`:", 1)[1].split("\n\n", 2)[1]
    documented = re.findall(r"^\* `([a-z_]+)`", section, flags=re.MULTILINE)
    assert tuple(documented) == STEP_PHASES
