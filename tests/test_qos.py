"""QoS-tracking DVFS baseline controller."""

import pytest

from repro.apps.frames import FrameApp, FrameWorkload
from repro.apps.mibench import basicmath_large
from repro.core.qos import QosConfig, QosController
from repro.errors import ConfigurationError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3


def make_game(gpu_cycles=8e6, target=60.0):
    return FrameApp(
        "game",
        FrameWorkload(
            cpu_cycles_per_frame=6e6, gpu_cycles_per_frame=gpu_cycles,
            target_fps=target, sigma=0.05, pipeline_depth=3,
        ),
    )


def make_sim(apps, seed=1):
    return Simulation(odroid_xu3(), apps, kernel_config=KernelConfig(), seed=seed)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        QosConfig(target_fps=0.0)
    with pytest.raises(ConfigurationError):
        QosConfig(target_fps=30.0, period_s=0.0)
    with pytest.raises(ConfigurationError):
        QosConfig(target_fps=30.0, deadband=1.0)


def test_controller_discovers_ladders():
    game = make_game()
    sim = make_sim([game])
    ctl = QosController.for_simulation(sim, game, QosConfig(target_fps=40.0))
    assert len(ctl._cpu_freqs_khz) == 19
    assert len(ctl._gpu_freqs_hz) == 7


def test_controller_steps_down_when_overshooting():
    # Light frames + a modest target: the controller lowers clocks to just
    # meet the target instead of wasting power.
    game = make_game(gpu_cycles=4e6, target=60.0)
    sim = make_sim([game])
    ctl = QosController.for_simulation(sim, game, QosConfig(target_fps=30.0))
    ctl.install(sim.kernel)
    sim.run(30.0)
    directions = [a.direction for a in ctl.actions]
    assert "down" in directions
    # The GPU ends below its top OPP.
    assert ctl._gpu_level < len(ctl._gpu_freqs_hz) - 1


def test_controller_holds_near_target():
    game = make_game(gpu_cycles=8e6, target=60.0)
    sim = make_sim([game])
    ctl = QosController.for_simulation(sim, game, QosConfig(target_fps=40.0))
    ctl.install(sim.kernel)
    sim.run(40.0)
    achieved = game.fps.median_fps(start_s=15.0)
    assert achieved == pytest.approx(40.0, abs=8.0)


def test_thermal_backoff_throttles_foreground():
    """The defining weakness vs the paper's governor: under thermal pressure
    the QoS controller sacrifices its own app's frequency."""
    game = make_game(gpu_cycles=8e6)
    bml = basicmath_large()
    sim = make_sim([game, bml])
    ctl = QosController.for_simulation(
        sim, game, QosConfig(target_fps=60.0, t_limit_c=65.0)
    )
    ctl.install(sim.kernel)
    sim.run(120.0)
    thermal_downs = [a for a in ctl.actions if a.direction == "thermal_down"]
    assert thermal_downs, "thermal backoff never engaged"
    late_fps = game.fps.median_fps(start_s=90.0)
    # The foreground paid for the background's heat: it oscillates below
    # its unthrottled 60 FPS target.
    assert late_fps < 58.0
    assert len(thermal_downs) > 0.1 * len(ctl.actions)


def test_actions_logged_each_period():
    game = make_game()
    sim = make_sim([game])
    ctl = QosController.for_simulation(sim, game, QosConfig(target_fps=40.0))
    ctl.install(sim.kernel)
    sim.run(10.0)
    assert len(ctl.actions) == pytest.approx(16, abs=3)  # (10 - 2 s window)/0.5
