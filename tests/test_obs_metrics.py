"""Metrics registry: counters, gauges, histograms, families."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    FRAME_TIME_BUCKETS_S,
    LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
)


def test_counter_increments():
    reg = MetricsRegistry()
    c = reg.counter("repro_things_total", "things")
    c.inc()
    c.inc(2.5)
    assert reg.value("repro_things_total") == 3.5


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        reg.counter("repro_things_total").inc(-1.0)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("repro_level")
    g.set(10.0)
    g.inc(2.0)
    g.dec(5.0)
    assert reg.value("repro_level") == 7.0


def test_labeled_children_are_distinct():
    reg = MetricsRegistry()
    a = reg.counter("repro_x_total", labels={"domain": "a57"})
    b = reg.counter("repro_x_total", labels={"domain": "a53"})
    a.inc()
    assert reg.value("repro_x_total", {"domain": "a57"}) == 1.0
    assert reg.value("repro_x_total", {"domain": "a53"}) == 0.0
    assert len(reg.children("repro_x_total")) == 2
    # same labels -> same child object
    assert reg.counter("repro_x_total", labels={"domain": "a57"}) is a
    assert b is not a


def test_invalid_names_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        reg.counter("bad name")
    with pytest.raises(ConfigurationError):
        reg.counter("repro_ok_total", labels={"bad-label": "x"})


def test_kind_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("repro_x_total")
    with pytest.raises(ConfigurationError):
        reg.gauge("repro_x_total")


def test_histogram_bucket_counts_are_cumulative():
    h = Histogram(buckets=(1.0, 2.0, 5.0))
    for v in (0.5, 1.5, 1.5, 4.0, 100.0):
        h.observe(v)
    counts = h.bucket_counts()
    assert counts[1.0] == 1
    assert counts[2.0] == 3
    assert counts[5.0] == 4
    assert counts[math.inf] == 5
    assert h.count == 5
    assert h.sum == pytest.approx(107.5)


def test_histogram_boundary_value_lands_in_its_bucket():
    # le is an upper bound: observe(1.0) must count under le="1".
    h = Histogram(buckets=(1.0, 2.0))
    h.observe(1.0)
    assert h.bucket_counts()[1.0] == 1


def test_histogram_bucket_validation():
    with pytest.raises(ConfigurationError):
        Histogram(buckets=())
    with pytest.raises(ConfigurationError):
        Histogram(buckets=(2.0, 1.0))
    with pytest.raises(ConfigurationError):
        Histogram(buckets=(1.0, 1.0))
    with pytest.raises(ConfigurationError):
        Histogram(buckets=(1.0, math.inf))


def test_histogram_default_buckets_and_reuse():
    reg = MetricsRegistry()
    h1 = reg.histogram("repro_lat_seconds")
    assert h1.buckets == tuple(float(b) for b in LATENCY_BUCKETS_S)
    # A later call without buckets reuses the family's buckets.
    reg2 = MetricsRegistry()
    reg2.histogram("repro_ft_seconds", buckets=FRAME_TIME_BUCKETS_S,
                   labels={"app": "a"})
    h2 = reg2.histogram("repro_ft_seconds", labels={"app": "b"})
    assert h2.buckets == tuple(float(b) for b in FRAME_TIME_BUCKETS_S)
    with pytest.raises(ConfigurationError):
        reg2.histogram("repro_ft_seconds", buckets=(1.0, 2.0))


def test_histogram_samples_shape():
    reg = MetricsRegistry()
    h = reg.histogram("repro_h_seconds", buckets=(1.0,))
    h.observe(0.5)
    names = [s[1] for s in reg.collect()]
    assert names == [
        "repro_h_seconds_bucket",  # le="1"
        "repro_h_seconds_bucket",  # le="+Inf"
        "repro_h_seconds_sum",
        "repro_h_seconds_count",
    ]


def test_declare_registers_family_without_children():
    reg = MetricsRegistry()
    reg.declare("repro_rare_total", "counter", "rarely fires")
    assert "repro_rare_total" in reg
    assert reg.kind("repro_rare_total") == "counter"
    assert reg.children("repro_rare_total") == []
    with pytest.raises(ConfigurationError):
        reg.declare("repro_other", "timer")


def test_declared_histogram_buckets_survive():
    reg = MetricsRegistry()
    reg.declare("repro_d_seconds", "histogram", buckets=(1.0, 2.0))
    h = reg.histogram("repro_d_seconds")
    assert h.buckets == (1.0, 2.0)


def test_value_on_histogram_raises():
    reg = MetricsRegistry()
    reg.histogram("repro_h_seconds", buckets=(1.0,))
    with pytest.raises(ConfigurationError):
        reg.value("repro_h_seconds")


def test_get_missing_raises():
    reg = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        reg.get("repro_absent_total")


def test_names_sorted():
    reg = MetricsRegistry()
    reg.counter("repro_b_total")
    reg.counter("repro_a_total")
    assert reg.names() == ["repro_a_total", "repro_b_total"]
