"""Nice-based weighted scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.scheduler import (
    Scheduler,
    _weighted_water_fill,
    nice_to_weight,
)
from repro.soc.components import ClusterSpec, LeakageParams
from repro.soc.opp import OppTable


def make_scheduler(n_cores=2):
    opps = OppTable.from_pairs([(200e6, 0.9), (1000e6, 1.1)])
    leak = LeakageParams(kappa_w_per_k2=1e-4, beta_k=1650.0)
    spec = ClusterSpec("c", "t", n_cores, opps, 1e-10, leak, ipc=1.0)
    return Scheduler({"c": spec})


def test_nice_to_weight_ordering():
    assert nice_to_weight(-10) > nice_to_weight(0) > nice_to_weight(10)
    assert nice_to_weight(0) == 1.0


def test_weighted_fill_proportional():
    grants = _weighted_water_fill(9.0, [100.0, 100.0], [2.0, 1.0])
    assert grants[0] == pytest.approx(6.0)
    assert grants[1] == pytest.approx(3.0)


def test_weighted_fill_ceiling_redistribution():
    grants = _weighted_water_fill(9.0, [1.0, 100.0], [2.0, 1.0])
    assert grants[0] == pytest.approx(1.0)
    assert grants[1] == pytest.approx(8.0)


def test_high_priority_task_gets_bigger_share():
    sched = make_scheduler(n_cores=1)  # force contention on one core
    fav = sched.spawn("fav", "c", unbounded=True, nice=-5)
    meh = sched.spawn("meh", "c", unbounded=True, nice=5)
    usage = sched.run_tick({"c": 1000e6}, 0.01).usage["c"]
    assert usage.per_task_cycles[fav.pid] > 2.0 * usage.per_task_cycles[meh.pid]


def test_equal_nice_equal_share():
    sched = make_scheduler(n_cores=1)
    a = sched.spawn("a", "c", unbounded=True)
    b = sched.spawn("b", "c", unbounded=True)
    usage = sched.run_tick({"c": 1000e6}, 0.01).usage["c"]
    assert usage.per_task_cycles[a.pid] == pytest.approx(
        usage.per_task_cycles[b.pid]
    )


@given(
    capacity=st.floats(0.0, 1e9),
    items=st.lists(
        st.tuples(st.floats(0.0, 1e8), st.floats(0.1, 10.0)),
        min_size=0, max_size=8,
    ),
)
@settings(max_examples=200, deadline=None)
def test_weighted_fill_invariants(capacity, items):
    ceilings = [c for c, _ in items]
    weights = [w for _, w in items]
    grants = _weighted_water_fill(capacity, ceilings, weights)
    assert sum(grants) <= capacity + 1e-6
    for grant, ceiling in zip(grants, ceilings):
        assert -1e-9 <= grant <= ceiling + 1e-6
    # Work conserving.
    slack = capacity - sum(grants)
    if slack > 1e-6:
        assert sum(grants) == pytest.approx(sum(ceilings), abs=1e-6)


@given(
    capacity=st.floats(1.0, 1e6),
    weights=st.lists(st.floats(0.1, 10.0), min_size=2, max_size=6),
)
@settings(max_examples=150, deadline=None)
def test_weighted_fill_respects_weight_ratio_without_ceilings(capacity, weights):
    ceilings = [1e12] * len(weights)  # effectively unbounded
    grants = _weighted_water_fill(capacity, ceilings, weights)
    total_w = sum(weights)
    for grant, weight in zip(grants, weights):
        assert grant == pytest.approx(capacity * weight / total_w, rel=1e-6)
