"""Closed-loop calibration: excite a known def, fit from the trace alone.

The pipeline's correctness contract (docs/CALIBRATION.md): every fitted
parameter of every registered platform is recovered within 5 % of the
generating definition, and the fitted definition's *behaviour* — peak
temperature and FPS of a stock-policy scenario — stays within 2 % of the
generating definition's.
"""

import numpy as np
import pytest

from repro.calib import fit_platform, run_excitation
from repro.calib.excite import ExcitationConfig, structural_meta
from repro.calib.fit import fit_log_linear_leakage, fit_trace
from repro.errors import CalibrationError, StabilityError
from repro.sim.experiment import AppSpec, Scenario
from repro.soc import registry

TOL = 0.05

#: The default excitation is already fast (< 1 s wall per platform); the
#: well-cooled fan variant needs its full heat soak for leakage leverage.
FAST = ExcitationConfig()


def _rel(a, b):
    return abs(a - b) / abs(b) if b != 0.0 else abs(a - b)


@pytest.fixture(scope="module", params=registry.platform_names())
def closed_loop(request):
    """(generating spec, fitted def, fitted spec) for one platform."""
    name = request.param
    trace = run_excitation(name, seed=1, config=FAST)
    fitted, report = fit_platform(trace)
    return registry.get(name).compile(), fitted, fitted.compile(), report


def test_round_trip_component_parameters(closed_loop):
    spec, _fitted, fspec, _report = closed_loop
    for truth, fit in list(zip(spec.clusters, fspec.clusters)) + [
        (spec.gpu, fspec.gpu)
    ]:
        assert _rel(fit.ceff_w_per_v2hz, truth.ceff_w_per_v2hz) < TOL
        assert _rel(fit.idle_power_w, truth.idle_power_w) < TOL
        assert _rel(fit.leakage.kappa_w_per_k2, truth.leakage.kappa_w_per_k2) < TOL
        assert _rel(fit.leakage.beta_k, truth.leakage.beta_k) < TOL
        for freq_hz in truth.opps.frequencies_hz():
            assert _rel(
                fit.opps.voltage_for(freq_hz), truth.opps.voltage_for(freq_hz)
            ) < TOL
    assert _rel(fspec.memory.base_power_w, spec.memory.base_power_w) < TOL
    assert _rel(fspec.memory.activity_power_w, spec.memory.activity_power_w) < TOL
    assert _rel(fspec.board_power_w, spec.board_power_w) < TOL


def test_round_trip_thermal_network(closed_loop):
    spec, _fitted, fspec, _report = closed_loop
    for truth, fit in zip(spec.thermal.nodes, fspec.thermal.nodes):
        assert fit.name == truth.name
        assert _rel(fit.capacitance_j_per_k, truth.capacitance_j_per_k) < TOL
    conductances = {
        tuple(sorted((link.node_a, link.node_b))): link.conductance_w_per_k
        for link in spec.thermal.links
    }
    assert len(fspec.thermal.links) == len(conductances)
    for link in fspec.thermal.links:
        key = tuple(sorted((link.node_a, link.node_b)))
        assert _rel(link.conductance_w_per_k, conductances[key]) < TOL


def test_fit_report_is_plausible(closed_loop):
    spec, _fitted, _fspec, report = closed_loop
    expected = {f"dvfs.{c.name}" for c in spec.clusters}
    expected |= {f"leakage.{c.name}" for c in spec.clusters}
    expected |= {"dvfs.gpu", "leakage.gpu", "memory", "board", "rc"}
    assert set(report.stage_names()) == expected
    for stage_name in report.stage_names():
        stage = report.stage(stage_name)
        assert stage.residual_rms < 0.05, stage_name
    assert "fit report" in report.summary()


def test_fitted_def_behaviour_matches_generating_def():
    """A fitted platform runs end-to-end and behaves like the original."""
    name = "odroid-xu3"
    trace = run_excitation(name, seed=1, config=FAST)
    fitted, _report = fit_platform(trace, name="xu3-refit")
    registry.register(fitted)
    try:
        results = {}
        for platform in (name, "xu3-refit"):
            results[platform] = Scenario(
                platform=platform,
                apps=(AppSpec.catalog("paperio"),),
                policy="stock",
                duration_s=20.0,
                seed=5,
            ).run()
        truth, refit = results[name], results["xu3-refit"]
        assert _rel(refit.peak_temp_c, truth.peak_temp_c) < 0.02
        for app, fps in truth.fps.items():
            assert _rel(refit.fps[app], fps) < 0.02
    finally:
        registry.unregister("xu3-refit")


# ------------------------------------------------- estimator edge cases


def test_shared_leakage_estimator_recovers_exactly():
    temps = np.linspace(300.0, 380.0, 20)
    kappa, beta = 2.5e-4, 1700.0
    totals = kappa * temps**2 * np.exp(-beta / temps)
    fit_kappa, fit_beta = fit_log_linear_leakage(temps, totals)
    assert fit_kappa == pytest.approx(kappa, rel=1e-9)
    assert fit_beta == pytest.approx(beta, rel=1e-9)


def test_shared_leakage_estimator_error_taxonomy():
    temps = np.linspace(300.0, 380.0, 5)
    with pytest.raises(StabilityError, match="zero leakage"):
        fit_log_linear_leakage(temps, np.zeros(5))
    # Leakage *falling* with temperature has no physical (kappa, beta).
    with pytest.raises(StabilityError, match="non-physical"):
        fit_log_linear_leakage(temps, 1e3 * temps**2 * np.exp(500.0 / temps))


def test_fit_trace_requires_structural_meta():
    trace = run_excitation("odroid-xu3", seed=1, config=FAST)
    from repro.calib import CalibTrace

    stripped = CalibTrace.from_dict({**trace.to_dict(), "meta": {}})
    with pytest.raises(CalibrationError, match="structural prior"):
        fit_trace(stripped)


def test_structural_meta_contains_no_fitted_numbers():
    """The prior leaks nothing the fit is supposed to recover."""
    pdef = registry.get("odroid-xu3")
    meta = structural_meta(pdef)
    text = str(meta)
    for forbidden in ("ceff", "kappa", "beta", "capacitance", "conductance",
                      "v_min", "v_max", "idle_power", "base_power"):
        assert forbidden not in text
