"""docs/PLATFORMS.md must match the schema, the registry and the CLI."""

import argparse
import pathlib
import re
from dataclasses import fields as dataclass_fields

import pytest

from repro.cli import build_parser
from repro.soc import defs
from repro.soc.defs import PlatformDef
from repro.soc.registry import platform_names

DOC = pathlib.Path(__file__).parent.parent / "docs" / "PLATFORMS.md"

#: Inline-code tokens that look like CLI flags, e.g. `--format {text,json}`.
_FLAG_RE = re.compile(r"`(--[a-z][a-z-]*)")


def _subparser_choices(parser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    raise AssertionError("no subparsers found")


@pytest.fixture(scope="module")
def platforms_parsers():
    return _subparser_choices(_subparser_choices(build_parser())["platforms"])


def test_doc_exists():
    assert DOC.exists(), "docs/PLATFORMS.md is part of the platform contract"


def test_every_def_field_documented():
    text = DOC.read_text()
    for field in dataclass_fields(PlatformDef):
        assert f"`{field.name}`" in text, (
            f"PlatformDef field {field.name!r} missing from the doc"
        )


def test_every_schema_key_documented():
    text = DOC.read_text()
    documented = set(re.findall(r"`([a-z0-9_]+)`", text))
    schema_keys = set()
    for const, value in vars(defs).items():
        if const.isupper() and isinstance(value, frozenset):
            schema_keys |= value
    assert schema_keys, "defs exports no schema key sets"
    missing = schema_keys - documented
    assert not missing, f"schema keys missing from the doc: {sorted(missing)}"


def test_registered_platforms_documented():
    text = DOC.read_text()
    for name in platform_names():
        assert f"`{name}`" in text, f"platform {name!r} missing from the doc"


def test_platform_matrix_preset_documented():
    from repro.campaign import PRESETS

    assert "platform-matrix" in PRESETS
    assert "`platform-matrix`" in DOC.read_text()


def test_actions_documented(platforms_parsers):
    text = DOC.read_text()
    assert set(platforms_parsers) == {
        "list", "describe", "validate", "excite", "degrade", "fit",
    }
    for action in platforms_parsers:
        assert action in text


def _flags(parsers) -> set:
    found = set()
    for sub in parsers.values():
        for action in sub._actions:
            for flag in action.option_strings:
                if flag.startswith("--") and flag != "--help":
                    found.add(flag)
        try:
            found |= _flags(_subparser_choices(sub))
        except AssertionError:
            pass
    return found


def test_every_documented_flag_exists(platforms_parsers):
    documented = set(_FLAG_RE.findall(DOC.read_text()))
    # The doc also mentions flags of other commands (campaign --jobs...);
    # nothing documented may be stale anywhere in the CLI, and every
    # `platforms` flag must be documented.
    all_flags = _flags(_subparser_choices(build_parser()))
    stale = documented - all_flags
    missing = _flags(platforms_parsers) - documented
    assert not stale, f"documented but not in build_parser(): {sorted(stale)}"
    assert not missing, f"flags missing from the doc: {sorted(missing)}"
