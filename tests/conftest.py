"""Shared fixtures: platforms, thermal models, small ready-made simulations."""

from __future__ import annotations

import pytest

from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3
from repro.soc.snapdragon810 import nexus6p
from repro.thermal.model import ThermalModel


@pytest.fixture(scope="session")
def odroid_platform():
    return odroid_xu3()


@pytest.fixture(scope="session")
def nexus_platform():
    return nexus6p()


@pytest.fixture()
def odroid_thermal(odroid_platform):
    return ThermalModel(
        odroid_platform.thermal,
        dt_s=0.01,
        ambient_k=odroid_platform.default_ambient_k,
        initial_k=odroid_platform.initial_temp_k,
    )


@pytest.fixture()
def odroid_sim(odroid_platform):
    """A bare Odroid simulation (no apps, default kernel config)."""
    return Simulation(odroid_platform, kernel_config=KernelConfig(), seed=1)


@pytest.fixture()
def nexus_sim(nexus_platform):
    """A bare Nexus 6P simulation."""
    return Simulation(nexus_platform, kernel_config=KernelConfig(), seed=1)
