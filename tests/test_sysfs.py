"""Virtual sysfs/procfs file tree."""

import pytest

from repro.errors import SysfsError
from repro.kernel.sysfs import SysfsNode, VirtualFs


@pytest.fixture()
def fs():
    return VirtualFs()


def test_register_and_read(fs):
    fs.register("/sys/x", getter=lambda: "42")
    assert fs.read("/sys/x") == "42"


def test_register_value(fs):
    fs.register_value("/sys/const", "hello")
    assert fs.read("/sys/const") == "hello"


def test_write_invokes_setter(fs):
    box = {}
    fs.register("/sys/w", getter=lambda: box.get("v", ""), setter=lambda v: box.update(v=v))
    fs.write("/sys/w", 123)
    assert box["v"] == "123"
    assert fs.read("/sys/w") == "123"


def test_read_only_write_rejected(fs):
    fs.register("/sys/ro", getter=lambda: "x")
    with pytest.raises(SysfsError):
        fs.write("/sys/ro", "y")


def test_write_only_read_rejected(fs):
    fs.register("/sys/wo", getter=None, setter=lambda v: None)
    with pytest.raises(SysfsError):
        fs.read("/sys/wo")


def test_missing_path(fs):
    with pytest.raises(SysfsError):
        fs.read("/sys/none")
    assert not fs.exists("/sys/none")


def test_duplicate_registration_rejected(fs):
    fs.register_value("/sys/x", "1")
    with pytest.raises(SysfsError):
        fs.register_value("/sys/x", "2")


def test_relative_path_rejected(fs):
    with pytest.raises(SysfsError):
        fs.register_value("sys/x", "1")


def test_path_normalisation(fs):
    fs.register_value("/sys//class///x", "1")
    assert fs.read("/sys/class/x") == "1"


def test_read_int_and_float(fs):
    fs.register_value("/sys/i", " 42000 ")
    fs.register_value("/sys/f", "3.25")
    fs.register_value("/sys/bad", "abc")
    assert fs.read_int("/sys/i") == 42000
    assert fs.read_float("/sys/f") == 3.25
    with pytest.raises(SysfsError):
        fs.read_int("/sys/bad")
    with pytest.raises(SysfsError):
        fs.read_float("/sys/bad")


def test_listdir(fs):
    fs.register_value("/sys/class/thermal/zone0/temp", "1")
    fs.register_value("/sys/class/thermal/zone1/temp", "2")
    assert fs.listdir("/sys/class/thermal") == ["zone0", "zone1"]


def test_listdir_missing(fs):
    with pytest.raises(SysfsError):
        fs.listdir("/nope")


def test_resolver_serves_dynamic_paths(fs):
    def resolver(rel):
        if rel == "7/comm":
            return SysfsNode(getter=lambda: "task7")
        return None

    fs.register_resolver("/proc", resolver)
    assert fs.read("/proc/7/comm") == "task7"
    assert fs.exists("/proc/7/comm")
    with pytest.raises(SysfsError):
        fs.read("/proc/8/comm")


def test_node_requires_some_callback():
    with pytest.raises(SysfsError):
        SysfsNode(None, None)
