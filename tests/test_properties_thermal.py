"""Property-based tests of the thermal substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.model import ThermalModel
from repro.thermal.rc_network import (
    AMBIENT,
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)


@st.composite
def chains(draw):
    """A random chain network: node0 - node1 - ... - ambient."""
    n = draw(st.integers(1, 4))
    caps = [draw(st.floats(0.2, 20.0)) for _ in range(n)]
    conds = [draw(st.floats(0.05, 5.0)) for _ in range(n)]
    nodes = tuple(ThermalNodeSpec(f"n{i}", caps[i]) for i in range(n))
    links = []
    for i in range(n - 1):
        links.append(ThermalLinkSpec(f"n{i}", f"n{i+1}", conds[i]))
    links.append(ThermalLinkSpec(f"n{n-1}", AMBIENT, conds[-1]))
    spec = ThermalNetworkSpec(
        nodes=nodes, links=tuple(links), power_split={"p": {"n0": 1.0}}
    )
    return spec


@given(spec=chains(), power=st.floats(0.0, 10.0))
@settings(max_examples=60, deadline=None)
def test_steady_state_at_or_above_ambient(spec, power):
    model = ThermalModel(spec, 0.05, ambient_k=300.0)
    ss = model.steady_state_k({"p": power})
    assert all(t >= 300.0 - 1e-6 for t in ss.values())


@given(spec=chains())
@settings(max_examples=60, deadline=None)
def test_network_is_passive(spec):
    model = ThermalModel(spec, 0.05, ambient_k=300.0)
    assert model.dominant_time_constant_s() > 0.0


@given(spec=chains(), power=st.floats(0.0, 10.0), steps=st.integers(1, 200))
@settings(max_examples=60, deadline=None)
def test_trajectory_bounded_by_steady_state(spec, power, steps):
    """Starting at ambient and heating: T never overshoots the steady state
    (the chain network has no oscillatory modes)."""
    model = ThermalModel(spec, 0.05, ambient_k=300.0)
    ss = model.steady_state_k({"p": power})
    for _ in range(steps):
        model.step({"p": power})
    for node, temp in model.temperatures_k().items():
        assert temp <= ss[node] + 1e-6
        assert temp >= 300.0 - 1e-6


@given(spec=chains(), power=st.floats(0.1, 10.0))
@settings(max_examples=40, deadline=None)
def test_power_source_node_is_hottest_at_steady_state(spec, power):
    model = ThermalModel(spec, 0.05, ambient_k=300.0)
    ss = model.steady_state_k({"p": power})
    assert ss["n0"] == max(ss.values())


@given(
    spec=chains(),
    power=st.floats(0.0, 10.0),
    ambient=st.floats(270.0, 330.0),
)
@settings(max_examples=40, deadline=None)
def test_superposition_of_ambient(spec, power, ambient):
    """Linear system: shifting the ambient shifts the steady state 1:1."""
    m1 = ThermalModel(spec, 0.05, ambient_k=300.0)
    m2 = ThermalModel(spec, 0.05, ambient_k=ambient)
    ss1 = m1.steady_state_k({"p": power})
    ss2 = m2.steady_state_k({"p": power})
    for node in ss1:
        assert np.isclose(ss2[node] - ss1[node], ambient - 300.0, atol=1e-6)


@given(spec=chains(), p1=st.floats(0.0, 5.0), p2=st.floats(0.0, 5.0))
@settings(max_examples=40, deadline=None)
def test_steady_state_monotone_in_power(spec, p1, p2):
    model = ThermalModel(spec, 0.05, ambient_k=300.0)
    lo, hi = sorted((p1, p2))
    ss_lo = model.steady_state_k({"p": lo})
    ss_hi = model.steady_state_k({"p": hi})
    for node in ss_lo:
        assert ss_hi[node] >= ss_lo[node] - 1e-9
