"""Play-Store app catalog."""

import pytest

from repro.apps.catalog import CATALOG, make_app, popular_app_names


def test_five_apps_in_paper_order():
    assert popular_app_names() == (
        "paperio", "stickman", "amazon", "hangouts", "facebook",
    )
    assert set(CATALOG) == set(popular_app_names())


def test_categories_match_paper():
    # "two games, one shopping app, one video conferencing app and one
    # social media app"
    categories = [CATALOG[n].category for n in popular_app_names()]
    assert categories.count("game") == 2
    assert "shopping" in categories
    assert "video-conferencing" in categories
    assert "social-media" in categories


def test_games_are_gpu_dominated():
    for name in ("paperio", "stickman"):
        entry = CATALOG[name]
        assert entry.kind == "gpu"
        assert entry.workload.gpu_cycles_per_frame > entry.workload.cpu_cycles_per_frame


def test_cpu_apps_are_cpu_dominated():
    for name in ("amazon", "hangouts", "facebook"):
        entry = CATALOG[name]
        assert entry.kind == "cpu"
        assert entry.workload.cpu_cycles_per_frame > entry.workload.gpu_cycles_per_frame


def test_paper_fps_recorded():
    entry = CATALOG["paperio"]
    assert entry.paper_fps_without == 35.0
    assert entry.paper_fps_with == 23.0


def test_make_app_builds_frame_app():
    app = make_app("stickman")
    assert app.name == "stickman"
    assert app.workload is CATALOG["stickman"].workload


def test_make_app_unknown_raises():
    with pytest.raises(KeyError):
        make_app("tiktok")
