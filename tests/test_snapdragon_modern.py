"""snapdragon-modern: the platform whose definition the pipeline produced.

The registered JSON must stay a faithful build artifact: loading the
bundled trace and re-running ``fit_platform`` has to reproduce the bundled
definition (within BLAS least-squares noise), and the platform must flow
through every downstream layer with zero code branches.
"""

import json

import pytest

from repro.calib import CalibTrace, fit_platform
from repro.calib.reference import (
    REFERENCE_CONFIG,
    REFERENCE_SEED,
    SNAPDRAGON_MODERN_STAND_IN,
)
from repro.campaign import PRESETS
from repro.sim.experiment import AppSpec, Scenario
from repro.soc import registry
from repro.soc.snapdragon_modern import (
    SNAPDRAGON_MODERN,
    SNAPDRAGON_MODERN_DEF,
    SNAPDRAGON_MODERN_DEF_PATH,
)

TRACE_PATH = SNAPDRAGON_MODERN_DEF_PATH.with_name("snapdragon_modern_trace.json")


def test_registered_from_artifact():
    assert registry.is_registered(SNAPDRAGON_MODERN)
    on_disk = json.loads(SNAPDRAGON_MODERN_DEF_PATH.read_text())
    assert SNAPDRAGON_MODERN_DEF.to_dict() == on_disk
    # Provenance: the definition records it came from the pipeline.
    assert on_disk["extras"]["calibration"]["source"] == "repro.calib"


def test_three_cluster_layout():
    spec = SNAPDRAGON_MODERN_DEF.compile()
    assert [c.name for c in spec.clusters] == ["little", "big", "prime"]
    assert spec.big_cluster.name == "prime"
    assert spec.little_cluster.name == "little"
    assert sum(c.n_cores for c in spec.clusters) == 8


def test_stand_in_is_not_registered():
    """Only the pipeline's output reaches the registry, never the truth."""
    assert SNAPDRAGON_MODERN_STAND_IN.name == SNAPDRAGON_MODERN
    assert registry.get(SNAPDRAGON_MODERN) is not SNAPDRAGON_MODERN_STAND_IN
    assert "calibration" not in SNAPDRAGON_MODERN_STAND_IN.extras


def test_refit_of_bundled_trace_reproduces_bundled_def():
    trace = CalibTrace.from_json(TRACE_PATH.read_text())
    assert trace.platform_hint == SNAPDRAGON_MODERN
    assert trace.meta["seed"] == REFERENCE_SEED
    refit, _report = fit_platform(trace)
    bundled = SNAPDRAGON_MODERN_DEF.compile()
    respec = refit.compile()
    for a, b in zip(bundled.thermal.nodes, respec.thermal.nodes):
        assert b.capacitance_j_per_k == pytest.approx(
            a.capacitance_j_per_k, rel=1e-6
        )
    for a, b in zip(bundled.clusters, respec.clusters):
        assert b.ceff_w_per_v2hz == pytest.approx(a.ceff_w_per_v2hz, rel=1e-6)
        assert b.leakage.beta_k == pytest.approx(a.leakage.beta_k, rel=1e-4)


def test_reference_config_is_what_generated_the_artifacts():
    trace = CalibTrace.from_json(TRACE_PATH.read_text())
    staircases = trace.segments_of("staircase")
    # One staircase per cluster plus the GPU, capped OPP count each.
    assert len(staircases) == 4
    per_domain = max(
        round(seg.duration_s / REFERENCE_CONFIG.dwell_s) for seg in staircases
    )
    assert per_domain <= REFERENCE_CONFIG.max_opps_per_domain


def test_joins_platform_matrix_and_chaos_presets():
    matrix = PRESETS["platform-matrix"]()
    assert any(
        run.scenario.platform == SNAPDRAGON_MODERN for run in matrix.expand()
    )
    chaos = PRESETS["chaos"]()
    assert any(
        run.scenario.platform == SNAPDRAGON_MODERN for run in chaos.expand()
    )


def test_runs_a_scenario_end_to_end():
    result = Scenario(
        platform=SNAPDRAGON_MODERN,
        apps=(AppSpec.catalog("paperio"),),
        policy="stock",
        duration_s=10.0,
        seed=2,
    ).run()
    assert result.peak_temp_c > 25.0
    assert result.mean_power_w > 0.0
