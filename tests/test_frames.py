"""Frame pipeline apps and the FPS meter."""

import numpy as np
import pytest

from repro.apps.frames import FpsMeter, FrameApp, FrameWorkload
from repro.errors import AnalysisError, ConfigurationError, SimulationError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3


def test_fps_meter_counts_buckets():
    meter = FpsMeter()
    for i in range(90):
        meter.record(i / 30.0)  # 30 fps for 3 seconds
    times, fps = meter.fps_series(0.0, 3.0)
    assert len(fps) == 3
    assert np.allclose(fps, 30.0)
    assert meter.median_fps(0.0, 3.0) == 30.0


def test_fps_meter_empty_window_raises():
    meter = FpsMeter()
    with pytest.raises(AnalysisError):
        meter.median_fps()


def test_fps_meter_mean():
    meter = FpsMeter()
    for i in range(30):
        meter.record(i / 30.0)
    for i in range(60):
        meter.record(1.0 + i / 60.0)
    assert meter.mean_fps(0.0, 2.0) == pytest.approx(45.0)


def test_workload_validation():
    with pytest.raises(ConfigurationError):
        FrameWorkload(cpu_cycles_per_frame=0.0, gpu_cycles_per_frame=1e6)
    with pytest.raises(ConfigurationError):
        FrameWorkload(1e6, 1e6, target_fps=0.0)
    with pytest.raises(ConfigurationError):
        FrameWorkload(1e6, 1e6, phase_amp=1.0)
    with pytest.raises(ConfigurationError):
        FrameWorkload(1e6, 1e6, pipeline_depth=0)
    with pytest.raises(ConfigurationError):
        FrameWorkload(1e6, 1e6, sigma=-0.5)


def test_app_requires_attachment():
    app = FrameApp("x", FrameWorkload(1e6, 1e6))
    with pytest.raises(SimulationError):
        app.ctx


def test_double_attach_rejected():
    sim = Simulation(odroid_xu3(), kernel_config=KernelConfig(), seed=1)
    app = FrameApp("x", FrameWorkload(1e6, 1e6))
    sim.add_app(app)
    with pytest.raises(SimulationError):
        app.attach(app.ctx)


def test_light_app_hits_vsync_target():
    app = FrameApp(
        "game", FrameWorkload(2e6, 2e6, target_fps=60.0, sigma=0.0)
    )
    sim = Simulation(odroid_xu3(), [app], kernel_config=KernelConfig(), seed=1)
    sim.run(10.0)
    assert app.fps.median_fps(start_s=2.0) == pytest.approx(60.0, abs=3.0)


def test_gpu_bound_app_scales_with_frame_cost():
    heavy = FrameApp(
        "heavy", FrameWorkload(2e6, 24e6, target_fps=60.0, sigma=0.0)
    )
    sim = Simulation(odroid_xu3(), [heavy], kernel_config=KernelConfig(), seed=1)
    sim.run(10.0)
    # GPU peak is 600 MHz: 600e6/24e6 = 25 fps ceiling.
    assert heavy.fps.median_fps(start_s=3.0) == pytest.approx(24.0, abs=3.0)


def test_phase_modulation_changes_cost():
    app = FrameApp(
        "x", FrameWorkload(1e6, 1e6, phase_amp=0.5, phase_period_s=20.0, sigma=0.0)
    )
    sim = Simulation(odroid_xu3(), [app], kernel_config=KernelConfig(), seed=1)
    # Peak of sin at t = period/4 = 5 s; trough at 15 s.
    assert app._phase_factor(5.0) == pytest.approx(1.5)
    assert app._phase_factor(15.0) == pytest.approx(0.5)


def test_lognormal_cost_has_unit_mean():
    app = FrameApp("x", FrameWorkload(1e6, 1e6, sigma=0.5))
    sim = Simulation(odroid_xu3(), [app], kernel_config=KernelConfig(), seed=1)
    draws = np.array([app._draw_cost(1.0, 0.0) for _ in range(20000)])
    assert draws.mean() == pytest.approx(1.0, rel=0.02)


def test_metrics_contain_fps():
    app = FrameApp("x", FrameWorkload(2e6, 2e6, target_fps=30.0, sigma=0.0))
    sim = Simulation(odroid_xu3(), [app], kernel_config=KernelConfig(), seed=1)
    sim.run(10.0)
    metrics = app.metrics()
    assert metrics["frames"] > 0
    assert "median_fps" in metrics


def test_pids_exposed_after_attach():
    app = FrameApp("x", FrameWorkload(1e6, 1e6))
    assert app.pids() == []
    sim = Simulation(odroid_xu3(), [app], kernel_config=KernelConfig(), seed=1)
    assert len(app.pids()) == 1
