"""CampaignAggregator / CampaignAggregate: fleet series and exports."""

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.obs.exporters import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    FLEET_FAMILIES,
    SCALARS,
    SERIES,
    CampaignAggregate,
    CampaignAggregator,
    quantile,
)


def scenario(platform="odroid-xu3", policy="none", t_limit_c=60.0,
             fault_plan=None):
    faults = None if fault_plan is None else SimpleNamespace(name=fault_plan)
    return SimpleNamespace(platform=platform, policy=policy,
                           t_limit_c=t_limit_c, faults=faults)


def result(peak_temp_c=50.0, fps=None, failsafe_s=0.0):
    return SimpleNamespace(peak_temp_c=peak_temp_c, fps=fps or {},
                           failsafe_s=failsafe_s)


def detection_snapshot(latencies):
    reg = MetricsRegistry()
    hist = reg.histogram("repro_fault_detection_latency_seconds",
                         "detection", buckets=(1.0, 10.0))
    for value in latencies:
        hist.observe(value)
    return reg.snapshot()


# ---------------------------------------------------------------- quantile


def test_quantile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert quantile(values, 0.50) == 5.0
    assert quantile(values, 0.90) == 9.0
    assert quantile(values, 0.99) == 10.0
    assert quantile(values, 1.0) == 10.0
    assert quantile([7.0], 0.50) == 7.0


def test_quantile_rejects_empty_and_bad_q():
    with pytest.raises(ConfigurationError):
        quantile([], 0.5)
    with pytest.raises(ConfigurationError):
        quantile([1.0], 0.0)
    with pytest.raises(ConfigurationError):
        quantile([1.0], 1.5)


# -------------------------------------------------------------- aggregator


def test_ingest_derives_series_values():
    agg = CampaignAggregator("t")
    sample = agg.ingest(
        "r1", scenario(t_limit_c=50.0), "completed", elapsed_s=1.5,
        result=result(peak_temp_c=53.0, fps={"a": 30.0, "b": 25.0},
                      failsafe_s=4.0),
        snapshot=detection_snapshot([2.0, 4.0]),
    )
    assert sample.values["excess_c"] == pytest.approx(3.0)
    assert sample.values["min_fps"] == 25.0
    assert sample.values["failsafe_s"] == 4.0
    assert sample.values["wall_s"] == 1.5
    assert sample.values["detection_latency_s"] == pytest.approx(3.0)
    assert set(sample.values) <= set(SERIES)


def test_excess_clamps_at_zero_and_uses_platform_default_limit():
    agg = CampaignAggregator("t")
    cool = agg.ingest("r1", scenario(t_limit_c=60.0), "completed",
                      result=result(peak_temp_c=45.0))
    assert cool.values["excess_c"] == 0.0
    # t_limit_c=None falls back to the platform definition's default.
    defaulted = agg.ingest("r2", scenario(t_limit_c=None), "completed",
                           result=result(peak_temp_c=200.0))
    assert defaulted.values["excess_c"] > 0.0


def test_no_detection_events_means_no_latency_series():
    agg = CampaignAggregator("t")
    sample = agg.ingest("r1", scenario(), "completed", result=result(),
                        snapshot=detection_snapshot([]))
    assert "detection_latency_s" not in sample.values


def test_reingest_overwrites():
    agg = CampaignAggregator("t")
    agg.ingest("r1", scenario(), "pending")
    agg.ingest("r1", scenario(), "completed", result=result())
    aggregate = agg.aggregate()
    assert len(aggregate.samples) == 1
    assert aggregate.samples[0].status == "completed"


def test_aggregate_orders_samples_by_run_id():
    agg = CampaignAggregator("t")
    agg.ingest("2-b", scenario(), "completed", result=result())
    agg.ingest("1-a", scenario(), "completed", result=result())
    assert [s.run_id for s in agg.aggregate().samples] == ["1-a", "2-b"]


def test_merge_telemetry_false_skips_the_snapshot():
    agg = CampaignAggregator("t")
    agg.ingest("r1", scenario(), "completed", result=result(),
               snapshot=detection_snapshot([1.0]))
    assert agg.aggregate(merge_telemetry=False).snapshot is None
    assert agg.aggregate().snapshot is not None


# --------------------------------------------------------------- aggregate


@pytest.fixture()
def mixed_aggregate():
    agg = CampaignAggregator("mixed")
    agg.ingest("1", scenario(policy="none", t_limit_c=50.0), "completed",
               elapsed_s=1.0, result=result(peak_temp_c=58.0))
    agg.ingest("2", scenario(policy="proposed", t_limit_c=50.0), "completed",
               elapsed_s=3.0,
               result=result(peak_temp_c=50.5, fps={"a": 29.0}))
    agg.ingest("3", scenario(policy="none", fault_plan="fan-stop"), "cached",
               result=result(peak_temp_c=40.0))
    agg.ingest("4", scenario(policy="none"), "failed", elapsed_s=0.5,
               failure_kind="crash")
    return agg.aggregate()


def test_scalars(mixed_aggregate):
    agg = mixed_aggregate
    assert agg.scalar("runs_total") == 4.0
    assert agg.scalar("runs_cached") == 1.0
    assert agg.scalar("runs_completed") == 2.0
    assert agg.scalar("runs_failed") == 1.0
    assert agg.scalar("runs_pending") == 0.0
    assert agg.scalar("runs_crashed") == 1.0
    assert agg.scalar("cache_hit_ratio") == 0.25
    with pytest.raises(ConfigurationError):
        agg.scalar("bogus")
    assert {name for name in SCALARS} == set(SCALARS)  # no duplicates


def test_series_scoping(mixed_aggregate):
    agg = mixed_aggregate
    assert agg.series("excess_c") == [8.0, 0.5, 0.0]
    assert agg.series("excess_c", policy="proposed") == [0.5]
    assert agg.series("excess_c", fault_plan="fan-stop") == [0.0]
    assert agg.series("min_fps") == [29.0]
    assert agg.series("wall_s") == [1.0, 3.0, 0.5]
    with pytest.raises(ConfigurationError):
        agg.series("bogus")


def test_groups_sorted(mixed_aggregate):
    assert mixed_aggregate.groups() == [
        ("odroid-xu3", "none", None),
        ("odroid-xu3", "none", "fan-stop"),
        ("odroid-xu3", "proposed", None),
    ]


def test_summary_shape(mixed_aggregate):
    summary = mixed_aggregate.summary()
    assert set(summary) == {"scalars", "overall", "groups"}
    assert set(summary["scalars"]) == set(SCALARS)
    excess = summary["overall"]["excess_c"]
    assert excess["count"] == 3
    assert excess["max"] == 8.0
    assert excess["p50"] == 0.5
    assert len(summary["groups"]) == 3


def test_to_registry_families_subset_of_catalogue(mixed_aggregate):
    registry = mixed_aggregate.to_registry()
    names = set(registry.names())
    assert names <= set(FLEET_FAMILIES)
    assert "repro_fleet_runs" in names
    text = prometheus_text(registry)
    assert 'repro_fleet_runs{campaign="mixed",status="completed"} 2' in text
    assert 'repro_fleet_cache_hit_ratio{campaign="mixed"} 0.25' in text
    # Group children carry the axis labels, unfaulted groups say "none".
    assert 'fault_plan="none"' in text and 'fault_plan="fan-stop"' in text


def test_dict_round_trip(mixed_aggregate):
    data = mixed_aggregate.to_dict()
    assert data["schema"] == "repro.obs.aggregate/1"
    assert "summary" in data  # derived, for human/jq consumers
    back = CampaignAggregate.from_dict(data)
    assert back == mixed_aggregate
    with pytest.raises(ConfigurationError):
        CampaignAggregate.from_dict({**data, "schema": "nope/1"})


def test_render_text(mixed_aggregate):
    text = mixed_aggregate.render_text()
    assert "Fleet summary: mixed" in text
    assert "4 run(s), cache hit ratio 0.25, 1 failed (1 crashed)" in text
