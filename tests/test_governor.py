"""The application-aware thermal governor (the paper's Section IV.B)."""

import pytest

from repro.apps.frames import FrameApp, FrameWorkload
from repro.apps.mibench import basicmath_large
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.core.stability import LumpedThermalParams
from repro.errors import ConfigurationError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3


def make_sim(apps, seed=1):
    return Simulation(odroid_xu3(), apps, kernel_config=KernelConfig(), seed=seed)


def make_governor(sim, **cfg_kwargs):
    defaults = dict(t_limit_c=70.0, horizon_s=120.0, window_s=1.0, period_s=0.1)
    defaults.update(cfg_kwargs)
    gov = ApplicationAwareGovernor.for_simulation(sim, GovernorConfig(**defaults))
    gov.install(sim.kernel)
    return gov


def light_game():
    return FrameApp(
        "game",
        FrameWorkload(
            cpu_cycles_per_frame=6e6,
            gpu_cycles_per_frame=4e6,
            target_fps=60.0,
            sigma=0.1,
        ),
    )


def test_config_validation():
    with pytest.raises(ConfigurationError):
        GovernorConfig(period_s=0.0)
    with pytest.raises(ConfigurationError):
        GovernorConfig(window_s=0.05, period_s=0.1)


def test_for_simulation_discovers_paths():
    sim = make_sim([])
    gov = make_governor(sim)
    assert "/sys/class/thermal/" in gov._temp_path
    assert set(gov._power_paths) == {"a15", "a7", "gpu", "mem"}


def test_predictions_logged_each_period():
    sim = make_sim([])
    gov = make_governor(sim)
    sim.run(2.0)
    assert len(gov.predictions) == pytest.approx(20, abs=2)
    assert all(p.p_total_w >= 0.0 for p in gov.predictions)


def test_idle_system_predicts_no_violation():
    sim = make_sim([])
    gov = make_governor(sim, t_limit_c=85.0)
    sim.run(5.0)
    assert gov.events == []
    last = gov.predictions[-1]
    assert last.stable_temp_c is not None
    assert last.stable_temp_c < 85.0


def test_migrates_most_power_hungry_process():
    game = light_game()
    bml = basicmath_large()
    sim = make_sim([game, bml])
    gov = make_governor(sim, t_limit_c=60.0, horizon_s=300.0)
    sim.run(20.0)
    assert gov.events, "expected a migration"
    event = gov.events[0]
    assert event.name == "bml"
    assert event.direction == "to_little"
    assert sim.kernel.task_cluster(bml.pid) == "a7"


def test_registered_process_never_migrated():
    game = light_game()
    bml = basicmath_large()
    sim = make_sim([game, bml])
    gov = make_governor(sim, t_limit_c=60.0, horizon_s=300.0)
    for pid in bml.pids():
        gov.registry.register(pid, "bml")
    sim.run(20.0)
    # BML is protected and the game's CPU task is the only candidate left.
    assert all(e.name != "bml" for e in gov.events)
    assert sim.kernel.task_cluster(bml.pid) == "a15"


def test_everything_protected_means_no_action():
    bml = basicmath_large()
    sim = make_sim([bml])
    gov = make_governor(sim, t_limit_c=60.0, horizon_s=300.0)
    for pid in bml.pids():
        gov.registry.register(pid)
    sim.run(10.0)
    assert gov.events == []


def test_no_action_when_violation_far_away():
    bml = basicmath_large()
    sim = make_sim([bml])
    # Violation predicted but the horizon is tiny: act only when imminent.
    gov = make_governor(sim, t_limit_c=60.0, horizon_s=0.2)
    sim.run(5.0)
    assert gov.events == []


def test_attribution_prefers_heavier_task():
    # Two unbounded tasks with different thread counts: the wider one burns
    # more cluster power and must be picked.
    from repro.apps.mibench import BatchApp

    narrow = BatchApp("narrow", n_threads=1)
    wide = BatchApp("wide", n_threads=2)
    sim = make_sim([narrow, wide])
    gov = make_governor(sim, t_limit_c=55.0, horizon_s=600.0)
    sim.run(15.0)
    assert gov.events
    assert gov.events[0].name == "wide"


def test_migrate_back_extension():
    bml = basicmath_large()
    sim = make_sim([bml])
    gov = make_governor(
        sim, t_limit_c=60.0, horizon_s=300.0,
        migrate_back=True, back_margin_c=2.0, back_dwell_s=1.0,
    )
    sim.run(15.0)
    assert any(e.direction == "to_little" for e in gov.events)
    # After migration the system cools well under the limit; with an
    # aggressive margin the governor eventually brings BML back.
    sim.run(60.0)
    directions = [e.direction for e in gov.events]
    assert "to_big" in directions


def test_uses_lumped_params_when_given():
    sim = make_sim([])
    params = LumpedThermalParams(10.0, 5.0, 1e-3, 1650.0, 300.0)
    gov = ApplicationAwareGovernor.for_simulation(
        sim, GovernorConfig(), params=params
    )
    assert gov.params is params
