"""Campaign grid language: validation, expansion and JSON round-trips.

The round-trip property tests are the serialisation contract of the
content-addressed store: for every spec the wire format must rebuild an
*equal* object (``from_dict(to_dict(x)) == x``), otherwise cache keys
would drift between processes.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.catalog import CATALOG
from repro.apps.mibench import MIBENCH_SUITE
from repro.campaign.spec import Axis, CampaignSpec, canonical_json
from repro.core.governor import GovernorConfig
from repro.errors import ConfigurationError
from repro.sim.experiment import AppSpec, Scenario

# --------------------------------------------------------------- strategies

_clusters = st.sampled_from([None, "a7", "a15"])

app_specs = st.one_of(
    st.builds(AppSpec.catalog, st.sampled_from(sorted(CATALOG)), _clusters),
    st.builds(AppSpec.batch, st.sampled_from(sorted(MIBENCH_SUITE)), _clusters),
)

_finite = {"allow_nan": False, "allow_infinity": False}


@st.composite
def governor_configs(draw):
    period_s = draw(st.floats(0.01, 5.0, **_finite))
    return GovernorConfig(
        t_limit_c=draw(st.floats(40.0, 100.0, **_finite)),
        horizon_s=draw(st.floats(1.0, 300.0, **_finite)),
        window_s=period_s * draw(st.floats(1.0, 20.0, **_finite)),
        period_s=period_s,
        predictive=draw(st.booleans()),
        action=draw(st.sampled_from(["migrate", "duty_cycle"])),
        min_quota=draw(st.floats(0.05, 1.0, **_finite)),
        migrate_back=draw(st.booleans()),
        back_margin_c=draw(st.floats(0.0, 20.0, **_finite)),
        back_dwell_s=draw(st.floats(0.1, 60.0, **_finite)),
    )


scenarios = st.builds(
    Scenario,
    platform=st.sampled_from(["nexus6p", "odroid-xu3"]),
    apps=st.lists(app_specs, min_size=1, max_size=3).map(tuple),
    policy=st.sampled_from(["none", "stock", "proposed"]),
    duration_s=st.floats(1.0, 600.0, **_finite),
    seed=st.integers(0, 2**31 - 1),
    t_limit_c=st.one_of(st.none(), st.floats(40.0, 100.0, **_finite)),
    governor=st.one_of(st.none(), governor_configs()),
    ambient_c=st.one_of(st.none(), st.floats(0.0, 45.0, **_finite)),
)


# ---------------------------------------------------------- round-tripping


@given(spec=app_specs)
@settings(max_examples=100, deadline=None)
def test_appspec_roundtrip(spec):
    data = json.loads(json.dumps(spec.to_dict()))
    assert AppSpec.from_dict(data) == spec


@given(config=governor_configs())
@settings(max_examples=100, deadline=None)
def test_governor_config_roundtrip(config):
    data = json.loads(json.dumps(config.to_dict()))
    assert GovernorConfig.from_dict(data) == config


@given(scenario=scenarios)
@settings(max_examples=100, deadline=None)
def test_scenario_roundtrip(scenario):
    data = json.loads(json.dumps(scenario.to_dict()))
    rebuilt = Scenario.from_dict(data)
    assert rebuilt == scenario
    # Equality and the cache key agree: equal scenarios, equal canon.
    assert canonical_json(rebuilt.to_dict()) == canonical_json(scenario.to_dict())


@given(scenario=scenarios)
@settings(max_examples=50, deadline=None)
def test_scenario_result_dict_is_json_stable(scenario):
    """to_dict is pure: two calls produce identical canonical JSON."""
    assert canonical_json(scenario.to_dict()) == canonical_json(scenario.to_dict())


def test_appspec_from_dict_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        AppSpec.from_dict({"kind": "daemon", "name": "bml"})


def test_governor_from_dict_rejects_unknown_field():
    with pytest.raises(ConfigurationError):
        GovernorConfig.from_dict({"t_limit_c": 60.0, "hysteresis": 2.0})


def test_scenario_from_dict_rejects_unknown_field():
    with pytest.raises(ConfigurationError):
        Scenario.from_dict({
            "platform": "nexus6p",
            "apps": [{"kind": "catalog", "name": "stickman", "cluster": None}],
            "overclock": True,
        })


def test_campaign_spec_roundtrip_through_json():
    spec = CampaignSpec(
        name="rt-check",
        base={
            "platform": "odroid-xu3",
            "apps": (AppSpec.catalog("stickman"), AppSpec.batch("bml")),
            "duration_s": 30.0,
            "governor": {"t_limit_c": 60.0},
        },
        axes=(
            Axis("policy", ("none", "proposed")),
            Axis("governor.horizon_s", (10.0, 60.0)),
        ),
    )
    rebuilt = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec
    assert [r.run_id for r in rebuilt.expand()] == [
        r.run_id for r in spec.expand()
    ]


# ---------------------------------------------------------------- validation


def test_axis_rejects_unknown_name():
    with pytest.raises(ConfigurationError):
        Axis("frequency", (1.0, 2.0))


def test_axis_rejects_unknown_governor_field():
    with pytest.raises(ConfigurationError):
        Axis("governor.boost", (1.0,))


def test_axis_rejects_empty_and_duplicate_values():
    with pytest.raises(ConfigurationError):
        Axis("seed", ())
    with pytest.raises(ConfigurationError):
        Axis("seed", (1, 2, 1))


def test_axis_normalizes_apps_values():
    axis = Axis("apps", (AppSpec.catalog("stickman"),
                         ({"kind": "batch", "name": "bml", "cluster": None},)))
    assert axis.values[0] == (AppSpec.catalog("stickman"),)
    assert axis.values[1] == (AppSpec.batch("bml"),)


def test_campaign_name_must_be_a_slug():
    base = {"platform": "nexus6p", "apps": (AppSpec.catalog("stickman"),)}
    with pytest.raises(ConfigurationError):
        CampaignSpec(name="Bad Name", base=base, axes=())
    CampaignSpec(name="ok-name.v2", base=base, axes=())


def test_campaign_requires_platform_and_apps():
    with pytest.raises(ConfigurationError):
        CampaignSpec(name="x", base={"platform": "nexus6p"}, axes=())
    with pytest.raises(ConfigurationError):
        CampaignSpec(
            name="x", base={"apps": (AppSpec.catalog("stickman"),)}, axes=(),
        )
    # ... unless supplied as an axis.
    CampaignSpec(
        name="x",
        base={"apps": (AppSpec.catalog("stickman"),)},
        axes=(Axis("platform", ("nexus6p", "odroid-xu3")),),
    )


def test_campaign_rejects_duplicate_axes_and_unknown_base():
    base = {"platform": "nexus6p", "apps": (AppSpec.catalog("stickman"),)}
    with pytest.raises(ConfigurationError):
        CampaignSpec(
            name="x", base=base,
            axes=(Axis("seed", (1,)), Axis("seed", (2,))),
        )
    with pytest.raises(ConfigurationError):
        CampaignSpec(name="x", base={**base, "voltage": 1.1}, axes=())


def test_campaign_rejects_unknown_governor_base_field():
    base = {
        "platform": "nexus6p",
        "apps": (AppSpec.catalog("stickman"),),
        "governor": {"boost": True},
    }
    with pytest.raises(ConfigurationError):
        CampaignSpec(name="x", base=base, axes=())


# ----------------------------------------------------------------- expansion


def test_expand_is_deterministic_product_order():
    spec = CampaignSpec(
        name="grid",
        base={"platform": "odroid-xu3",
              "apps": (AppSpec.catalog("stickman"),)},
        axes=(Axis("policy", ("none", "stock")), Axis("seed", (1, 2, 3))),
    )
    assert spec.size == 6
    runs = spec.expand()
    assert [r.index for r in runs] == list(range(6))
    # First axis varies slowest (itertools.product order).
    assert [(r.scenario.policy, r.scenario.seed) for r in runs] == [
        ("none", 1), ("none", 2), ("none", 3),
        ("stock", 1), ("stock", 2), ("stock", 3),
    ]
    assert runs == spec.expand()  # stable
    assert len({r.run_id for r in runs}) == 6


def test_expand_applies_governor_axes():
    spec = CampaignSpec(
        name="gov",
        base={
            "platform": "odroid-xu3",
            "apps": (AppSpec.catalog("stickman"),),
            "policy": "proposed",
            "governor": {"t_limit_c": 60.0},
        },
        axes=(Axis("governor.horizon_s", (10.0, 120.0)),),
    )
    runs = spec.expand()
    assert [r.scenario.governor.horizon_s for r in runs] == [10.0, 120.0]
    assert all(r.scenario.governor.t_limit_c == 60.0 for r in runs)


def test_apps_axis_dedup_happens_after_normalization():
    # The same mix spelled as AppSpecs and as dicts is one grid point,
    # not two — otherwise the campaign would silently run it twice.
    with pytest.raises(ConfigurationError):
        Axis("apps", (
            (AppSpec.catalog("stickman"),),
            ({"kind": "catalog", "name": "stickman", "cluster": None},),
        ))
