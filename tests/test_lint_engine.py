"""Engine mechanics: parallel byte-identity, the incremental cache,
exit codes, SARIF output, and deterministic baseline updates.

These tests run over small on-disk fixture trees so they are fast; the
shipped-tree equivalents live in ``test_lint_clean.py``.  R301 is left
out of the active set here — its authority boots two platform kernels,
which the mechanics under test don't need.
"""

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint import all_rules, get_rule, run_lint, update_baseline
from repro.lint.cache import LintCache, rules_fingerprint
from repro.lint.sarif import SARIF_SCHEMA, SARIF_VERSION

#: Everything except the platform-booting sysfs rule.
FAST_RULES = [r for r in all_rules() if r.id != "R301"]
FAST_IDS = [r.id for r in FAST_RULES]

#: A package with one violation per layer: R1 (per-file, parallelisable)
#: and R5 (whole-program, parent-process) both fire.
FIXTURE = {
    "units.py": """
        def celsius_to_millicelsius(temp_c):
            return int(round(temp_c * 1000))
    """,
    "core/gov.py": """
        def poll(zone):
            temp_c = zone.read_millicelsius()
            return temp_c
    """,
    "core/trip.py": """
        def margin(trip_mc):
            return trip_mc * 1000
    """,
    "obs/manifest.py": """
        def stamp():
            return {"schema": "repro.fixture/1"}
    """,
}


def make_tree(tmp_path, files=FIXTURE):
    pkg = tmp_path / "app"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for relpath, source in files.items():
        path = pkg / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return pkg


def lint(pkg, **kwargs):
    kwargs.setdefault("rules", FAST_RULES)
    kwargs.setdefault("use_baseline", False)
    return run_lint([pkg], **kwargs)


# -------------------------------------------------------------- parallel


def test_parallel_output_is_byte_identical(tmp_path):
    pkg = make_tree(tmp_path)
    serial = lint(pkg, jobs=1)
    parallel = lint(pkg, jobs=4)
    assert serial.new, "fixture should produce findings"
    assert parallel.render_text() == serial.render_text()
    assert parallel.render_json() == serial.render_json()
    assert parallel.render_sarif() == serial.render_sarif()


def test_parallel_project_rules_still_fire(tmp_path):
    """Whole-program families run in the parent even with a pool."""
    pkg = make_tree(tmp_path)
    families = {f.rule[:2] for f in lint(pkg, jobs=4).new}
    assert "R1" in families  # per-file, from the workers
    assert "R5" in families  # project, from the parent


# ----------------------------------------------------------------- cache


def test_cache_rehit_and_stats(tmp_path):
    pkg = make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    cold = lint(pkg, cache_path=cache)
    assert cold.cache.file_hits == 0
    assert cold.cache.file_misses == cold.files_scanned
    assert cold.cache.project_hit is False
    warm = lint(pkg, cache_path=cache)
    assert warm.cache.file_hits == warm.files_scanned
    assert warm.cache.file_misses == 0
    assert warm.cache.project_hit is True
    assert warm.render_text() == cold.render_text()


def test_cache_invalidates_only_the_edited_file(tmp_path):
    pkg = make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    lint(pkg, cache_path=cache)
    (pkg / "core" / "trip.py").write_text(
        "def margin(trip_mc):\n    return trip_mc\n"
    )
    after = lint(pkg, cache_path=cache)
    assert after.cache.file_misses == 1  # just the edited file
    assert after.cache.file_hits == after.files_scanned - 1
    # The project pass keys on the whole-tree fingerprint: any edit
    # re-runs R5-R8.
    assert after.cache.project_hit is False
    assert all(f.path != "core/trip.py" or f.rule[:2] != "R1"
               for f in after.new)


def test_cache_invalidates_on_rule_set_change(tmp_path):
    pkg = make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    lint(pkg, cache_path=cache)
    subset = [r for r in FAST_RULES if r.id != "R102"]
    report = lint(pkg, rules=subset, cache_path=cache)
    assert report.cache.file_hits == 0  # fingerprint mismatch: cold


def test_cache_fingerprint_is_order_insensitive():
    assert rules_fingerprint(FAST_IDS) == rules_fingerprint(
        list(reversed(FAST_IDS))
    )


def test_cache_corrupt_file_is_ignored(tmp_path):
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    opened = LintCache.open(cache, FAST_IDS)
    assert opened.get_file("a.py", "0" * 64) is None
    pkg = make_tree(tmp_path)
    report = lint(pkg, cache_path=cache)  # must not raise
    assert report.cache.file_misses == report.files_scanned


def test_cached_findings_reconcile_against_fresh_baseline(tmp_path):
    """Baseline matching runs after the cache: baselining a finding must
    take effect even when every file is a cache hit."""
    pkg = make_tree(tmp_path)
    cache = tmp_path / "cache.json"
    baseline = tmp_path / "baseline.json"
    first = lint(pkg, cache_path=cache)
    update_baseline(first, baseline, justification="fixture: accepted")
    second = lint(pkg, cache_path=cache, use_baseline=True,
                  baseline_path=baseline)
    assert second.cache.file_hits == second.files_scanned
    assert second.exit_code == 0
    assert len(second.baselined) == len(first.new)


# ------------------------------------------------------------ exit codes


def test_exit_code_contract(tmp_path):
    pkg = make_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    dirty = lint(pkg)
    assert dirty.exit_code == 1
    update_baseline(dirty, baseline, justification="fixture: accepted")
    clean = lint(pkg, use_baseline=True, baseline_path=baseline)
    assert clean.exit_code == 0
    # Fix everything: only stale entries remain -> 2, not 1.
    for relpath in ("core/trip.py", "core/gov.py"):
        (pkg / relpath).write_text("VALUE = 1\n")
    stale = lint(pkg, use_baseline=True, baseline_path=baseline)
    assert stale.new == []
    assert stale.stale_baseline
    assert stale.exit_code == 2


# ----------------------------------------------------------------- SARIF


def test_sarif_is_valid_and_complete(tmp_path):
    pkg = make_tree(tmp_path)
    report = lint(pkg)
    log = json.loads(report.render_sarif())
    assert log["$schema"] == SARIF_SCHEMA
    assert log["version"] == SARIF_VERSION == "2.1.0"
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert [r["id"] for r in driver["rules"]] == sorted(FAST_IDS)
    assert len(run["results"]) == len(report.findings)
    for result, finding in zip(run["results"], report.findings):
        assert result["ruleId"] == finding.rule
        assert result["level"] == "error"
        assert result["baselineState"] == "new"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == finding.line
        assert region["startColumn"] == finding.col + 1  # 1-based per spec
        assert driver["rules"][result["ruleIndex"]]["id"] == finding.rule


def test_sarif_baselined_findings_are_notes(tmp_path):
    pkg = make_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    update_baseline(lint(pkg), baseline, justification="fixture: accepted")
    report = lint(pkg, use_baseline=True, baseline_path=baseline)
    results = json.loads(report.render_sarif())["runs"][0]["results"]
    assert results, "baselined findings must still be reported"
    assert all(r["level"] == "note" for r in results)
    assert all(r["baselineState"] == "unchanged" for r in results)


# ------------------------------------------------------- update-baseline


def test_update_baseline_is_deterministic_and_prunes(tmp_path):
    pkg = make_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    update_baseline(lint(pkg), baseline, justification="fixture: accepted")
    first_bytes = baseline.read_bytes()
    update_baseline(
        lint(pkg, use_baseline=True, baseline_path=baseline), baseline
    )
    assert baseline.read_bytes() == first_bytes  # same tree -> same bytes
    # Fix one finding; the next update drops exactly its entries.
    (pkg / "core" / "trip.py").write_text("VALUE = 1\n")
    report = lint(pkg, use_baseline=True, baseline_path=baseline)
    update_baseline(report, baseline)
    entries = json.loads(baseline.read_text())["entries"]
    assert entries, "untouched findings stay grandfathered"
    assert all(e["path"] != "core/trip.py" for e in entries)
    assert all(e["justification"].strip() for e in entries)


# ------------------------------------------------------------------- CLI


def test_cli_jobs_and_sarif_roundtrip(tmp_path, capsys):
    pkg = make_tree(tmp_path, files={
        "clean.py": "GOOD_C = 41.0\n",
    })
    assert main(["lint", str(pkg), "--no-baseline", "--format", "sarif",
                 "--jobs", "2"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    assert log["runs"][0]["results"] == []


def test_cli_cache_flag_creates_cache_file(tmp_path, capsys):
    pkg = make_tree(tmp_path, files={
        "clean.py": "GOOD_C = 41.0\n",
    })
    cache = tmp_path / "cache.json"
    assert main(["lint", str(pkg), "--no-baseline",
                 "--cache", str(cache)]) == 0
    capsys.readouterr()
    assert cache.exists()
    assert main(["lint", str(pkg), "--no-baseline", "--format", "json",
                 "--cache", str(cache)]) == 0
    payload = json.loads(capsys.readouterr().out)
    summary = payload["summary"]
    assert summary["cache_file_hits"] == summary["files_scanned"]
    assert summary["cache_project_hit"] is True
