"""Real-time process registry."""

import pytest

from repro.core.registry import RealTimeRegistry
from repro.errors import ConfigurationError


def test_register_and_check():
    reg = RealTimeRegistry()
    reg.register(100, "game")
    assert reg.is_protected(100)
    assert not reg.is_protected(101)


def test_unregister():
    reg = RealTimeRegistry()
    reg.register(100)
    reg.unregister(100)
    assert not reg.is_protected(100)


def test_unregister_unknown_is_noop():
    RealTimeRegistry().unregister(5)


def test_pids_sorted():
    reg = RealTimeRegistry()
    reg.register(30)
    reg.register(10)
    assert reg.pids() == (10, 30)


def test_len():
    reg = RealTimeRegistry()
    reg.register(1)
    reg.register(1)  # idempotent
    assert len(reg) == 1


def test_invalid_pid():
    with pytest.raises(ConfigurationError):
        RealTimeRegistry().register(-1)
