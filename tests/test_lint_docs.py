"""docs/STATIC_ANALYSIS.md must match the registered rule catalogue."""

import pathlib
import re

from repro.lint import all_rules

DOC = pathlib.Path(__file__).parent.parent / "docs" / "STATIC_ANALYSIS.md"

#: Inline-code tokens that look like rule ids.
_RULE_ID_RE = re.compile(r"`(R\d{3})`")


def test_doc_exists():
    assert DOC.exists(), "docs/STATIC_ANALYSIS.md is part of the lint contract"


def test_rule_catalogue_matches_registry():
    documented = set(_RULE_ID_RE.findall(DOC.read_text()))
    registered = {rule.id for rule in all_rules()}
    missing = registered - documented
    stale = documented - registered
    assert not missing, f"registered but undocumented: {sorted(missing)}"
    assert not stale, f"documented but never registered: {sorted(stale)}"


def test_rule_names_documented():
    text = DOC.read_text()
    for rule in all_rules():
        assert f"`{rule.name}`" in text, (
            f"rule name {rule.name!r} missing from the doc")


def test_suppression_grammar_documented():
    text = DOC.read_text()
    for token in ("disable=", "disable-next-line=", "disable-file="):
        assert token in text
