"""DVFS policy: limits, caps, residency, utilisation window."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.cpufreq.policy import DvfsPolicy
from repro.soc.opp import OppTable


@pytest.fixture()
def policy():
    opps = OppTable.from_pairs(
        [(200e6, 0.9), (400e6, 0.95), (800e6, 1.05), (1600e6, 1.25)]
    )
    return DvfsPolicy("cpu", opps, initial_freq_hz=200e6)


def test_initial_frequency(policy):
    assert policy.cur_freq_hz == 200e6


def test_default_initial_is_max():
    opps = OppTable.from_pairs([(200e6, 0.9), (400e6, 1.0)])
    assert DvfsPolicy("x", opps).cur_freq_hz == 400e6


def test_set_target_snaps_up_to_opp(policy):
    assert policy.set_target(500e6) == 800e6


def test_set_target_respects_user_max(policy):
    policy.set_user_limits(200e6, 400e6)
    assert policy.set_target(1600e6) == 400e6


def test_set_target_respects_thermal_cap(policy):
    policy.set_thermal_max(800e6)
    assert policy.set_target(1600e6) == 800e6


def test_effective_max_is_min_of_caps(policy):
    policy.set_user_limits(200e6, 1600e6)
    policy.set_thermal_max(400e6)
    assert policy.effective_max_hz == 400e6


def test_thermal_cap_reclamps_current(policy):
    policy.set_target(1600e6)
    policy.set_thermal_max(400e6)
    assert policy.cur_freq_hz == 400e6


def test_lifting_cap_does_not_raise_current(policy):
    policy.set_target(400e6)
    policy.set_thermal_max(1600e6)
    assert policy.cur_freq_hz == 400e6


def test_min_above_max_rejected(policy):
    with pytest.raises(ConfigurationError):
        policy.set_user_limits(800e6, 400e6)


def test_set_target_tracks_last_raise(policy):
    policy.set_target(800e6, now_s=1.0)
    assert policy.last_raise_s == 1.0
    policy.set_target(400e6, now_s=2.0)  # a decrease does not update it
    assert policy.last_raise_s == 1.0


def test_time_in_state_accumulates(policy):
    policy.account(0.01, 0.5)
    policy.account(0.01, 0.5)
    policy.set_target(800e6)
    policy.account(0.01, 0.5)
    tis = policy.time_in_state
    assert tis[200000] == pytest.approx(0.02)
    assert tis[800000] == pytest.approx(0.01)


def test_time_in_state_reset(policy):
    policy.account(0.01, 0.5)
    policy.reset_time_in_state()
    assert sum(policy.time_in_state.values()) == 0.0


def test_take_utilization_averages_and_resets(policy):
    policy.account(0.01, 1.0)
    policy.account(0.01, 0.0)
    assert policy.take_utilization() == pytest.approx(0.5)
    policy.account(0.01, 0.2)
    assert policy.take_utilization() == pytest.approx(0.2)


def test_take_utilization_empty_window_returns_last(policy):
    policy.account(0.01, 0.7)
    policy.take_utilization()
    assert policy.take_utilization() == pytest.approx(0.7)


def test_mean_util_tracked_separately(policy):
    policy.account(0.01, 1.0, mean_util=0.25)
    assert policy.last_util == 1.0
    assert policy.last_mean_util == 0.25


def test_boost_window(policy):
    policy.notify_input(10.0, duration_s=0.5)
    assert policy.boosted(10.3)
    assert not policy.boosted(10.6)
