"""Experiment modules: structure and cheap invariants.

The full paper-fidelity runs live in benchmarks/; here we validate the
cheap experiment code paths (Figure 7, ablation sweeps) and the experiment
plumbing without long simulations.
"""

import numpy as np
import pytest

from repro.core.stability import ODROID_XU3_LUMPED
from repro.experiments.ablations import (
    critical_power_vs_ambient,
    critical_power_vs_resistance,
    safe_budget_vs_limit,
)
from repro.experiments.fig7 import PAPER_POWERS_W, figure7
from repro.experiments.nexus import nexus_thermal_config
from repro.experiments.odroid import odroid_default_thermal, SCENARIOS


def test_figure7_three_panels():
    curves = figure7()
    assert [c.p_dyn_w for c in curves] == list(PAPER_POWERS_W)


def test_figure7_root_structure_matches_paper():
    curves = {c.p_dyn_w: c for c in figure7()}
    assert curves[2.0].n_roots == 2
    assert curves[5.5].n_roots in (1, 2)  # critically stable (merged)
    assert curves[8.0].n_roots == 0


def test_figure7_critical_panel_roots_nearly_merged():
    curve = next(c for c in figure7() if c.p_dyn_w == 5.5)
    if curve.n_roots == 2:
        assert curve.report.stable_aux - curve.report.unstable_aux < 0.15


def test_figure7_curves_are_concave():
    for curve in figure7():
        assert (np.diff(curve.f, 2) < 1e-9).all()


def test_figure7_moves_down_with_power():
    curves = figure7()
    assert (curves[1].f < curves[0].f).all()
    assert (curves[2].f < curves[1].f).all()


def test_figure7_custom_params():
    curves = figure7(powers_w=(1.0,), x_range=(1.0, 3.0), n_points=11)
    assert len(curves) == 1
    assert curves[0].x[0] == 1.0 and curves[0].x[-1] == 3.0


def test_critical_power_decreases_with_ambient():
    sweep = critical_power_vs_ambient()
    powers = [p for _, p in sweep]
    assert all(b < a for a, b in zip(powers, powers[1:]))


def test_critical_power_decreases_with_resistance():
    sweep = critical_power_vs_resistance()
    powers = [p for _, p in sweep]
    assert all(b < a for a, b in zip(powers, powers[1:]))


def test_critical_power_at_unit_scale_is_paper_value():
    sweep = dict(critical_power_vs_resistance())
    assert sweep[1.0] == pytest.approx(5.5, abs=0.01)


def test_safe_budget_increases_with_limit():
    sweep = safe_budget_vs_limit()
    budgets = [b for _, b in sweep]
    assert all(b >= a for a, b in zip(budgets, budgets[1:]))


def test_thermal_config_factories():
    nexus = nexus_thermal_config()
    assert nexus.kind == "step_wise"
    assert nexus.sensor == "pkg"
    odroid = odroid_default_thermal()
    assert odroid.kind == "ipa"
    assert odroid.control_temp_c > odroid.switch_on_temp_c


def test_scenarios_tuple():
    assert SCENARIOS == ("alone", "bml_default", "bml_proposed")
