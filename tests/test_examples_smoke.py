"""Smoke tests: the fast example scripts run end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    # Examples import each other's siblings only via repro; safe to exec.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize(
    "name",
    ["quickstart", "userspace_sysfs_tour", "replay_and_report"],
)
def test_fast_examples_run(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip()  # produced some report


def test_campaign_sweep_example(capsys):
    run_example("campaign_sweep")
    out = capsys.readouterr().out
    assert "6/6 run(s) served from the store" in out
    assert "Campaign example-sweep: results" in out


def test_chaos_sweep_example(capsys):
    run_example("chaos_sweep")
    out = capsys.readouterr().out
    assert "Resilience report" in out
    assert "hardening property holds" in out


def test_custom_platform_example(capsys):
    run_example("custom_platform")
    out = capsys.readouterr().out
    assert "Critical power" in out
    assert "Governor: " in out  # the predictive migration happened
