"""Kernel event tracer."""

import pytest

from repro.apps.mibench import basicmath_large
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.errors import ConfigurationError
from repro.kernel.kernel import KernelConfig
from repro.kernel.tracing import EventTracer, TraceEvent
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3


def test_tracer_basics():
    tracer = EventTracer(capacity=3)
    tracer.emit(1.0, "a", "x")
    tracer.emit(2.0, "b", "y", "detail")
    assert len(tracer) == 2
    assert tracer.events(source="a")[0].event == "x"
    assert tracer.events(event="y")[0].detail == "detail"


def test_ring_buffer_drops_oldest():
    tracer = EventTracer(capacity=2)
    for i in range(5):
        tracer.emit(float(i), "s", f"e{i}")
    assert len(tracer) == 2
    assert tracer.dropped == 3
    assert tracer.events()[0].event == "e3"
    assert "# 3 events dropped" in tracer.render()


def test_render_format():
    event = TraceEvent(1.234, "sched", "migrate", "pid=7 a15 -> a7")
    assert event.render() == "[     1.234] sched: migrate pid=7 a15 -> a7"


def test_clear():
    tracer = EventTracer()
    tracer.emit(0.0, "s", "e")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.render() == ""


def test_capacity_validation():
    with pytest.raises(ConfigurationError):
        EventTracer(capacity=0)


def test_wraparound_keeps_newest_and_filters():
    tracer = EventTracer(capacity=3)
    for i in range(10):
        tracer.emit(float(i), "s" if i % 2 else "t", f"e{i}")
    assert len(tracer) == 3
    assert tracer.dropped == 7
    assert [e.event for e in tracer.events()] == ["e7", "e8", "e9"]
    # filters apply to the surviving window only
    assert [e.event for e in tracer.events(source="s")] == ["e7", "e9"]


def test_tracer_metrics_wiring():
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    tracer = EventTracer(capacity=2, metrics=metrics)
    tracer.emit(0.0, "s", "a")
    assert metrics.value("repro_tracer_events_total") == 1.0
    assert metrics.value("repro_tracer_buffer_occupancy") == 1.0
    assert metrics.value("repro_tracer_buffer_capacity") == 2.0
    tracer.emit(0.1, "s", "b")
    tracer.emit(0.2, "s", "c")  # drops "a"
    assert metrics.value("repro_tracer_events_dropped_total") == 1.0
    assert metrics.value("repro_tracer_buffer_occupancy") == 2.0
    tracer.clear()
    assert metrics.value("repro_tracer_buffer_occupancy") == 0.0


def test_tracer_warns_once_on_first_drop(caplog):
    import logging

    tracer = EventTracer(capacity=1)
    with caplog.at_level(logging.WARNING, logger="repro.kernel.tracing"):
        tracer.emit(0.0, "s", "a")
        tracer.emit(0.1, "s", "b")
        tracer.emit(0.2, "s", "c")
    drops = [m for m in caplog.messages if "dropped" in m]
    assert len(drops) == 1


def test_kernel_emits_spawn_and_migrate():
    bml = basicmath_large()
    sim = Simulation(odroid_xu3(), [bml], kernel_config=KernelConfig(), seed=1)
    sim.kernel.migrate(bml.pid, "a7")
    events = sim.kernel.tracer.events(source="sched")
    kinds = [e.event for e in events]
    assert "spawn" in kinds
    assert "migrate" in kinds


def test_governor_migration_appears_in_trace():
    bml = basicmath_large()
    sim = Simulation(odroid_xu3(), [bml], kernel_config=KernelConfig(), seed=1)
    governor = ApplicationAwareGovernor.for_simulation(
        sim, GovernorConfig(t_limit_c=60.0, horizon_s=300.0)
    )
    governor.install(sim.kernel)
    sim.run(20.0)
    migrations = sim.kernel.tracer.events(source="sched", event="migrate")
    assert migrations, "the governor's action must be traced"


def test_hotplug_traced():
    sim = Simulation(odroid_xu3(), kernel_config=KernelConfig(), seed=1)
    sim.kernel.set_cluster_online("a15", False)
    sim.kernel.set_cluster_online("a15", True)
    events = sim.kernel.tracer.events(source="hotplug")
    assert [e.event for e in events] == ["offline", "online"]


def test_cooling_state_changes_traced():
    from repro.experiments.odroid import odroid_default_thermal
    from repro.apps.gfxbench import ThreeDMarkApp

    sim = Simulation(
        odroid_xu3(),
        [ThreeDMarkApp(gt1_duration_s=60.0, gt2_duration_s=5.0),
         basicmath_large()],
        kernel_config=KernelConfig(thermal=odroid_default_thermal()),
        seed=3,
    )
    sim.run(60.0)
    changes = sim.kernel.tracer.events(source="thermal", event="cooling_state")
    assert changes, "IPA throttling must leave cooling_state events"


def test_trace_sysfs_nodes():
    sim = Simulation(odroid_xu3(), kernel_config=KernelConfig(), seed=1)
    fs = sim.kernel.fs
    fs.write("/sys/kernel/debug/tracing/trace_marker", "hello from userspace")
    text = fs.read("/sys/kernel/debug/tracing/trace")
    assert "userspace: marker hello from userspace" in text


def test_quota_change_traced():
    bml = basicmath_large()
    sim = Simulation(odroid_xu3(), [bml], kernel_config=KernelConfig(), seed=1)
    sim.kernel.userspace_api().set_cpu_quota(bml.pid, 0.5)
    events = sim.kernel.tracer.events(source="cgroup")
    assert events and "0.5" in events[0].detail
