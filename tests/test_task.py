"""Task work queues, accounting, migration."""

import pytest

from repro.errors import SchedulingError
from repro.kernel.task import Task, TaskState


def test_pids_unique():
    a, b = Task("a", "big"), Task("b", "big")
    assert a.pid != b.pid


def test_new_task_is_runnable_only_with_work():
    t = Task("t", "big")
    assert not t.runnable
    t.add_work(1e6)
    assert t.runnable


def test_unbounded_always_runnable():
    t = Task("t", "big", unbounded=True)
    assert t.runnable


def test_backlog_sums_queue():
    t = Task("t", "big")
    t.add_work(1e6)
    t.add_work(2e6)
    assert t.backlog_cycles == pytest.approx(3e6)


def test_add_work_validation():
    t = Task("t", "big")
    with pytest.raises(SchedulingError):
        t.add_work(0.0)


def test_consume_completes_tags_in_order():
    t = Task("t", "big")
    t.add_work(1e6, tag="f1")
    t.add_work(1e6, tag="f2")
    done = t.consume(1.5e6, 0.01, 1e9, 1.0)
    assert done == ["f1"]
    done = t.consume(1e6, 0.01, 1e9, 1.0)
    assert done == ["f2"]


def test_consume_partial_leaves_remainder():
    t = Task("t", "big")
    t.add_work(2e6, tag="f")
    t.consume(0.5e6, 0.01, 1e9, 1.0)
    assert t.backlog_cycles == pytest.approx(1.5e6)


def test_consume_charges_core_seconds():
    t = Task("t", "big")
    t.add_work(2e6)
    t.consume(2e6, 0.01, 1e9, 2.0)  # 2e6 cycles at 2 GHz effective
    assert t.core_seconds["big"] == pytest.approx(2e6 / 2e9)


def test_unbounded_consumes_without_queue():
    t = Task("t", "big", unbounded=True)
    t.consume(1e6, 0.01, 1e9, 1.0)
    assert t.total_core_seconds() == pytest.approx(1e-3)


def test_demand_bounded_by_backlog_and_threads():
    t = Task("t", "big", n_threads=2)
    t.add_work(5e6)
    assert t.demand_cycles(1e6) == pytest.approx(2e6)  # thread ceiling
    assert t.demand_cycles(1e7) == pytest.approx(5e6)  # backlog ceiling


def test_migrate_tracks_cluster_and_count():
    t = Task("t", "big")
    t.migrate("little")
    assert t.cluster == "little"
    assert t.migrations == 1
    t.migrate("little")  # no-op
    assert t.migrations == 1


def test_accounting_split_by_cluster():
    t = Task("t", "big", unbounded=True)
    t.consume(1e6, 0.01, 1e9, 1.0)
    t.migrate("little")
    t.consume(2e6, 0.01, 1e9, 1.0)
    assert t.cycles_by_cluster == {"big": pytest.approx(1e6), "little": pytest.approx(2e6)}


def test_exit_stops_everything():
    t = Task("t", "big")
    t.add_work(1e6)
    t.exit()
    assert t.state is TaskState.EXITED
    assert not t.runnable
    with pytest.raises(SchedulingError):
        t.add_work(1e6)
    with pytest.raises(SchedulingError):
        t.migrate("little")


def test_consume_negative_rejected():
    t = Task("t", "big")
    with pytest.raises(SchedulingError):
        t.consume(-1.0, 0.01, 1e9, 1.0)
