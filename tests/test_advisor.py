"""Developer advisor."""

import pytest

from repro.apps.catalog import make_app
from repro.core.advisor import advise, render_advice
from repro.errors import AnalysisError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.snapdragon810 import nexus6p


def profile(app_name, duration=60.0, seed=3):
    app = make_app(app_name)
    sim = Simulation(nexus6p(), [app], kernel_config=KernelConfig(), seed=seed)
    sim.run(duration)
    return sim


@pytest.fixture(scope="module")
def game_profile():
    return profile("paperio")


@pytest.fixture(scope="module")
def call_profile():
    return profile("hangouts")


def test_heavy_game_will_throttle(game_profile):
    report = advise(game_profile, "paperio", t_limit_c=40.0)
    assert report.will_throttle
    assert report.headroom_w < 0.0
    assert 0.0 < report.demand_scale < 1.0
    assert report.sustainable_fps_estimate is not None
    assert report.sustainable_fps_estimate < 40.0


def test_light_app_fits_generous_limit(call_profile):
    report = advise(call_profile, "hangouts", t_limit_c=50.0)
    assert not report.will_throttle
    assert report.headroom_w > 0.0
    assert report.demand_scale == 1.0


def test_verdict_depends_on_limit(game_profile):
    tight = advise(game_profile, "paperio", t_limit_c=38.0)
    loose = advise(game_profile, "paperio", t_limit_c=60.0)
    assert tight.will_throttle
    assert not loose.will_throttle
    assert tight.safe_budget_w < loose.safe_budget_w


def test_steady_temp_reported(game_profile):
    report = advise(game_profile, "paperio", t_limit_c=40.0)
    assert report.steady_temp_c is not None
    # A sustained game pushes the phone's package well past 40 degC.
    assert report.steady_temp_c > 42.0


def test_render_advice_mentions_verdict(game_profile):
    text = render_advice(advise(game_profile, "paperio", t_limit_c=40.0))
    assert "WILL be throttled" in text
    assert "paperio" in text
    ok = render_advice(advise(game_profile, "paperio", t_limit_c=60.0))
    assert "no throttling expected" in ok


def test_short_run_rejected():
    app = make_app("paperio")
    sim = Simulation(nexus6p(), [app], kernel_config=KernelConfig(), seed=1)
    sim.run(2.0)
    with pytest.raises(AnalysisError):
        advise(sim, "paperio", t_limit_c=40.0)
