"""Temperature sensor error model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.rng import RngRegistry
from repro.thermal.model import ThermalModel
from repro.thermal.rc_network import (
    AMBIENT,
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)
from repro.thermal.sensors import SensorSpec, TemperatureSensor


@pytest.fixture()
def model():
    spec = ThermalNetworkSpec(
        nodes=(ThermalNodeSpec("chip", 1.0),),
        links=(ThermalLinkSpec("chip", AMBIENT, 0.5),),
        power_split={"cpu": {"chip": 1.0}},
    )
    return ThermalModel(spec, 0.01, ambient_k=313.15)  # 40 degC


def make_sensor(model, **kwargs):
    spec = SensorSpec("tmu", node="chip", **kwargs)
    return TemperatureSensor(spec, model, RngRegistry(0).stream("s"))


def test_noiseless_sensor_reads_truth(model):
    sensor = make_sensor(model, noise_std_c=0.0, quantization_c=0.0)
    assert sensor.read_c() == pytest.approx(40.0)


def test_quantization(model):
    sensor = make_sensor(model, noise_std_c=0.0, quantization_c=1.0)
    assert sensor.read_c() == pytest.approx(40.0)
    model.set_state({"chip": 313.15 + 0.4})
    assert sensor.read_c() == pytest.approx(40.0)  # rounds down to whole degree


def test_offset(model):
    sensor = make_sensor(model, noise_std_c=0.0, quantization_c=0.0, offset_c=2.0)
    assert sensor.read_c() == pytest.approx(42.0)


def test_noise_statistics(model):
    sensor = make_sensor(model, noise_std_c=0.5, quantization_c=0.0)
    readings = np.array([sensor.read_c() for _ in range(2000)])
    assert readings.mean() == pytest.approx(40.0, abs=0.05)
    assert readings.std() == pytest.approx(0.5, abs=0.05)


def test_millicelsius(model):
    sensor = make_sensor(model, noise_std_c=0.0, quantization_c=0.0)
    assert sensor.read_millicelsius() == 40000


def test_bad_placement_fails_fast(model):
    spec = SensorSpec("tmu", node="nowhere")
    with pytest.raises(SimulationError):
        TemperatureSensor(spec, model, RngRegistry(0).stream("s"))


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        SensorSpec("s", node="chip", noise_std_c=-1.0)
    with pytest.raises(ConfigurationError):
        SensorSpec("s", node="chip", quantization_c=-0.1)
