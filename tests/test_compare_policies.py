"""compare_policies: the proposed governor protects foreground FPS.

Section IV.B's headline claim, as a regression test: on the phone —
where the stock trip governor throttles indiscriminately — the
application-aware governor must never lose more foreground FPS than
stock does, while still managing temperature.  Plus seed determinism:
the scenario runner is a pure function of its spec.
"""

import pytest

from repro.sim.experiment import AppSpec, Scenario, compare_policies

APPS = (AppSpec.catalog("stickman"), AppSpec.batch("bml"))
DURATION_S = 40.0


@pytest.fixture(scope="module")
def nexus_results():
    return compare_policies("nexus6p", APPS, duration_s=DURATION_S, seed=3)


def test_proposed_never_loses_more_fps_than_stock(nexus_results):
    stock = nexus_results["stock"].fps["stickman"]
    proposed = nexus_results["proposed"].fps["stickman"]
    unmanaged = nexus_results["none"].fps["stickman"]
    assert proposed >= stock
    # And it is management, not absence of it: the stock governor visibly
    # throttles the game while the proposed one stays near unmanaged FPS.
    assert stock < unmanaged - 5.0
    assert proposed >= unmanaged - 2.0


def test_proposed_still_manages_temperature(nexus_results):
    # Within a degree-ish of the throttling governor, far below unmanaged.
    assert (nexus_results["proposed"].peak_temp_c
            < nexus_results["none"].peak_temp_c - 1.0)


def test_same_seed_reproduces_byte_identical_results():
    def run(seed):
        return Scenario(
            platform="nexus6p", apps=APPS, policy="proposed",
            duration_s=DURATION_S, seed=seed,
        ).run()

    first, second = run(3), run(3)
    assert first == second
    assert first.to_dict() == second.to_dict()  # wire format too
    assert run(7).to_dict() != first.to_dict()  # the seed is actually used
