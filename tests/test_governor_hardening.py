"""Hardened governor: watchdog, bounded retry and failsafe hysteresis."""

import pytest

from repro.apps.mibench import basicmath_large
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.errors import SysfsError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3
from repro.thermal.faults import StuckSensor


def make_governed_sim(config):
    sim = Simulation(
        odroid_xu3(), [basicmath_large()],
        kernel_config=KernelConfig(), seed=1,
    )
    governor = ApplicationAwareGovernor.for_simulation(sim, config)
    governor.install(sim.kernel)
    return sim, governor


def stick_sensor(sim):
    zone = sim.kernel.zones["soc_big"]
    stuck = StuckSensor(zone.sensor)
    zone.sensor = stuck
    stuck.trigger()
    return zone, stuck


def test_stuck_sensor_detected_within_one_staleness_window():
    config = GovernorConfig(t_limit_c=75.0, horizon_s=60.0,
                            sensor_staleness_s=1.0)
    sim, governor = make_governed_sim(config)
    sim.run(2.0)
    assert not [d for d in governor.detections if d.kind == "stale"]
    stick_sensor(sim)
    frozen_at = sim.clock.now
    sim.run(config.sensor_staleness_s + 3 * config.period_s)
    stale = [d for d in governor.detections if d.kind == "stale"]
    assert stale, "frozen sensor never flagged"
    deadline = frozen_at + config.sensor_staleness_s + 2 * config.period_s
    assert stale[0].time_s <= deadline + 1e-9
    # The held value, not the frozen raw, keeps feeding the analysis.
    assert governor.predictions[-1].time_s > frozen_at


def test_eio_gives_up_after_configured_attempts():
    config = GovernorConfig(t_limit_c=75.0, horizon_s=60.0,
                            eio_retries=2, eio_backoff_s=30.0)
    sim, governor = make_governed_sim(config)
    sim.run(1.0)
    held_before = governor._last_good_temp_c
    assert held_before is not None
    reads = []

    def hook(path):
        if path == governor._temp_path:
            reads.append(path)
            raise SysfsError(f"[Errno 5] I/O error: {path}")

    remove = sim.kernel.fs.add_read_fault(hook)
    try:
        sim.run(1.0)
    finally:
        remove()
    # One failing period: initial read + eio_retries more, then the huge
    # backoff suppresses further attempts for the rest of the run.
    assert len(reads) == config.eio_retries + 1
    eio = [d for d in governor.detections if d.kind == "eio"]
    assert eio and f"after {config.eio_retries + 1} attempts" in eio[0].detail
    assert governor._last_good_temp_c == held_before  # held, not poisoned


def test_brief_fault_does_not_trip_failsafe():
    config = GovernorConfig(t_limit_c=75.0, horizon_s=60.0,
                            failsafe_after_s=2.0)
    sim, governor = make_governed_sim(config)
    sim.run(1.0)
    zone, stuck = stick_sensor(sim)
    sim.run(1.0)  # shorter than failsafe_after_s
    stuck.clear()
    zone.sensor = stuck.inner
    sim.run(3.0)
    assert governor.failsafe_events == []
    assert governor.failsafe_s == 0.0


def test_failsafe_entry_and_exit_are_hysteretic():
    config = GovernorConfig(t_limit_c=75.0, horizon_s=60.0,
                            failsafe_after_s=1.0, failsafe_exit_s=2.0)
    sim, governor = make_governed_sim(config)
    sim.run(1.0)
    zone, stuck = stick_sensor(sim)
    # Staleness window (1 s) + failsafe_after_s + slack for tick alignment.
    sim.run(2.5)
    actions = [e.action for e in governor.failsafe_events]
    assert actions == ["enter"], "persistent fault must enter failsafe once"
    # Recovery: healthy readings resume, but exit waits failsafe_exit_s.
    stuck.clear()
    zone.sensor = stuck.inner
    recovered_at = sim.clock.now
    sim.run(config.failsafe_exit_s / 2)
    assert [e.action for e in governor.failsafe_events] == ["enter"]
    sim.run(config.failsafe_exit_s + 3 * config.period_s)
    actions = [e.action for e in governor.failsafe_events]
    assert actions == ["enter", "exit"], "must exit exactly once, no flapping"
    exit_event = governor.failsafe_events[-1]
    assert exit_event.time_s >= recovered_at + config.failsafe_exit_s - 1e-9
    # Healthy tail: no re-entry.
    sim.run(2.0)
    assert [e.action for e in governor.failsafe_events] == ["enter", "exit"]
    assert governor.failsafe_s == pytest.approx(
        exit_event.time_s - governor.failsafe_events[0].time_s,
        abs=2 * config.period_s,
    )


def test_sustained_breach_escalates_to_failsafe():
    # A limit below the die's resting temperature: every trusted reading
    # is a breach, which must escalate on the fast breach deadline.
    config = GovernorConfig(t_limit_c=35.0, horizon_s=60.0,
                            breach_after_s=0.5, failsafe_after_s=3.0)
    sim, governor = make_governed_sim(config)
    sim.run(2.0)
    breaches = [d for d in governor.detections if d.kind == "breach"]
    assert breaches, "readings at/above the limit must be flagged"
    enters = [e for e in governor.failsafe_events if e.action == "enter"]
    assert enters and enters[0].reason == "breach"
    assert enters[0].time_s <= (
        breaches[0].time_s + config.breach_after_s + 2 * config.period_s
    )


def test_stall_detection():
    config = GovernorConfig(t_limit_c=75.0, horizon_s=60.0)
    sim, governor = make_governed_sim(config)
    sim.run(0.5)
    # Simulate a missed stretch of control ticks by invoking run() with a
    # gap, as the stall injector's wrapped daemon produces.
    governor.run(sim.clock.now + 10 * config.period_s)
    stalls = [d for d in governor.detections if d.kind == "stall"]
    assert stalls and "no control tick" in stalls[0].detail
