"""Simulation engine wiring and recording."""

import pytest

from repro.apps.frames import FrameApp, FrameWorkload
from repro.apps.mibench import basicmath_large
from repro.errors import ConfigurationError, SimulationError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3
from repro.soc.snapdragon810 import nexus6p


def test_run_advances_time(odroid_sim):
    odroid_sim.run(1.0)
    assert odroid_sim.now_s == pytest.approx(1.0)


def test_run_duration_validation(odroid_sim):
    with pytest.raises(ConfigurationError):
        odroid_sim.run(0.0)


def test_until_predicate_stops_early(odroid_sim):
    odroid_sim.run(10.0, until=lambda sim: sim.now_s >= 0.5)
    assert odroid_sim.now_s < 1.0


def test_duplicate_app_names_rejected():
    with pytest.raises(ConfigurationError):
        Simulation(
            odroid_xu3(),
            [basicmath_large(), basicmath_large()],
            kernel_config=KernelConfig(),
        )


def test_app_lookup(odroid_sim):
    with pytest.raises(SimulationError):
        odroid_sim.app("ghost")


def test_traces_recorded_at_period(odroid_sim):
    odroid_sim.run(2.0)
    times, _ = odroid_sim.traces.series("temp.big")
    assert len(times) == pytest.approx(20, abs=2)


def test_trace_channels_exist(odroid_sim):
    odroid_sim.run(0.5)
    for name in (
        "temp.big", "temp.max", "freq.a15", "freq.gpu",
        "power.a15", "power.total", "busy.a15", "busy.gpu",
    ):
        assert name in odroid_sim.traces


def test_board_power_included_in_total(odroid_sim):
    odroid_sim.run(0.5)
    _, total = odroid_sim.traces.series("power.total")
    _, rails = odroid_sim.traces.series("power.a15")
    assert total[0] > rails[0]
    assert "power.board" in odroid_sim.traces


def test_energy_meter_runs(odroid_sim):
    odroid_sim.run(1.0)
    assert odroid_sim.energy.total_energy_j() > 0.0
    assert odroid_sim.energy.elapsed_s == pytest.approx(1.0)


def test_daq_optional():
    sim = Simulation(odroid_xu3(), kernel_config=KernelConfig(), seed=1)
    assert sim.daq is None
    sim2 = Simulation(
        odroid_xu3(), kernel_config=KernelConfig(), seed=1, enable_daq=True
    )
    sim2.run(1.0)
    times, _ = sim2.daq.samples()
    assert times.size == pytest.approx(1000, abs=5)


def test_ambient_override():
    sim = Simulation(
        odroid_xu3(), kernel_config=KernelConfig(), ambient_c=10.0,
        initial_temp_c=10.0, seed=1,
    )
    sim.run(1.0)
    assert sim.thermal.ambient_k == pytest.approx(283.15)
    assert sim.thermal.temperature_k("big") == pytest.approx(283.15, abs=0.5)


def test_determinism_same_seed():
    def run_once():
        app = FrameApp("g", FrameWorkload(5e6, 8e6, sigma=0.3))
        sim = Simulation(odroid_xu3(), [app], kernel_config=KernelConfig(), seed=7)
        sim.run(5.0)
        return app.fps.frame_count, sim.thermal.temperature_k("big")

    assert run_once() == run_once()


def test_different_seeds_diverge():
    def run_once(seed):
        app = FrameApp("g", FrameWorkload(5e6, 8e6, sigma=0.3))
        sim = Simulation(odroid_xu3(), [app], kernel_config=KernelConfig(), seed=seed)
        sim.run(5.0)
        return app.fps.frame_count

    assert run_once(1) != run_once(2)


def test_temperature_rises_under_load():
    bml = basicmath_large()
    sim = Simulation(odroid_xu3(), [bml], kernel_config=KernelConfig(), seed=1)
    t0 = sim.thermal.temperature_k("big")
    sim.run(20.0)
    assert sim.thermal.temperature_k("big") > t0 + 2.0


def test_idle_nexus_stays_in_idle_band():
    # The Nexus model starts at 35 degC, close to its idle steady state
    # (display/board power keeps it above the 25 degC ambient).
    sim = Simulation(nexus6p(), kernel_config=KernelConfig(), seed=1)
    sim.run(20.0)
    temp = sim.thermal.temperature_k("soc")
    assert 306.0 < temp < 313.0  # 33..40 degC: warm but not gaming-hot


def test_completion_dispatch_roundtrip():
    app = FrameApp("g", FrameWorkload(2e6, 2e6, target_fps=30.0, sigma=0.0))
    sim = Simulation(odroid_xu3(), [app], kernel_config=KernelConfig(), seed=1)
    sim.run(3.0)
    assert app.fps.frame_count > 30  # frames flow through CPU+GPU stages


def test_chunked_runs_do_not_drift():
    """Many short run() calls must land on exactly the same tick count —
    and the same recorded traces — as one uninterrupted run."""
    import numpy as np

    one_shot = Simulation(odroid_xu3(), kernel_config=KernelConfig(), seed=5)
    one_shot.run(3.0)
    chunked = Simulation(odroid_xu3(), kernel_config=KernelConfig(), seed=5)
    for _ in range(30):
        chunked.run(0.1)
    assert chunked.clock.tick == one_shot.clock.tick == 300
    for name in one_shot.traces.names():
        times_a, values_a = one_shot.traces.series(name)
        times_b, values_b = chunked.traces.series(name)
        assert np.array_equal(times_a, times_b)
        assert np.array_equal(values_a, values_b)
