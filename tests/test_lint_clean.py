"""The shipped tree must lint clean — this is the linter's own tier-1 gate.

If this test fails after an edit, either fix the reported finding, add a
suppression comment with a reason, or (for deliberate violations) record
it in ``src/repro/lint/baseline.json`` via ``repro lint --update-baseline``.
"""

import shutil

import pytest

from repro.cli import main
from repro.lint import DEFAULT_BASELINE, package_root, run_lint


@pytest.fixture(scope="module")
def report():
    return run_lint()


def test_shipped_tree_has_no_new_findings(report):
    assert not report.new, "\n" + report.render_text()


def test_shipped_baseline_has_no_stale_entries(report):
    assert not report.stale_baseline, "\n" + report.render_text()


def test_shipped_tree_is_ok(report):
    assert report.ok
    assert report.files_scanned > 50  # the whole package, not a subset


def test_every_rule_family_ran(report):
    families = {rule_id[:2] for rule_id in report.rules_run}
    assert families == {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"}


def test_cli_exit_zero_on_shipped_tree(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 new finding(s)" in out


def test_cli_exit_nonzero_on_seeded_violation(tmp_path, capsys):
    """The ISSUE acceptance check: introduce a raw 273.15 into a copy of
    ``core/governor.py`` and the lint run must fail."""
    root = tmp_path / "repro"
    shutil.copytree(package_root(), root)
    governor = root / "core" / "governor.py"
    governor.write_text(
        governor.read_text()
        + "\n\ndef _bad_probe(temp_k: float) -> float:\n"
        + "    return temp_k - 273.15\n"
    )
    assert main(["lint", str(root), "--baseline", str(DEFAULT_BASELINE)]) != 0
    out = capsys.readouterr().out
    assert "R101" in out
    assert "core/governor.py" in out


def test_cli_json_output_is_structured(capsys):
    import json

    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["ok"] is True
    assert payload["summary"]["new"] == 0
    from repro.lint import all_rules

    assert payload["summary"]["rules"] == [r.id for r in all_rules()]
