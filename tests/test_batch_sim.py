"""Stacked-scenario stepping: byte-identity against independent runs.

The whole contract of :class:`repro.sim.batch.BatchSimulation` is that it
is an execution strategy, not a model change: every trace channel, the
deterministic metrics snapshot and the DAQ capture must match running each
member alone bit for bit — whatever mix of platforms, policies, ambients
and thermal governors is stacked (docs/ENGINE.md).
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernel.kernel import KernelConfig, ThermalConfig
from repro.sim.batch import BatchSimulation
from repro.sim.engine import Simulation
from repro.sim.experiment import AppSpec, Scenario, run_scenarios_batched
from repro.soc import registry


def _sim(platform="odroid-xu3", seed=1, **kwargs):
    kwargs.setdefault("enable_daq", True)
    return Simulation(
        registry.build(platform), [AppSpec.batch("bml").build()],
        seed=seed, **kwargs,
    )


def _fingerprint(sim) -> bytes:
    parts = []
    for name in sorted(sim.traces.names()):
        times, values = sim.traces.series(name)
        parts.append(name.encode() + times.tobytes() + values.tobytes())
    parts.append(
        json.dumps(
            sim.metrics.snapshot(as_of_s=sim.clock.now, include_wall_clock=False),
            sort_keys=True,
        ).encode()
    )
    if sim.daq is not None:
        times, values = sim.daq.samples()
        parts.append(times.tobytes() + values.tobytes())
    return b"".join(parts)


def _assert_identical(build, duration_s, n=3, fast=True, run_each=None):
    """Run ``n`` sims alone and stacked; compare their full fingerprints."""
    alone = [build(i) for i in range(n)]
    stacked = [build(i) for i in range(n)]
    if run_each is None:
        for sim in alone:
            sim.run(duration_s)
        batch = BatchSimulation(stacked, fast=fast)
        batch.run(duration_s)
    else:
        for sim, d in zip(alone, run_each):
            sim.run(d)
        batch = BatchSimulation(stacked, fast=fast)
        batch.run_each(run_each)
    for i, (a, b) in enumerate(zip(alone, stacked)):
        assert _fingerprint(a) == _fingerprint(b), f"member {i} diverged"
    return batch


def test_steady_batch_is_byte_identical_and_fast():
    batch = _assert_identical(lambda i: _sim(seed=i), duration_s=12.0, n=4)
    assert batch.stats["fast_ticks"] > 0
    assert batch.stats["promotions"] > 0


@pytest.mark.parametrize("platform", registry.platform_names())
def test_every_platform_stock_batch_identity(platform):
    def build(i):
        scenario = Scenario(
            platform=platform, apps=(AppSpec.batch("bml"),),
            policy="stock", duration_s=6.0, seed=i + 1,
        )
        return scenario._build().sim

    _assert_identical(build, duration_s=6.0, n=2)


def test_proposed_policy_batch_identity():
    # The proposed governor installs a kernel daemon, so these members can
    # never promote — the scalar lock-step path must still match exactly.
    def build(i):
        scenario = Scenario(
            platform="odroid-xu3", apps=(AppSpec.batch("bml"),),
            policy="proposed", duration_s=6.0, seed=i, t_limit_c=60.0,
        )
        return scenario._build().sim

    batch = _assert_identical(build, duration_s=6.0, n=2)
    assert batch.stats["promotions"] == 0


def test_throttling_demotes_and_stays_identical():
    # Hot ambients under an IPA zone: governor actions (frequency caps,
    # cooling-state changes) must demote members out of the fast path at
    # exactly the right tick.
    config = KernelConfig(thermal=ThermalConfig(
        kind="ipa", sensor="soc_big", cooled=("a15", "a7"),
        switch_on_temp_c=55.0, control_temp_c=60.0,
    ))

    def build(i):
        return _sim(seed=i, kernel_config=config, ambient_c=56.0 + 2.0 * i,
                    initial_temp_c=55.0)

    batch = _assert_identical(build, duration_s=15.0, n=4)
    assert batch.stats["demotions"] > 0
    assert batch.stats["fast_ticks"] > 0


def test_mixed_platform_batch_identity():
    platforms = ("odroid-xu3", "pixel-xl", "nexus6p")

    def build(i):
        return _sim(platform=platforms[i], seed=i)

    _assert_identical(build, duration_s=5.0, n=3)


def test_fast_disabled_matches_too():
    batch = _assert_identical(
        lambda i: _sim(seed=i), duration_s=4.0, n=2, fast=False)
    assert batch.stats["fast_ticks"] == 0


def test_run_each_and_continuation():
    # Different durations per member, plus a second run() continuing from
    # mid-flight state, must equal single uninterrupted runs.
    alone = [_sim(seed=i) for i in range(3)]
    durations = [7.0, 4.0, 9.0]
    for sim, d in zip(alone, durations):
        sim.run(d)
    stacked = [_sim(seed=i) for i in range(3)]
    batch = BatchSimulation(stacked)
    batch.run_each([3.0, 4.0, 3.0])
    batch.run_each([4.0, 1e-9, 6.0])  # rounds up to 0 and 1-tick floors
    # member 1 already done: give it no further ticks via a tiny duration
    for a, b in zip(alone, stacked):
        assert np.array_equal(
            a.traces.series("temp.max")[1], b.traces.series("temp.max")[1]
        )
        assert _fingerprint(a) == _fingerprint(b)


def test_batch_profile_covers_phases():
    sims = [_sim(seed=i) for i in range(2)]
    batch = BatchSimulation(sims, profile=True)
    batch.run(3.0)
    rendered = batch.profiler.report().render()
    for phase in ("kernel", "power_assemble", "thermal_exact", "batch_sync"):
        assert phase in rendered


def test_batch_validation_errors():
    with pytest.raises(ConfigurationError):
        BatchSimulation([])
    fast = _sim(seed=0)
    slow = Simulation(registry.build("odroid-xu3"), dt_s=0.02)
    with pytest.raises(ConfigurationError):
        BatchSimulation([fast, slow])
    a, b = _sim(seed=0), _sim(seed=1)
    a.run(1.0)
    with pytest.raises(ConfigurationError):
        BatchSimulation([a, b])
    with pytest.raises(ConfigurationError):
        BatchSimulation([_sim(seed=0), _sim(seed=1)]).run_each([1.0])


def test_run_scenarios_batched_matches_run_instrumented():
    scenarios = [
        Scenario(platform="odroid-xu3", apps=(AppSpec.batch("bml"),),
                 policy="stock", duration_s=8.0, seed=seed)
        for seed in (1, 2)
    ]
    batched = run_scenarios_batched(scenarios)
    for scenario, (result, snapshot) in zip(scenarios, batched):
        ref_result, ref_snapshot = scenario.run_instrumented()
        assert result == ref_result
        assert json.dumps(snapshot, sort_keys=True) == json.dumps(
            ref_snapshot, sort_keys=True)
    assert run_scenarios_batched([]) == []
