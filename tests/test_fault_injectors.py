"""FaultController: windows open/close on schedule, injectors bite."""

import pytest

from repro.apps.mibench import basicmath_large
from repro.errors import SysfsError
from repro.faults import FaultController, FaultEvent, FaultPlan
from repro.faults.sensors import DroppingSensor, SpikySensor, StuckSensor
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.sim.experiment import AppSpec, Scenario
from repro.soc import registry as platform_registry
from repro.soc.exynos5422 import odroid_xu3


def make_sim(seed=1, stock_thermal=False):
    # Cooling devices are only bound under the stock thermal wiring.
    config = KernelConfig(
        thermal=platform_registry.get("odroid-xu3").stock_thermal_config()
    ) if stock_thermal else KernelConfig()
    return Simulation(
        odroid_xu3(), [basicmath_large()], kernel_config=config, seed=seed,
    )


def run_plan(sim, plan, until_s):
    controller = FaultController(plan, sim)
    controller.attach()
    sim.run(until_s)
    return controller


@pytest.mark.parametrize(
    "kind, wrapper",
    [
        ("sensor_stuck", StuckSensor),
        ("sensor_spike", SpikySensor),
        ("sensor_dropout", DroppingSensor),
    ],
)
def test_sensor_window_wraps_and_restores(kind, wrapper):
    sim = make_sim()
    zone = sim.kernel.zones["soc_big"]
    original = zone.sensor
    plan = FaultPlan("w", (
        FaultEvent(kind, start_s=1.0, end_s=2.0, target="soc_big",
                   probability=0.5),
    ))
    controller = FaultController(plan, sim)
    controller.attach()
    sim.run(1.5)
    assert isinstance(zone.sensor, wrapper)
    assert controller.injected == [(pytest.approx(1.0, abs=0.02), kind)]
    sim.run(1.0)  # now past end_s: the original sensor is back
    assert zone.sensor is original


def test_sensor_target_must_be_a_zone():
    sim = make_sim()
    plan = FaultPlan("bad", (
        FaultEvent("sensor_stuck", start_s=0.0, end_s=1.0, target="nope"),
    ))
    with pytest.raises(Exception, match="no thermal zone"):
        FaultController(plan, sim)


def test_sysfs_eio_hits_userspace_reads_only_inside_window():
    sim = make_sim()
    path = "/sys/class/thermal/thermal_zone0/temp"
    plan = FaultPlan("eio", (
        FaultEvent("sysfs_eio", start_s=1.0, end_s=2.0, probability=1.0),
    ))
    controller = FaultController(plan, sim)
    controller.attach()
    sim.run(0.5)
    sim.kernel.fs.read(path)  # before the window: fine
    sim.run(1.0)
    with pytest.raises(SysfsError, match="I/O error"):
        sim.kernel.fs.read(path)
    # Paths outside the prefix are untouched even inside the window.
    sim.kernel.fs.read("/sys/devices/system/cpu/cpufreq/policy0/scaling_cur_freq")
    sim.run(1.0)
    sim.kernel.fs.read(path)  # window closed: fine again


def test_governor_stall_is_inert_without_the_daemon():
    sim = make_sim()  # no app-aware governor installed
    plan = FaultPlan("stall", (
        FaultEvent("governor_stall", start_s=0.5, end_s=1.0),
    ))
    controller = run_plan(sim, plan, 2.0)
    assert controller.injected == []  # armed as a no-op, recorded as none


def test_governor_stall_suppresses_daemon_ticks():
    sim = make_sim()
    ticks = []
    sim.kernel.register_daemon("victim", 0.1, ticks.append)
    plan = FaultPlan("stall", (
        FaultEvent("governor_stall", start_s=1.0, end_s=2.0, target="victim"),
    ))
    controller = run_plan(sim, plan, 3.0)
    assert len(controller.injected) == 1
    gap = [t for t in ticks if 1.05 <= t <= 1.95]
    assert not gap, f"daemon ticked inside the stall window: {gap}"
    assert any(t < 1.0 for t in ticks) and any(t > 2.0 for t in ticks)


def test_cooling_stuck_freezes_devices():
    sim = make_sim(stock_thermal=True)
    plan = FaultPlan("stuck", (
        FaultEvent("cooling_stuck", start_s=0.5, end_s=1.0),
    ))
    controller = FaultController(plan, sim)
    controller.attach()
    sim.run(0.7)
    devices = sim.kernel.cooling_devices
    assert devices and all(d.frozen for d in devices)
    sim.run(0.5)
    assert not any(d.frozen for d in devices)


def test_fan_stop_scales_ambient_and_restores_on_finalize():
    sim = make_sim()
    plan = FaultPlan("fan", (
        FaultEvent("fan_stop", start_s=0.5, end_s=1.0e6, scale=0.25),
    ))
    controller = FaultController(plan, sim)
    controller.attach()
    sim.run(1.0)
    assert sim.thermal.ambient_conductance_scale == pytest.approx(0.25)
    controller.finalize(sim.clock.now)  # open window closed at run end
    assert sim.thermal.ambient_conductance_scale == pytest.approx(1.0)


def test_fan_stop_makes_the_die_hotter():
    def peak(faults):
        scenario = Scenario(
            platform="odroid-xu3",
            apps=(AppSpec.catalog("stickman"),),
            policy="stock", duration_s=10.0, seed=3, faults=faults,
        )
        return scenario.run().peak_temp_c

    healthy = peak(None)
    broken = peak("fan-stop")
    assert broken > healthy + 0.5


def test_injection_metrics_and_summary():
    sim = make_sim(stock_thermal=True)
    plan = FaultPlan("two", (
        FaultEvent("fan_stop", start_s=0.5, end_s=1.0),
        FaultEvent("cooling_stuck", start_s=1.5, end_s=2.0),
    ))
    controller = run_plan(sim, plan, 3.0)
    summary = controller.summary()
    assert summary["fault_plan"] == "two"
    assert [kind for _t, kind in summary["faults_injected"]] == [
        "fan_stop", "cooling_stuck",
    ]
    counter = sim.metrics.counter(
        "repro_faults_injected_total",
        "Fault-plan events activated by the fault controller",
        labels={"kind": "fan_stop"},
    )
    assert counter.value == 1


def test_identical_seeds_inject_identically():
    def trace(seed):
        sim = make_sim(seed)
        plan = FaultPlan("rng", (
            FaultEvent("sensor_spike", start_s=0.5, end_s=1.0e6,
                       probability=0.3, magnitude_c=20.0),
        ))
        controller = run_plan(sim, plan, 3.0)
        zone = sim.kernel.zones["soc_big"]
        return controller.injected, zone.sensor.spikes_emitted

    assert trace(7) == trace(7)
    # A different seed draws a different spike pattern.
    assert trace(7)[1] != trace(8)[1]
