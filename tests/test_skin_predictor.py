"""Skin-temperature predictor identification and forecasting."""

import math

import numpy as np
import pytest

from repro.analysis.export import traces_to_csv  # noqa: F401  (sanity import)
from repro.apps.catalog import make_app
from repro.core.skin_predictor import SkinModel, fit_skin_model
from repro.errors import AnalysisError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.sim.trace import TraceRecorder
from repro.soc.snapdragon810 import nexus6p


def run_game(seed, duration=120.0):
    app = make_app("paperio")
    sim = Simulation(nexus6p(), [app], kernel_config=KernelConfig(), seed=seed)
    sim.run(duration)
    return sim


@pytest.fixture(scope="module")
def train_sim():
    return run_game(seed=3)


@pytest.fixture(scope="module")
def model(train_sim):
    return fit_skin_model(train_sim.traces)


def test_fit_quality(model):
    # The plant is linear, so the one-step fit must be excellent.
    assert model.rmse_c < 0.05
    assert 0.9 < model.a < 1.0  # contracting, slow pole


def test_one_step_prediction_tracks_training_data(train_sim, model):
    _, skin = train_sim.traces.series("temp.skin")
    _, pkg = train_sim.traces.series("temp.soc")
    _, power = train_sim.traces.series("power.total")
    # Predict 10 steps from a mid-run state and compare against the trace.
    # (Trace records every 0.1 s; the model step is 1 s.)
    i = 400
    predicted = model.forecast(skin[i], pkg[i], power[i], horizon_s=10.0)
    actual = skin[i + 100]
    assert predicted == pytest.approx(actual, abs=0.3)


def test_generalises_to_unseen_seed(model):
    other = run_game(seed=11)
    _, skin = other.traces.series("temp.skin")
    _, pkg = other.traces.series("temp.soc")
    _, power = other.traces.series("power.total")
    i = 300
    predicted = model.forecast(skin[i], pkg[i], power[i], horizon_s=20.0)
    assert predicted == pytest.approx(skin[i + 200], abs=0.6)


def test_steady_state_consistent_with_step(model):
    t_ss = model.steady_state_c(45.0, 3.5)
    assert model.step(t_ss, 45.0, 3.5) == pytest.approx(t_ss, abs=1e-9)


def test_time_to_limit(model):
    t0, pkg, power = 33.0, 50.0, 4.5
    t_ss = model.steady_state_c(pkg, power)
    limit = (t0 + t_ss) / 2.0
    crossing = model.time_to_limit_s(t0, pkg, power, limit)
    assert 0.0 < crossing < math.inf
    # Verify by direct stepping.
    value, elapsed = t0, 0.0
    while value < limit:
        value = model.step(value, pkg, power)
        elapsed += model.dt_s
    assert crossing == pytest.approx(elapsed, abs=model.dt_s)


def test_time_to_limit_inf_when_safe(model):
    assert model.time_to_limit_s(30.0, 32.0, 1.0, 60.0) == math.inf


def test_time_to_limit_zero_when_already_over(model):
    assert model.time_to_limit_s(50.0, 50.0, 3.0, 45.0) == 0.0


def test_fit_validation():
    with pytest.raises(AnalysisError):
        fit_skin_model(TraceRecorder())
    tr = TraceRecorder()
    for i in range(20):
        tr.record("temp.skin", i * 0.1, 30.0)
        tr.record("temp.soc", i * 0.1, 35.0)
        tr.record("power.total", i * 0.1, 2.0)
    with pytest.raises(AnalysisError):
        fit_skin_model(tr, dt_s=1.0)  # only 2 s of data


def test_non_contracting_model_rejected():
    model = SkinModel(a=1.1, b=0.0, c=0.0, d=0.0, dt_s=1.0, rmse_c=0.0)
    with pytest.raises(AnalysisError):
        model.steady_state_c(40.0, 2.0)
