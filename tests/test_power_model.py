"""Dynamic + leakage power model."""

import math

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.soc.components import LeakageParams
from repro.soc.power_model import (
    ComponentActivity,
    SocPowerModel,
    dynamic_power_w,
    leakage_power_w,
)
from repro.soc.exynos5422 import odroid_xu3


@pytest.fixture(scope="module")
def model():
    platform = odroid_xu3()
    return platform.power_model(), platform


def test_dynamic_power_formula():
    # Ceff * V^2 * f * busy
    assert dynamic_power_w(1e-10, 1.0, 1e9, 2.0) == pytest.approx(0.2)


def test_dynamic_power_zero_when_idle():
    assert dynamic_power_w(1e-10, 1.2, 2e9, 0.0) == 0.0


def test_dynamic_power_negative_busy_rejected():
    with pytest.raises(SimulationError):
        dynamic_power_w(1e-10, 1.0, 1e9, -0.1)


def test_leakage_increases_with_temperature():
    params = LeakageParams(kappa_w_per_k2=1e-3, beta_k=1650.0)
    cold = leakage_power_w(params, 300.0, 1.0)
    hot = leakage_power_w(params, 360.0, 1.0)
    assert hot > cold


def test_leakage_matches_closed_form():
    params = LeakageParams(kappa_w_per_k2=2e-3, beta_k=1500.0, v_ref=1.0)
    t, v = 350.0, 1.2
    expected = 2e-3 * t * t * math.exp(-1500.0 / t) * 1.2
    assert leakage_power_w(params, t, v) == pytest.approx(expected)


def test_leakage_scales_with_voltage():
    params = LeakageParams(kappa_w_per_k2=1e-3, beta_k=1650.0)
    assert leakage_power_w(params, 330.0, 1.2) == pytest.approx(
        1.2 * leakage_power_w(params, 330.0, 1.0)
    )


def test_leakage_rejects_nonphysical_temperature():
    params = LeakageParams(kappa_w_per_k2=1e-3, beta_k=1650.0)
    with pytest.raises(SimulationError):
        leakage_power_w(params, -10.0, 1.0)


def test_cluster_power_monotone_in_frequency(model):
    pm, plat = model
    freqs = plat.big_cluster.opps.frequencies_hz()
    powers = [
        pm.cluster_power("a15", ComponentActivity(f, 2.0, 330.0)).total_w
        for f in freqs
    ]
    assert all(b > a for a, b in zip(powers, powers[1:]))


def test_cluster_power_monotone_in_busy(model):
    pm, _ = model
    low = pm.cluster_power("a15", ComponentActivity(1e9, 1.0, 330.0)).total_w
    high = pm.cluster_power("a15", ComponentActivity(1e9, 3.0, 330.0)).total_w
    assert high > low


def test_cluster_power_off_is_zero(model):
    pm, _ = model
    sample = pm.cluster_power(
        "a15", ComponentActivity(1e9, 1.0, 330.0, powered=False)
    )
    assert sample.total_w == 0.0


def test_cluster_busy_cannot_exceed_cores(model):
    pm, _ = model
    with pytest.raises(SimulationError):
        pm.cluster_power("a15", ComponentActivity(1e9, 4.5, 330.0))


def test_unknown_cluster_rejected(model):
    pm, _ = model
    with pytest.raises(SimulationError):
        pm.cluster_power("a72", ComponentActivity(1e9, 1.0, 330.0))


def test_gpu_busy_cannot_exceed_one(model):
    pm, _ = model
    with pytest.raises(SimulationError):
        pm.gpu_power(ComponentActivity(600e6, 1.5, 330.0))


def test_memory_activity_bounds(model):
    pm, _ = model
    with pytest.raises(SimulationError):
        pm.memory_power(1.5, 330.0)
    assert pm.memory_power(0.0, 330.0).total_w > 0.0  # base power


def test_rail_powers_cover_all_rails(model):
    pm, plat = model
    activity = {
        c.name: ComponentActivity(c.opps.min_freq_hz, 0.0, 320.0)
        for c in plat.clusters
    }
    gpu_act = ComponentActivity(plat.gpu.opps.min_freq_hz, 0.0, 320.0)
    rails = pm.rail_powers(activity, gpu_act, 0.0, 320.0)
    assert set(rails) == {"a15", "a7", "gpu", "mem"}
    assert all(sample.total_w >= 0.0 for sample in rails.values())


def test_rail_powers_missing_cluster_activity(model):
    pm, plat = model
    gpu_act = ComponentActivity(plat.gpu.opps.min_freq_hz, 0.0, 320.0)
    with pytest.raises(SimulationError):
        pm.rail_powers({}, gpu_act, 0.0, 320.0)


def test_max_cluster_power_is_worst_case(model):
    pm, _ = model
    worst = pm.max_cluster_power_w("a15", 2e9, 340.0)
    partial = pm.cluster_power("a15", ComponentActivity(2e9, 2.0, 340.0)).total_w
    assert worst > partial


def test_power_model_requires_clusters():
    plat = odroid_xu3()
    with pytest.raises(ConfigurationError):
        SocPowerModel({}, plat.gpu, plat.memory)
