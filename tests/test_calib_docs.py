"""docs/CALIBRATION.md must match the wire formats, the fit and the CLI."""

import argparse
import pathlib
import re

import pytest

from repro.calib import CALIB_TRACE_FORMAT, CalibSegment, CalibTrace
from repro.calib.fit import FIT_REPORT_FORMAT, FitReport, StageFit
from repro.calib.trace import SEGMENT_KINDS
from repro.cli import build_parser

DOC = pathlib.Path(__file__).parent.parent / "docs" / "CALIBRATION.md"

_FLAG_RE = re.compile(r"`(--[a-z][a-z-]*)")


def _subparser_choices(parser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    raise AssertionError("no subparsers found")


@pytest.fixture(scope="module")
def doc_text():
    assert DOC.exists(), "docs/CALIBRATION.md is part of the calib contract"
    return DOC.read_text()


@pytest.fixture(scope="module")
def calib_parsers():
    platforms = _subparser_choices(_subparser_choices(build_parser())["platforms"])
    return {name: platforms[name] for name in ("excite", "degrade", "fit")}


def test_wire_format_versions_documented(doc_text):
    assert f"`{CALIB_TRACE_FORMAT}`" in doc_text
    assert f"`{FIT_REPORT_FORMAT}`" in doc_text
    from repro.calib import DEGRADE_FORMAT

    assert f"`{DEGRADE_FORMAT}`" in doc_text


def test_trace_schema_keys_documented(doc_text):
    documented = set(re.findall(r"`([a-z_]+)`", doc_text))
    trace = CalibTrace(
        channels={"power.total": ([0.0], [1.0])},
        segments=[CalibSegment(name="s", kind="soak", start_s=0.0, end_s=1.0)],
    )
    missing = set(trace.to_dict()) - documented
    assert not missing, f"trace keys missing from the doc: {sorted(missing)}"
    seg_missing = set(trace.segments[0].to_dict()) - documented
    assert not seg_missing, f"segment keys missing: {sorted(seg_missing)}"


def test_segment_kinds_documented(doc_text):
    for kind in SEGMENT_KINDS:
        assert f"`{kind}`" in doc_text, f"segment kind {kind!r} missing"


def test_channel_prefixes_documented(doc_text):
    from repro.calib import trace as trace_mod

    prefixes = [
        value for name, value in vars(trace_mod).items()
        if name.endswith("_PREFIX")
    ]
    assert prefixes, "trace module exports no channel prefixes"
    for prefix in prefixes:
        assert f"`{prefix}<" in doc_text, f"prefix {prefix!r} missing"


def test_stage_names_documented(doc_text):
    report = FitReport(platform_hint="x", stages=(
        StageFit(stage="memory", params={}, residual_rms=0.0, n_samples=1),
        StageFit(stage="board", params={}, residual_rms=0.0, n_samples=1),
        StageFit(stage="rc", params={}, residual_rms=0.0, n_samples=1),
    ))
    for stage in report.stage_names():
        assert f"`{stage}`" in doc_text, f"stage {stage!r} missing"
    assert "`dvfs.<domain>`" in doc_text
    assert "`leakage.<domain>`" in doc_text


def test_error_taxonomy_documented(doc_text):
    for error in ("CalibrationError", "StabilityError", "ConfigurationError"):
        assert f"`{error}`" in doc_text, f"error {error!r} missing"


def test_every_cli_flag_documented(doc_text, calib_parsers):
    documented = set(_FLAG_RE.findall(doc_text))
    for name, sub in calib_parsers.items():
        for action in sub._actions:
            for flag in action.option_strings:
                if flag.startswith("--") and flag != "--help":
                    assert flag in documented, (
                        f"platforms {name} flag {flag} missing from the doc"
                    )
    # Nothing documented may be stale anywhere in the platforms CLI.
    platforms = _subparser_choices(_subparser_choices(build_parser())["platforms"])
    all_flags = {
        flag
        for sub in platforms.values()
        for action in sub._actions
        for flag in action.option_strings
        if flag.startswith("--")
    }
    stale = documented - all_flags
    assert not stale, f"documented but not in build_parser(): {sorted(stale)}"


def test_rng_stream_namespace_documented(doc_text):
    from repro.sim.rng import STREAM_NAMESPACES

    assert "calib" in STREAM_NAMESPACES
    assert "`calib.excite`" in doc_text
    assert "STREAM_NAMESPACES" in doc_text


def test_degrade_stream_namespace_documented(doc_text):
    from repro.sim.rng import STREAM_NAMESPACES

    assert "calib.degrade" in STREAM_NAMESPACES
    assert "`calib.degrade`" in doc_text


def test_tolerances_documented(doc_text):
    # The closed-loop contract numbers must appear (5 % params, 2 % run),
    # plus the degraded-trace tolerances (10 % params, 3 % run).
    assert "5 %" in doc_text and "2 %" in doc_text
    assert "10 %" in doc_text and "3 %" in doc_text


def test_degradation_knobs_documented(doc_text):
    import dataclasses

    from repro.calib import DegradationModel

    documented = set(re.findall(r"`([a-z_]+)`", doc_text))
    knobs = {f.name for f in dataclasses.fields(DegradationModel)}
    missing = knobs - documented
    assert not missing, f"degradation knobs missing from the doc: {sorted(missing)}"


def test_builtin_degradation_models_documented(doc_text):
    from repro.calib import BUILTIN_MODELS

    for name in BUILTIN_MODELS:
        assert f"`{name}`" in doc_text, f"built-in model {name!r} missing"


def test_verdicts_and_grades_documented(doc_text):
    from repro.calib import VERDICTS
    from repro.calib.robust import CONFIDENCE_GRADES

    for verdict in VERDICTS:
        assert f"`{verdict}`" in doc_text, f"verdict {verdict!r} missing"
    for grade in CONFIDENCE_GRADES:
        assert f"`{grade}`" in doc_text, f"grade {grade!r} missing"


def test_robust_modes_documented(doc_text):
    from repro.calib import ROBUST_MODES

    for mode in ROBUST_MODES:
        assert f"`{mode}`" in doc_text, f"robust mode {mode!r} missing"


def test_exit_codes_documented(doc_text):
    from repro.cli import EXIT_DEGRADED_FIT, EXIT_TRACE_ERROR

    assert f"`{EXIT_TRACE_ERROR}`" in doc_text
    assert f"`{EXIT_DEGRADED_FIT}`" in doc_text
