"""Cooling devices."""

import pytest

from repro.kernel.cpufreq.policy import DvfsPolicy
from repro.kernel.thermal.cooling import DvfsCoolingDevice
from repro.soc.opp import OppTable


@pytest.fixture()
def device():
    opps = OppTable.from_pairs(
        [(200e6, 0.9), (400e6, 0.95), (800e6, 1.05), (1600e6, 1.25)]
    )
    policy = DvfsPolicy("cpu", opps, initial_freq_hz=1600e6)
    return DvfsCoolingDevice("cdev", policy)


def test_max_state_is_table_size_minus_one(device):
    assert device.max_state == 3


def test_state_zero_is_unthrottled(device):
    assert device.cur_state == 0
    assert device.cap_hz() == 1600e6


def test_each_state_removes_one_opp(device):
    device.set_state(1)
    assert device.cap_hz() == 800e6
    device.set_state(3)
    assert device.cap_hz() == 200e6


def test_state_clamped(device):
    device.set_state(99)
    assert device.cur_state == 3
    device.set_state(-5)
    assert device.cur_state == 0


def test_applying_state_caps_policy(device):
    device.set_state(2)
    assert device.policy.effective_max_hz == 400e6
    assert device.policy.cur_freq_hz <= 400e6


def test_state_for_cap(device):
    assert device.state_for_cap(1600e6) == 0
    assert device.state_for_cap(800e6) == 1
    assert device.state_for_cap(500e6) == 2  # floor -> 400 MHz
    assert device.state_for_cap(1e6) == 3


def test_state_for_power(device):
    power_of = lambda f: f / 1e9  # monotone fake table: watts = GHz
    assert device.state_for_power(2.0, power_of) == 0
    assert device.state_for_power(1.0, power_of) == 1
    assert device.state_for_power(0.3, power_of) == 3
    assert device.state_for_power(0.0, power_of) == 3  # lowest always allowed
