"""Content-addressed result store: keys, payloads, attempts."""

import json

import pytest

from repro import __version__
from repro.campaign.store import RESULT_SCHEMA, ResultStore, scenario_key
from repro.errors import ConfigurationError
from repro.sim.experiment import AppSpec, Scenario, ScenarioResult


def scenario(**overrides):
    fields = {
        "platform": "odroid-xu3",
        "apps": (AppSpec.catalog("stickman"),),
        "policy": "none",
        "duration_s": 8.0,
    }
    fields.update(overrides)
    return Scenario(**fields)


@pytest.fixture(scope="module")
def short_result():
    return scenario().run()


def test_key_is_stable_and_content_derived():
    a = scenario_key(scenario())
    assert a == scenario_key(scenario())       # pure function of the spec
    assert len(a) == 64 and int(a, 16) >= 0    # sha256 hex
    assert a != scenario_key(scenario(seed=4))
    assert a != scenario_key(scenario(ambient_c=30.0))
    assert a != scenario_key(scenario(duration_s=9.0))


def test_governor_knobs_change_the_key():
    from repro.core.governor import GovernorConfig

    base = scenario(policy="proposed", governor=GovernorConfig(horizon_s=30.0))
    other = scenario(policy="proposed", governor=GovernorConfig(horizon_s=60.0))
    assert scenario_key(base) != scenario_key(other)


def test_save_load_roundtrip(tmp_path, short_result):
    store = ResultStore(tmp_path / "store")
    sc = scenario()
    key = scenario_key(sc)
    assert not store.has(key)
    assert store.load(key) is None

    path = store.save(key, sc, short_result)
    assert store.has(key)
    assert path == store.object_path(key)
    assert path.parent.name == key[:2]         # objects/<key[:2]>/<key>.json

    loaded = store.load(key)
    assert loaded == short_result
    payload = store.load_payload(key)
    assert payload["schema"] == RESULT_SCHEMA
    assert payload["repro_version"] == __version__
    assert payload["scenario"] == sc.to_dict()
    assert store.keys() == [key]
    # No temp droppings left behind by the atomic write.
    assert not list(path.parent.glob("*.tmp.*"))


def test_save_is_byte_deterministic(tmp_path, short_result):
    sc = scenario()
    key = scenario_key(sc)
    one = ResultStore(tmp_path / "one")
    two = ResultStore(tmp_path / "two")
    one.save(key, sc, short_result)
    two.save(key, sc, short_result)
    assert (one.object_path(key).read_bytes()
            == two.object_path(key).read_bytes())


def test_result_dict_roundtrip(short_result):
    data = json.loads(json.dumps(short_result.to_dict()))
    assert ScenarioResult.from_dict(data) == short_result


def test_malformed_key_rejected(tmp_path):
    store = ResultStore(tmp_path)
    with pytest.raises(ConfigurationError):
        store.object_path("ab")


def test_attempt_markers(tmp_path):
    store = ResultStore(tmp_path)
    key = "deadbeef" * 8
    assert store.attempts(key) == 0
    assert store.record_attempt(key) == 1
    assert store.record_attempt(key) == 2
    assert store.attempts(key) == 2
    store.clear_attempts(key)
    assert store.attempts(key) == 0
    store.clear_attempts(key)  # idempotent


def test_campaign_manifest_paths(tmp_path):
    store = ResultStore(tmp_path)
    assert store.load_campaign_manifest("nope") is None
    path = store.manifest_path("demo")
    assert path == store.campaign_dir("demo") / "manifest.json"
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"name": "demo"}))
    assert store.load_campaign_manifest("demo") == {"name": "demo"}
