"""The chaos preset: determinism across workers and the hardening property."""

import pathlib

import pytest

from repro.campaign import PRESETS, Axis, CampaignRunner, CampaignSpec, ResultStore
from repro.campaign.presets import chaos_campaign
from repro.campaign.runner import RunFailure
from repro.campaign.spec import FAULTS_AXIS
from repro.faults import builtin_plan_names
from repro.faults.report import resilience_report
from repro.sim.experiment import AppSpec


def store_bytes(root) -> dict[str, bytes]:
    objects = pathlib.Path(root) / "objects"
    return {
        path.name: path.read_bytes() for path in objects.rglob("*.json")
    }


def test_chaos_preset_registered():
    assert "chaos" in PRESETS
    spec = PRESETS["chaos"]()
    plans = next(ax for ax in spec.axes if ax.name == FAULTS_AXIS)
    assert tuple(p.name for p in plans.values) == builtin_plan_names()


def test_fault_runs_byte_identical_across_jobs(tmp_path):
    spec = CampaignSpec(
        name="chaos-determinism",
        base={
            "platform": "odroid-xu3",
            "apps": (AppSpec.catalog("stickman"), AppSpec.batch("bml")),
            "policy": "proposed",
            "duration_s": 6.0,
            "seed": 3,
        },
        axes=(Axis(FAULTS_AXIS, builtin_plan_names()),),
    )
    serial = CampaignRunner(spec, ResultStore(tmp_path / "s1"), jobs=1).run()
    parallel = CampaignRunner(spec, ResultStore(tmp_path / "s2"), jobs=2).run()
    assert serial.ok and parallel.ok
    assert store_bytes(tmp_path / "s1") == store_bytes(tmp_path / "s2")


def test_chaos_grid_hardening_property(tmp_path):
    spec = chaos_campaign(duration_s=10.0, seed=3)
    runner = CampaignRunner(spec, ResultStore(tmp_path), jobs=2)
    campaign = runner.run()
    assert campaign.ok, campaign.render_text()

    report = resilience_report(runner.runs, runner.results())
    # Every (platform, plan, policy) cell produced a row.
    assert len(report.rows) == len(runner.runs)
    assert report.hardening_regressions() == [], (
        "hardened governor exceeded the limit by more than stock:\n"
        + report.render_text()
    )
    # The faults actually fired: each proposed-policy run armed its plan
    # (except inert-by-design combinations) and carries its plan name.
    by_plan = {}
    for row in report.rows:
        if row.policy == "proposed":
            by_plan[row.fault_plan] = row.faults_injected
    assert set(by_plan) == set(builtin_plan_names())
    inert_for_proposed = {"cooling-stuck"}  # no kernel cooling devices bound
    for plan, injected in by_plan.items():
        if plan not in inert_for_proposed:
            assert injected > 0, f"plan {plan} never armed under proposed"
    # The hardened governor actually degraded somewhere (failsafe engaged).
    assert any(
        row.failsafe_s > 0.0 for row in report.rows if row.policy == "proposed"
    )


def test_run_failure_carries_fault_plan():
    failure = RunFailure(
        kind="exception", error_type="SimulationError",
        message="boom", fault_plan="stuck-cold",
    )
    back = RunFailure.from_dict(failure.to_dict())
    assert back == failure
    assert back.fault_plan == "stuck-cold"
    # Tolerant of records written before the field existed.
    legacy = dict(failure.to_dict())
    legacy.pop("fault_plan")
    assert RunFailure.from_dict(legacy).fault_plan is None


def test_result_distinguishes_designed_faults(tmp_path):
    # A completed fault run records its plan and injections in the result —
    # "the plan executed as designed" is not a failure.
    spec = CampaignSpec(
        name="designed",
        base={
            "platform": "odroid-xu3",
            "apps": (AppSpec.batch("bml"),),
            "policy": "stock",
            "duration_s": 6.0,
            "faults": "fan-stop",
        },
        axes=(Axis("seed", (1,)),),
    )
    runner = CampaignRunner(spec, ResultStore(tmp_path), jobs=1)
    assert runner.run().ok
    (result,) = runner.results().values()
    assert result.fault_plan == "fan-stop"
    assert len(result.faults_injected) == 1
    assert result.failsafe_s == 0.0  # stock has no failsafe machinery
