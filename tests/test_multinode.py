"""Multi-hotspot stability analysis."""

import pytest

from repro.core.fixed_point import StabilityClass
from repro.core.multinode import (
    binding_hotspot,
    candidate_nodes,
    per_node_analysis,
    safe_everywhere,
)
from repro.errors import StabilityError
from repro.thermal.model import ThermalModel
from repro.units import celsius_to_kelvin


@pytest.fixture()
def model(odroid_platform):
    return ThermalModel(
        odroid_platform.thermal, 0.01, ambient_k=odroid_platform.default_ambient_k
    )


def test_candidate_nodes(odroid_platform):
    assert candidate_nodes(odroid_platform) == ("little", "big", "gpu", "mem")


def test_per_node_reports_cover_all_nodes(odroid_platform, model):
    reports = per_node_analysis(odroid_platform, model, 2.0)
    assert set(reports) == set(candidate_nodes(odroid_platform))
    for node, report in reports.items():
        assert report.node == node


def test_big_binds_for_cpu_heavy_mix(odroid_platform, model):
    reports = per_node_analysis(
        odroid_platform, model, 3.0,
        rail_shares={"a15": 0.9, "gpu": 0.05, "a7": 0.03, "mem": 0.02},
    )
    assert binding_hotspot(reports).node == "big"


def test_gpu_binds_for_gpu_heavy_mix(odroid_platform, model):
    reports = per_node_analysis(
        odroid_platform, model, 3.0,
        rail_shares={"gpu": 0.9, "a15": 0.05, "a7": 0.03, "mem": 0.02},
    )
    assert binding_hotspot(reports).node == "gpu"


def test_runaway_node_dominates(odroid_platform, model):
    reports = per_node_analysis(odroid_platform, model, 8.0)
    binding = binding_hotspot(reports)
    assert binding.report.classification is StabilityClass.RUNAWAY


def test_safe_everywhere(odroid_platform, model):
    reports = per_node_analysis(odroid_platform, model, 1.0)
    assert safe_everywhere(reports, celsius_to_kelvin(95.0))
    assert not safe_everywhere(reports, celsius_to_kelvin(30.0))
    hot = per_node_analysis(odroid_platform, model, 8.0)
    assert not safe_everywhere(hot, celsius_to_kelvin(95.0))


def test_empty_reports_rejected():
    with pytest.raises(StabilityError):
        binding_hotspot({})
