"""A/B run comparison."""

import pytest

from repro.analysis.compare import compare_runs
from repro.apps.catalog import make_app
from repro.apps.mibench import basicmath_large
from repro.errors import AnalysisError
from repro.experiments.nexus import nexus_thermal_config
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3
from repro.soc.snapdragon810 import nexus6p


def run_nexus(throttled, seed=3, duration=50.0):
    config = KernelConfig(thermal=nexus_thermal_config() if throttled else None)
    sim = Simulation(nexus6p(), [make_app("stickman")], kernel_config=config, seed=seed)
    sim.run(duration)
    return sim


@pytest.fixture(scope="module")
def pair():
    return run_nexus(False), run_nexus(True)


def test_throttled_run_deltas(pair):
    unthrottled, throttled = pair
    delta = compare_runs(unthrottled, throttled)
    assert delta.fps["stickman"] < 0.0          # slower with the governor
    assert delta.peak_temp_k < 0.0              # but cooler
    assert delta.rail_power_w["gpu"] < 0.0      # and cheaper on the GPU rail
    assert delta.big_residency_shift >= 0.0     # clocks shifted down


def test_self_comparison_is_zero(pair):
    unthrottled, _ = pair
    delta = compare_runs(unthrottled, unthrottled)
    assert delta.fps["stickman"] == 0.0
    assert delta.peak_temp_k == 0.0
    assert all(v == 0.0 for v in delta.rail_power_w.values())


def test_render_mentions_metrics(pair):
    unthrottled, throttled = pair
    text = compare_runs(unthrottled, throttled).render("off", "on")
    assert "fps[stickman]" in text
    assert "peak temp" in text
    assert "on vs off" in text


def test_platform_mismatch_rejected(pair):
    unthrottled, _ = pair
    other = Simulation(
        odroid_xu3(), [basicmath_large()], kernel_config=KernelConfig(), seed=1
    )
    other.run(1.0)
    with pytest.raises(AnalysisError):
        compare_runs(unthrottled, other)


def test_unrun_simulation_rejected(pair):
    unthrottled, _ = pair
    fresh = Simulation(nexus6p(), kernel_config=KernelConfig(), seed=1)
    with pytest.raises(AnalysisError):
        compare_runs(unthrottled, fresh)
