"""Skin-temperature extension experiment."""

import pytest

from repro.experiments.skin import (
    SKIN_COMFORT_LIMIT_C,
    run_skin,
    skin_comparison,
    skin_lag_s,
)


@pytest.fixture(scope="module")
def runs():
    return skin_comparison("paperio")


def test_skin_below_package(runs):
    unthrottled, _ = runs
    # The shell is always cooler than the die under sustained load.
    assert unthrottled.skin_final_c < unthrottled.package.final()


def test_throttling_protects_skin(runs):
    unthrottled, throttled = runs
    assert throttled.skin_final_c < unthrottled.skin_final_c
    assert throttled.skin_final_c < SKIN_COMFORT_LIMIT_C


def test_skin_lags_package(runs):
    unthrottled, _ = runs
    assert skin_lag_s(unthrottled) > 5.0


def test_skin_rise_positive_under_gaming(runs):
    unthrottled, _ = runs
    assert unthrottled.skin_rise_c > 0.8


def test_run_skin_cached():
    assert run_skin("paperio", False) is run_skin("paperio", False)
