"""GPU FIFO device."""

import pytest

from repro.errors import SchedulingError
from repro.kernel.gpu import GpuDevice


def test_submit_and_complete():
    gpu = GpuDevice()
    gpu.submit("game", 1e6, tag=("game", 1))
    result = gpu.run_tick(200e6, 0.01)  # capacity 2e6
    assert result.completed_tags == [("game", 1)]
    assert result.busy_fraction == pytest.approx(0.5)


def test_fifo_order():
    gpu = GpuDevice()
    gpu.submit("a", 1e6, tag="f1")
    gpu.submit("a", 1e6, tag="f2")
    result = gpu.run_tick(150e6, 0.01)  # capacity 1.5e6: f1 done, f2 half
    assert result.completed_tags == ["f1"]
    assert gpu.backlog_cycles == pytest.approx(0.5e6)


def test_busy_fraction_saturates():
    gpu = GpuDevice()
    gpu.submit("a", 1e9)
    result = gpu.run_tick(100e6, 0.01)
    assert result.busy_fraction == pytest.approx(1.0)


def test_idle_device():
    gpu = GpuDevice()
    result = gpu.run_tick(100e6, 0.01)
    assert result.busy_fraction == 0.0
    assert result.completed_tags == []


def test_owner_accounting():
    gpu = GpuDevice()
    gpu.submit("a", 1e6)
    gpu.submit("b", 1e6)
    result = gpu.run_tick(200e6, 0.01)
    assert result.owner_cycles["a"] == pytest.approx(1e6)
    assert result.owner_cycles["b"] == pytest.approx(1e6)


def test_queue_depth():
    gpu = GpuDevice()
    gpu.submit("a", 1e6)
    gpu.submit("a", 1e6)
    assert gpu.queue_depth == 2


def test_invalid_submit():
    gpu = GpuDevice()
    with pytest.raises(SchedulingError):
        gpu.submit("a", 0.0)


def test_invalid_dt():
    gpu = GpuDevice()
    with pytest.raises(SchedulingError):
        gpu.run_tick(100e6, 0.0)
