"""FPS percentile and jank metrics; fan-on platform variant."""

import pytest

from repro.apps.frames import FpsMeter
from repro.core import critical_power_w, lump_platform
from repro.errors import AnalysisError
from repro.soc.exynos5422 import odroid_xu3
from repro.thermal.model import ThermalModel


def meter_with_pattern():
    meter = FpsMeter()
    t = 0.0
    # 9 smooth seconds at 60 fps, 1 janky second at 20 fps, repeated.
    for block in range(3):
        for sec in range(9):
            for i in range(60):
                meter.record(t + i / 60.0)
            t += 1.0
        for i in range(20):
            meter.record(t + i / 20.0)
        t += 1.0
    return meter


def test_percentile_fps():
    meter = meter_with_pattern()
    assert meter.percentile_fps(50.0, 0.0, 30.0) == pytest.approx(60.0)
    assert meter.percentile_fps(5.0, 0.0, 30.0) < 30.0


def test_jank_ratio():
    meter = meter_with_pattern()
    assert meter.jank_ratio(0.0, 30.0) == pytest.approx(0.1, abs=0.02)


def test_smooth_run_has_zero_jank():
    meter = FpsMeter()
    for i in range(300):
        meter.record(i / 30.0)
    assert meter.jank_ratio(0.0, 10.0) == 0.0


def test_percentile_validation():
    meter = meter_with_pattern()
    with pytest.raises(AnalysisError):
        meter.percentile_fps(150.0)
    with pytest.raises(AnalysisError):
        FpsMeter().jank_ratio()


def test_fan_variant_lifts_critical_power():
    fanless = odroid_xu3(fan=False)
    fanned = odroid_xu3(fan=True)
    assert fanless.extras["fan"] == "disabled"
    assert fanned.extras["fan"] == "enabled"
    crit_off = critical_power_w(
        lump_platform(fanless, ThermalModel(fanless.thermal, 0.01, 300.0))
    )
    crit_on = critical_power_w(
        lump_platform(fanned, ThermalModel(fanned.thermal, 0.01, 300.0))
    )
    assert crit_on > 3.0 * crit_off
