"""3DMark and Nenamark benchmark apps."""

import pytest

from repro.apps.gfxbench import NenamarkApp, ThreeDMarkApp
from repro.errors import AnalysisError, ConfigurationError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3


def make_sim(apps, seed=1):
    return Simulation(odroid_xu3(), apps, kernel_config=KernelConfig(), seed=seed)


def test_3dmark_validation():
    with pytest.raises(ConfigurationError):
        ThreeDMarkApp(gt1_duration_s=0.0)


def test_3dmark_phases_switch_demand():
    mark = ThreeDMarkApp(gt1_duration_s=30.0, gt2_duration_s=30.0)
    assert mark._mean_cycles(10.0)[1] < mark._mean_cycles(40.0)[1]


def test_3dmark_gt2_slower_than_gt1():
    mark = ThreeDMarkApp(gt1_duration_s=25.0, gt2_duration_s=25.0)
    sim = make_sim([mark])
    sim.run(50.0)
    assert mark.gt1_fps(settle_s=5.0) > mark.gt2_fps(settle_s=5.0)


def test_3dmark_unthrottled_fps_near_gpu_ceiling():
    mark = ThreeDMarkApp(gt1_duration_s=25.0, gt2_duration_s=5.0)
    sim = make_sim([mark])
    sim.run(25.0)
    # 600 MHz / 6.1 Mcycles ~ 98 fps.
    assert mark.gt1_fps(settle_s=5.0) == pytest.approx(97.0, abs=6.0)


def test_3dmark_metrics_before_completion():
    mark = ThreeDMarkApp()
    sim = make_sim([mark])
    sim.run(1.0)
    assert "frames" in mark.metrics()


def test_nenamark_validation():
    with pytest.raises(ConfigurationError):
        NenamarkApp(slope_per_level=0.0)


def test_nenamark_difficulty_ramp():
    nena = NenamarkApp(level_duration_s=10.0)
    assert nena.difficulty_levels(25.0) == pytest.approx(2.5)
    assert nena._mean_cycles(30.0)[1] > nena._mean_cycles(0.0)[1]


def test_nenamark_difficulty_capped():
    nena = NenamarkApp(level_duration_s=1.0, max_levels=4.0)
    assert nena.difficulty_levels(100.0) == 4.0


def test_nenamark_terminates_with_score():
    nena = NenamarkApp(level_duration_s=10.0)
    sim = make_sim([nena])
    sim.run(120.0, until=lambda s: nena.finished)
    assert nena.finished
    assert 1.0 < nena.score_levels < 8.0


def test_nenamark_score_unavailable_before_finish():
    nena = NenamarkApp()
    with pytest.raises(AnalysisError):
        nena.score_levels


def test_nenamark_stops_submitting_after_finish():
    nena = NenamarkApp(level_duration_s=5.0)
    sim = make_sim([nena])
    sim.run(200.0, until=lambda s: nena.finished)
    frames = nena.fps.frame_count
    sim.run(2.0)
    assert nena.fps.frame_count <= frames + 5  # only in-flight stragglers
