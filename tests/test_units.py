"""Unit-conversion helpers."""

import pytest

from repro import units


def test_celsius_kelvin_roundtrip():
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(36.6)) == pytest.approx(36.6)


def test_zero_celsius():
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)


def test_kelvin_to_millicelsius_rounds():
    assert units.kelvin_to_millicelsius(units.celsius_to_kelvin(40.0006)) == 40001


def test_millicelsius_to_kelvin():
    assert units.millicelsius_to_kelvin(40000) == pytest.approx(313.15)


def test_hz_khz_roundtrip():
    assert units.khz_to_hz(units.hz_to_khz(1958.4e6)) == pytest.approx(1958.4e6)


def test_hz_to_khz_is_integer():
    assert isinstance(units.hz_to_khz(600e6), int)
    assert units.hz_to_khz(600e6) == 600000


def test_mhz_literal():
    assert units.mhz(600) == pytest.approx(600e6)


def test_negative_temperatures_allowed_in_conversion():
    # Conversions are pure arithmetic; validity checks live in the models.
    assert units.celsius_to_kelvin(-40.0) == pytest.approx(233.15)


def test_celsius_millicelsius_roundtrip():
    assert units.millicelsius_to_celsius(
        units.celsius_to_millicelsius(41.275)) == pytest.approx(41.275)


def test_celsius_to_millicelsius_rounds_not_truncates():
    # The sysfs trip-point unit is integer millidegrees.  0.1 degC steps
    # are not exactly representable in binary (56.7 * 1000 = 56699.999...),
    # so the converter rounds; plain int() truncation would be off by one.
    assert units.celsius_to_millicelsius(56.7) == 56700
    assert isinstance(units.celsius_to_millicelsius(56.7), int)


def test_hz_mhz_khz_consistency():
    assert units.hz_to_mhz(1_958_400_000.0) == pytest.approx(1958.4)
    assert units.khz_to_mhz(600_000) == pytest.approx(600.0)
    assert units.khz_to_mhz(units.hz_to_khz(units.mhz(384.0))) == pytest.approx(384.0)


def test_seconds_milliseconds_roundtrip():
    assert units.milliseconds_to_seconds(
        units.seconds_to_milliseconds(0.25)) == pytest.approx(0.25)
    assert units.seconds_to_milliseconds(1.5) == pytest.approx(1500.0)


def test_seconds_microseconds_roundtrip():
    assert units.microseconds_to_seconds(
        units.seconds_to_microseconds(0.004)) == pytest.approx(0.004)
    assert units.seconds_to_microseconds(2e-6) == pytest.approx(2.0)


def test_watts_microwatts_roundtrip():
    assert units.microwatts_to_watts(
        units.watts_to_microwatts(3.3)) == pytest.approx(3.3)
    assert units.watts_to_microwatts(0.5) == pytest.approx(500_000.0)


def test_joules_millijoules_roundtrip():
    assert units.millijoules_to_joules(
        units.joules_to_millijoules(0.125)) == pytest.approx(0.125)
    assert units.joules_to_millijoules(2.0) == pytest.approx(2000.0)
