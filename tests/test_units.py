"""Unit-conversion helpers."""

import pytest

from repro import units


def test_celsius_kelvin_roundtrip():
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(36.6)) == pytest.approx(36.6)


def test_zero_celsius():
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)


def test_kelvin_to_millicelsius_rounds():
    assert units.kelvin_to_millicelsius(units.celsius_to_kelvin(40.0006)) == 40001


def test_millicelsius_to_kelvin():
    assert units.millicelsius_to_kelvin(40000) == pytest.approx(313.15)


def test_hz_khz_roundtrip():
    assert units.khz_to_hz(units.hz_to_khz(1958.4e6)) == pytest.approx(1958.4e6)


def test_hz_to_khz_is_integer():
    assert isinstance(units.hz_to_khz(600e6), int)
    assert units.hz_to_khz(600e6) == 600000


def test_mhz_literal():
    assert units.mhz(600) == pytest.approx(600e6)


def test_negative_temperatures_allowed_in_conversion():
    # Conversions are pure arithmetic; validity checks live in the models.
    assert units.celsius_to_kelvin(-40.0) == pytest.approx(233.15)
