"""Property-based tests of the fixed-point analysis (hypothesis)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fixed_point import StabilityClass, analyze, critical_power_w
from repro.core.stability import FixedPointFunction, LumpedThermalParams

params_strategy = st.builds(
    LumpedThermalParams,
    r_k_per_w=st.floats(2.0, 30.0),
    c_j_per_k=st.floats(0.5, 50.0),
    kappa_w_per_k2=st.floats(1e-5, 5e-3),
    beta_k=st.floats(800.0, 3000.0),
    t_ambient_k=st.floats(273.0, 330.0),
)

power_strategy = st.floats(0.0, 20.0)


@given(params=params_strategy, p_dyn=power_strategy)
@settings(max_examples=150, deadline=None)
def test_root_count_in_0_1_2(params, p_dyn):
    func = FixedPointFunction.from_lumped(params, p_dyn)
    assert len(func.roots()) in (0, 1, 2)


@given(params=params_strategy, p_dyn=power_strategy)
@settings(max_examples=150, deadline=None)
def test_function_concave(params, p_dyn):
    func = FixedPointFunction.from_lumped(params, p_dyn)
    # f'' = -2*c1 - c2*exp(-x) < 0 for every x; sample a few points.
    for x in (0.5, 1.0, 2.0, 4.0, 8.0):
        h = 1e-4
        second = (func(x + h) - 2.0 * func(x) + func(x - h)) / (h * h)
        assert second < 0.0


@given(params=params_strategy, p_dyn=power_strategy)
@settings(max_examples=150, deadline=None)
def test_stable_root_is_larger_and_cooler(params, p_dyn):
    report = analyze(params, p_dyn)
    if report.classification is StabilityClass.STABLE:
        assert report.stable_aux >= report.unstable_aux
        assert report.stable_temp_k <= report.unstable_temp_k


@given(params=params_strategy, p_dyn=power_strategy)
@settings(max_examples=100, deadline=None)
def test_stable_temperature_above_ambient(params, p_dyn):
    report = analyze(params, p_dyn)
    if report.stable_temp_k is not None:
        # The physical (stable) fixed point is never below the ambient.
        assert report.stable_temp_k >= params.t_ambient_k - 1e-6


@given(params=params_strategy, p_dyn=power_strategy)
@settings(max_examples=100, deadline=None)
def test_fixed_points_satisfy_heat_balance(params, p_dyn):
    report = analyze(params, p_dyn)
    for temp in (report.stable_temp_k, report.unstable_temp_k):
        if temp is None:
            continue
        rhs = params.t_ambient_k + params.r_k_per_w * (
            p_dyn + params.leakage_w(temp)
        )
        assert math.isclose(temp, rhs, rel_tol=1e-6, abs_tol=1e-6)


@given(params=params_strategy)
@settings(max_examples=60, deadline=None)
def test_critical_power_separates_regimes(params):
    try:
        p_crit = critical_power_w(params)
    except Exception:
        return  # unstable even at zero power: nothing to check
    below = analyze(params, max(p_crit - 0.05, 0.0))
    above = analyze(params, p_crit + 0.05)
    assert below.classification is not StabilityClass.RUNAWAY
    assert above.classification is StabilityClass.RUNAWAY


@given(params=params_strategy, p1=power_strategy, p2=power_strategy)
@settings(max_examples=100, deadline=None)
def test_steady_state_monotone_in_power(params, p1, p2):
    lo, hi = sorted((p1, p2))
    rep_lo = analyze(params, lo)
    rep_hi = analyze(params, hi)
    if rep_lo.stable_temp_k is not None and rep_hi.stable_temp_k is not None:
        assert rep_hi.stable_temp_k >= rep_lo.stable_temp_k - 1e-9


@given(params=params_strategy, p_dyn=power_strategy, x=st.floats(0.1, 10.0))
@settings(max_examples=100, deadline=None)
def test_aux_temperature_roundtrip(params, p_dyn, x):
    assert params.aux_from_temp(params.temp_from_aux(x)) == pytest.approx(x)
