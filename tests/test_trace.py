"""Trace recorder and resampling."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.sim.trace import TraceRecorder, resample_zoh


def test_record_and_series():
    tr = TraceRecorder()
    tr.record("temp", 0.0, 25.0)
    tr.record("temp", 1.0, 26.0)
    times, values = tr.series("temp")
    assert np.allclose(times, [0.0, 1.0])
    assert np.allclose(values, [25.0, 26.0])


def test_unknown_channel_raises():
    tr = TraceRecorder()
    with pytest.raises(AnalysisError):
        tr.series("nope")


def test_time_must_not_go_backwards():
    tr = TraceRecorder()
    tr.record("x", 1.0, 0.0)
    with pytest.raises(AnalysisError):
        tr.record("x", 0.5, 0.0)


def test_record_many_shares_timestamp():
    tr = TraceRecorder()
    tr.record_many(2.0, {"a": 1.0, "b": 2.0})
    assert tr.channel("a").times[0] == 2.0
    assert tr.channel("b").times[0] == 2.0


def test_window_selects_half_open_interval():
    tr = TraceRecorder()
    for t in range(10):
        tr.record("x", float(t), float(t))
    times, values = tr.window("x", 2.0, 5.0)
    assert list(times) == [2.0, 3.0, 4.0]


def test_last_value():
    tr = TraceRecorder()
    tr.record("x", 0.0, 5.0)
    tr.record("x", 1.0, 7.0)
    assert tr.channel("x").last() == 7.0


def test_last_on_empty_channel_raises():
    tr = TraceRecorder()
    tr.record("x", 0.0, 1.0)
    with pytest.raises(AnalysisError):
        tr.channel("y")


def test_contains_and_names():
    tr = TraceRecorder()
    tr.record("b", 0.0, 0.0)
    tr.record("a", 0.0, 0.0)
    assert "a" in tr
    assert tr.names() == ["a", "b"]


def test_merge_prefixed():
    src = TraceRecorder()
    src.record("x", 0.0, 1.0)
    dst = TraceRecorder()
    dst.merge_prefixed(src, "run1")
    assert "run1.x" in dst


def test_resample_zoh_holds_previous_value():
    grid = np.array([0.0, 0.5, 1.0, 1.5, 2.0])
    out = resample_zoh([0.0, 1.0, 2.0], [10.0, 20.0, 30.0], grid)
    assert list(out) == [10.0, 10.0, 20.0, 20.0, 30.0]


def test_resample_zoh_before_first_sample():
    out = resample_zoh([1.0], [5.0], np.array([0.0, 2.0]))
    assert list(out) == [5.0, 5.0]


def test_resample_zoh_empty_raises():
    with pytest.raises(AnalysisError):
        resample_zoh([], [], np.array([0.0]))


def test_channel_arrays_cached_until_append():
    tr = TraceRecorder()
    tr.record("x", 0.0, 1.0)
    ch = tr.channel("x")
    first = ch.times
    assert ch.times is first, "repeat access must reuse the cached array"
    assert ch.values is ch.values
    tr.record("x", 1.0, 2.0)
    assert ch.times is not first, "append must invalidate the cache"
    assert list(ch.times) == [0.0, 1.0]


def test_channel_arrays_read_only():
    tr = TraceRecorder()
    tr.record("x", 0.0, 1.0)
    ch = tr.channel("x")
    with pytest.raises(ValueError):
        ch.times[0] = 99.0
    with pytest.raises(ValueError):
        ch.values[0] = 99.0
