"""cpuidle: dwell-based idle-state selection and power gating."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.cpuidle import (
    DEFAULT_IDLE_STATES,
    ClusterIdleGovernor,
    IdleState,
)
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3


def test_state_validation():
    with pytest.raises(ConfigurationError):
        IdleState("x", power_scale=1.5, entry_dwell_s=0.0)
    with pytest.raises(ConfigurationError):
        IdleState("x", power_scale=0.5, entry_dwell_s=-1.0)
    with pytest.raises(ConfigurationError):
        ClusterIdleGovernor([])
    with pytest.raises(ConfigurationError):
        # Shallowest state must be immediately available.
        ClusterIdleGovernor([IdleState("deep", 0.1, 1.0)])
    with pytest.raises(ConfigurationError):
        # Deeper states must not consume more.
        ClusterIdleGovernor(
            [IdleState("a", 0.2, 0.0), IdleState("b", 0.8, 1.0)]
        )


def test_busy_cluster_stays_shallow():
    governor = ClusterIdleGovernor()
    for _ in range(100):
        scale = governor.update(2.0, 4, 0.01)
    assert scale == 1.0
    assert governor.current_state.name == "wfi"


def test_idle_cluster_deepens_with_dwell():
    governor = ClusterIdleGovernor()
    scales = [governor.update(0.0, 4, 0.01) for _ in range(30)]
    # wfi immediately, core_sleep at 50 ms, cluster_off at 200 ms.
    assert scales[0] == 1.0
    assert scales[6] == pytest.approx(0.4)
    governor2 = ClusterIdleGovernor()
    for _ in range(25):
        last = governor2.update(0.0, 4, 0.01)
    assert last == pytest.approx(0.05)
    assert governor2.current_state.name == "cluster_off"


def test_activity_resets_dwell():
    governor = ClusterIdleGovernor()
    for _ in range(30):
        governor.update(0.0, 4, 0.01)
    assert governor.current_state.name == "cluster_off"
    governor.update(1.0, 4, 0.01)
    assert governor.current_state.name == "wfi"
    # Dwell restarts: next idle tick is still shallow.
    assert governor.update(0.0, 4, 0.01) == 1.0


def test_residency_and_usage_accounting():
    governor = ClusterIdleGovernor()
    for _ in range(30):
        governor.update(0.0, 4, 0.01)
    total = sum(
        governor.residency_s(s.name) for s in DEFAULT_IDLE_STATES
    )
    assert total == pytest.approx(0.3)
    assert governor.usage("cluster_off") == 1
    with pytest.raises(ConfigurationError):
        governor.residency_s("nonexistent")


def test_idle_device_power_drops_after_gating():
    """End to end: a fully idle Odroid spends less on the big rail once
    cpuidle gates the cluster."""
    sim = Simulation(odroid_xu3(), kernel_config=KernelConfig(), seed=1)
    sim.run(5.0)
    _, watts = sim.traces.series("power.a15")
    # Late samples (deep idle): both the idle cost and the leakage are
    # gated down to the retention level.
    assert watts[-1] < 0.05
    assert watts[-1] < 0.25 * watts[1]  # far below the shallow-idle draw
    assert sim.kernel.idle_scale("a15") == pytest.approx(0.05)


def test_busy_cluster_keeps_full_idle_cost():
    from repro.apps.mibench import basicmath_large

    sim = Simulation(
        odroid_xu3(), [basicmath_large()], kernel_config=KernelConfig(), seed=1
    )
    sim.run(2.0)
    assert sim.kernel.idle_scale("a15") == 1.0


def test_cpuidle_sysfs_nodes():
    sim = Simulation(odroid_xu3(), kernel_config=KernelConfig(), seed=1)
    sim.run(1.0)
    fs = sim.kernel.fs
    base = "/sys/devices/system/cpu/cpu4/cpuidle"
    assert fs.read(f"{base}/state0/name") == "wfi"
    assert fs.read(f"{base}/state2/name") == "cluster_off"
    time_us = fs.read_int(f"{base}/state2/time")
    assert time_us > 0
    assert fs.read_int(f"{base}/state2/usage") >= 1
