"""Transient time predictions and agreement with direct ODE integration."""

import math

import pytest

from repro.core.stability import ODROID_XU3_LUMPED
from repro.core.time_to_fixed_point import (
    time_to_fixed_point_s,
    time_to_temperature_s,
)
from repro.errors import StabilityError

P = ODROID_XU3_LUMPED


def integrate_ode(p_dyn, t0_k, duration_s, dt=0.01):
    """Direct Euler integration of the lumped dynamics."""
    t = t0_k
    steps = int(duration_s / dt)
    for _ in range(steps):
        dT = ((P.t_ambient_k - t) / P.r_k_per_w + p_dyn + P.leakage_w(t)) / P.c_j_per_k
        t += dT * dt
    return t


def crossing_time_ode(p_dyn, t0_k, target_k, dt=0.01, max_s=10000.0):
    t = t0_k
    elapsed = 0.0
    while elapsed < max_s:
        if (t0_k < target_k <= t) or (t0_k > target_k >= t):
            return elapsed
        dT = ((P.t_ambient_k - t) / P.r_k_per_w + p_dyn + P.leakage_w(t)) / P.c_j_per_k
        t += dT * dt
        elapsed += dt
    return math.inf


def test_time_to_temperature_matches_ode():
    predicted = time_to_temperature_s(P, 3.2, 320.0, 350.0)
    simulated = crossing_time_ode(3.2, 320.0, 350.0)
    assert predicted == pytest.approx(simulated, rel=0.02)


def test_time_to_temperature_runaway_matches_ode():
    predicted = time_to_temperature_s(P, 7.0, 320.0, 380.0)
    simulated = crossing_time_ode(7.0, 320.0, 380.0)
    assert predicted == pytest.approx(simulated, rel=0.02)


def test_time_to_fixed_point_reaches_it_in_ode():
    horizon = time_to_fixed_point_s(P, 3.0, 320.0, tol_k=1.0)
    from repro.core.fixed_point import steady_state_temp_k
    t_ss = steady_state_temp_k(P, 3.0)
    t_after = integrate_ode(3.0, 320.0, horizon)
    assert abs(t_after - t_ss) == pytest.approx(1.0, abs=0.1)


def test_zero_time_when_already_at_fixed_point():
    from repro.core.fixed_point import steady_state_temp_k
    t_ss = steady_state_temp_k(P, 3.0)
    assert time_to_fixed_point_s(P, 3.0, t_ss, tol_k=1.0) == 0.0


def test_cooling_towards_fixed_point():
    # Start above the stable temperature: trajectory cools down to it.
    from repro.core.fixed_point import steady_state_temp_k
    t_ss = steady_state_temp_k(P, 2.0)
    time = time_to_fixed_point_s(P, 2.0, t_ss + 20.0, tol_k=1.0)
    assert 0.0 < time < math.inf
    assert integrate_ode(2.0, t_ss + 20.0, time) == pytest.approx(
        t_ss + 1.0, abs=0.2
    )


def test_runaway_never_reaches_fixed_point():
    assert time_to_fixed_point_s(P, 8.0, 320.0) == math.inf


def test_beyond_unstable_point_diverges():
    from repro.core.fixed_point import analyze
    report = analyze(P, 2.0)
    hot = report.unstable_temp_k + 30.0
    assert time_to_fixed_point_s(P, 2.0, hot) == math.inf
    # ... but it does reach even hotter temperatures (runaway branch).
    assert time_to_temperature_s(P, 2.0, hot, hot + 50.0) < math.inf


def test_unreachable_target_is_inf():
    # Stable fixed point below the target: never crossed.
    from repro.core.fixed_point import steady_state_temp_k
    t_ss = steady_state_temp_k(P, 2.0)
    assert time_to_temperature_s(P, 2.0, 320.0, t_ss + 30.0) == math.inf


def test_cooling_target_below_start():
    from repro.core.fixed_point import steady_state_temp_k
    t_ss = steady_state_temp_k(P, 2.0)
    start = t_ss + 20.0
    target = t_ss + 5.0
    predicted = time_to_temperature_s(P, 2.0, start, target)
    simulated = crossing_time_ode(2.0, start, target)
    assert predicted == pytest.approx(simulated, rel=0.02)


def test_higher_power_reaches_limit_sooner():
    t1 = time_to_temperature_s(P, 3.0, 320.0, 350.0)
    t2 = time_to_temperature_s(P, 4.0, 320.0, 350.0)
    assert t2 < t1


def test_bad_tolerance_rejected():
    with pytest.raises(StabilityError):
        time_to_fixed_point_s(P, 3.0, 320.0, tol_k=0.0)
