"""DegradationModel: validation, determinism, identity and wire round-trips."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calib import (
    BUILTIN_MODELS,
    DEGRADE_FORMAT,
    CalibTrace,
    DegradationModel,
    resolve_model,
)
from repro.errors import CalibrationError, ConfigurationError

# ------------------------------------------------------------ strategies

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789._-", min_size=1, max_size=12
)
_values = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


@st.composite
def _channels(draw):
    n_channels = draw(st.integers(1, 4))
    out = {}
    for _ in range(n_channels):
        prefix = draw(st.sampled_from(("", "temp.", "power.", "freq.", "volt.")))
        name = prefix + draw(_names)
        n = draw(st.integers(1, 20))
        times = sorted(draw(st.lists(
            st.floats(0.0, 1e4, allow_nan=False), min_size=n, max_size=n,
        )))
        values = draw(st.lists(_values, min_size=n, max_size=n))
        out[name] = (times, values)
    return out


#: Every pathology at once, for the round-trip property.
_FULL_MODEL = DegradationModel(
    temp_quantum_c=0.001,
    freq_quantum_mhz=0.001,
    volt_quantum_v=0.001,
    power_quantum_w=0.001,
    temp_noise_std_c=0.1,
    power_noise_std_w=0.01,
    drop_rate=0.2,
    stale_rate=0.05,
    spike_rate=0.05,
    spike_magnitude_c=25.0,
    time_jitter_std_s=0.01,
)


def _trace(n=200, dt=0.1):
    times = [round(i * dt, 6) for i in range(n)]
    return CalibTrace(
        channels={
            "temp.soc": (times, [30.0 + 0.05 * i for i in range(n)]),
            "temp.board": (times, [25.0 + 0.01 * i for i in range(n)]),
            "freq.a7": (times, [600.0 + (i % 3) * 200.0 for i in range(n)]),
            "power.total": (times, [1.0 + 0.002 * i for i in range(n)]),
        },
        ambient_c=25.0,
        platform_hint="dev",
    )


# ------------------------------------------------------------ validation


def test_rejects_negative_quantum():
    with pytest.raises(ConfigurationError, match="temp_quantum_c"):
        DegradationModel(temp_quantum_c=-0.001)


def test_rejects_non_finite_knob():
    with pytest.raises(ConfigurationError, match="time_jitter_std_s"):
        DegradationModel(time_jitter_std_s=float("inf"))


def test_rejects_out_of_range_rate():
    with pytest.raises(ConfigurationError, match="drop_rate"):
        DegradationModel(drop_rate=1.5)
    with pytest.raises(ConfigurationError, match="spike_rate"):
        DegradationModel(spike_rate=-0.1)


def test_rejects_non_finite_channel_offset():
    with pytest.raises(ConfigurationError, match="offset"):
        DegradationModel(channel_offsets={"temp.soc": float("nan")})


# ------------------------------------------------------- serialisation


def test_dict_round_trip_and_format_stamp():
    model = _FULL_MODEL
    data = model.to_dict()
    assert data["format"] == DEGRADE_FORMAT
    json.dumps(data)  # JSON-native
    assert DegradationModel.from_dict(data) == model


def test_from_dict_rejects_wrong_format():
    data = DegradationModel().to_dict()
    data["format"] = "repro.calib.degrade/999"
    with pytest.raises(CalibrationError, match="unsupported degradation format"):
        DegradationModel.from_dict(data)


def test_from_dict_rejects_unknown_knob():
    data = DegradationModel().to_dict()
    data["temp_quantum"] = 0.001  # typo'd knob must not be silently dropped
    with pytest.raises(CalibrationError, match="temp_quantum"):
        DegradationModel.from_dict(data)


def test_from_json_malformed_and_non_object():
    with pytest.raises(CalibrationError, match="malformed degradation JSON"):
        DegradationModel.from_json("{not json")
    with pytest.raises(CalibrationError, match="must be an object"):
        DegradationModel.from_json("[1, 2]")


def test_builtin_models_resolve_and_round_trip():
    for name, model in BUILTIN_MODELS.items():
        assert resolve_model(name) == model
        assert DegradationModel.from_json(model.to_json()) == model


def test_resolve_model_file_path(tmp_path):
    path = tmp_path / "model.json"
    path.write_text(_FULL_MODEL.to_json(indent=2))
    assert resolve_model(str(path)) == _FULL_MODEL


def test_resolve_model_unknown_spec_lists_builtins(tmp_path):
    with pytest.raises(CalibrationError, match="noisy-sysfs"):
        resolve_model(str(tmp_path / "nope.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(CalibrationError, match="bad.json"):
        resolve_model(str(bad))


# --------------------------------------------------- identity & determinism


def test_default_model_is_identity():
    assert DegradationModel().is_identity()
    # spike_magnitude_c alone is inert without a spike_rate.
    assert DegradationModel(spike_magnitude_c=5.0).is_identity()
    assert not DegradationModel(temp_quantum_c=0.001).is_identity()
    assert not DegradationModel(channel_offsets={"temp.soc": 0.5}).is_identity()


@given(channels=_channels(), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_zero_knob_model_is_identity_on_every_channel(channels, seed):
    trace = CalibTrace(channels=channels)
    model = DegradationModel()
    out = model.apply(trace, seed=seed)
    for name in trace.names():
        times, values = trace.series(name)
        out_t, out_v = out.series(name)
        np.testing.assert_array_equal(out_t, np.asarray(times, dtype=float))
        np.testing.assert_array_equal(out_v, np.asarray(values, dtype=float))
    assert out.meta["degradation"] == {"model": model.to_dict(), "seed": seed}


def test_apply_is_seed_deterministic():
    trace = _trace()
    one = _FULL_MODEL.apply(trace, seed=7)
    two = _FULL_MODEL.apply(trace, seed=7)
    assert json.dumps(one.to_dict(), sort_keys=True) == \
        json.dumps(two.to_dict(), sort_keys=True)
    other = _FULL_MODEL.apply(trace, seed=8)
    assert json.dumps(other.to_dict(), sort_keys=True) != \
        json.dumps(one.to_dict(), sort_keys=True)


@given(channels=_channels(), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_degraded_trace_wire_round_trip_is_byte_identical(channels, seed):
    trace = CalibTrace(channels=channels)
    degraded = _FULL_MODEL.apply(trace, seed=seed)
    blob = json.dumps(degraded.to_dict(), sort_keys=True)
    again = CalibTrace.from_dict(json.loads(blob))
    assert again == degraded
    assert json.dumps(again.to_dict(), sort_keys=True) == blob


# ------------------------------------------------------------ pathologies


def test_drops_remove_whole_records_across_channels():
    trace = _trace()
    out = DegradationModel(drop_rate=0.3).apply(trace, seed=3)
    kept = {name: set(np.round(out.series(name)[0], 9))
            for name in out.names()}
    reference = kept["temp.soc"]
    assert 0 < len(reference) < len(trace.series("temp.soc")[0])
    for name, times in kept.items():
        assert times == reference, f"{name} lost different records"


def test_quantization_snaps_only_matching_prefix():
    trace = _trace()
    out = DegradationModel(temp_quantum_c=0.5).apply(trace, seed=0)
    temps = out.series("temp.soc")[1]
    np.testing.assert_allclose(temps, np.round(temps / 0.5) * 0.5)
    np.testing.assert_array_equal(
        out.series("power.total")[1], trace.series("power.total")[1]
    )


def test_spikes_hit_only_temperature_channels():
    trace = _trace()
    out = DegradationModel(spike_rate=0.2, spike_magnitude_c=25.0).apply(
        trace, seed=11
    )
    clean = np.asarray(trace.series("temp.soc")[1])
    spiked = out.series("temp.soc")[1]
    assert np.any(spiked > clean + 10.0), "no spike landed at 20% rate"
    np.testing.assert_array_equal(
        out.series("power.total")[1], trace.series("power.total")[1]
    )
    np.testing.assert_array_equal(
        out.series("freq.a7")[1], trace.series("freq.a7")[1]
    )


def test_stale_repeats_stay_within_original_values():
    trace = _trace()
    out = DegradationModel(stale_rate=0.3).apply(trace, seed=5)
    clean = np.asarray(trace.series("power.total")[1])
    stale = out.series("power.total")[1]
    assert stale.size == clean.size
    assert set(stale).issubset(set(clean))
    assert np.any(stale != clean), "no sample went stale at 30% rate"


def test_channel_offset_biases_named_channel_only():
    trace = _trace()
    out = DegradationModel(channel_offsets={"temp.soc": 1.5}).apply(trace, 0)
    np.testing.assert_allclose(
        out.series("temp.soc")[1],
        np.asarray(trace.series("temp.soc")[1]) + 1.5,
    )
    np.testing.assert_array_equal(
        out.series("temp.board")[1], trace.series("temp.board")[1]
    )


def test_time_jitter_preserves_sample_order():
    trace = _trace()
    out = DegradationModel(time_jitter_std_s=0.04).apply(trace, seed=9)
    times = out.series("temp.soc")[0]
    assert np.any(times != np.asarray(trace.series("temp.soc")[0]))
    assert np.all(np.diff(times) > 0.0)
