"""Focused tests for behaviours not exercised elsewhere."""

import pytest

from repro import errors
from repro.apps.frames import FrameApp, FrameWorkload
from repro.apps.mibench import basicmath_large
from repro.core.fixed_point import FixedPointReport, StabilityClass
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.kernel.kernel import KernelConfig
from repro.kernel.sysfs import SysfsNode
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3
from repro.soc.snapdragon810 import nexus6p


def test_error_hierarchy():
    for cls in (
        errors.ConfigurationError, errors.SimulationError, errors.SysfsError,
        errors.SchedulingError, errors.AnalysisError, errors.StabilityError,
    ):
        assert issubclass(cls, errors.ReproError)
        assert issubclass(cls, Exception)


def test_sysfs_node_mode_flags():
    ro = SysfsNode(getter=lambda: "x")
    wo = SysfsNode(getter=None, setter=lambda v: None)
    rw = SysfsNode(getter=lambda: "x", setter=lambda v: None)
    assert ro.readable and not ro.writable
    assert wo.writable and not wo.readable
    assert rw.readable and rw.writable


def test_fixed_point_report_is_stable_flag():
    stable = FixedPointReport(
        1.0, StabilityClass.STABLE, 4.0, 3.0, 330.0, 400.0
    )
    runaway = FixedPointReport(
        8.0, StabilityClass.RUNAWAY, None, None, None, None
    )
    assert stable.is_stable
    assert not runaway.is_stable


def test_nexus_wiring_has_both_policies():
    sim = Simulation(nexus6p(), kernel_config=KernelConfig(), seed=1)
    fs = sim.kernel.fs
    # a53 cpus 0-3 -> policy0; a57 cpus 4-7 -> policy4.
    assert fs.read("/sys/devices/system/cpu/cpufreq/policy0/affected_cpus") == "0 1 2 3"
    assert fs.read("/sys/devices/system/cpu/cpufreq/policy4/affected_cpus") == "4 5 6 7"


def test_nexus_has_no_ina_paths():
    sim = Simulation(nexus6p(), kernel_config=KernelConfig(), seed=1)
    assert not sim.kernel.fs.exists("/sys/bus/i2c/drivers/INA231/4-0040/sensor_W")
    # ... but the generic power-sensor paths exist on every platform.
    assert sim.kernel.fs.exists("/sys/class/power_sensors/a57/power_w")


def test_governor_duty_cycle_respects_registry():
    game = FrameApp("game", FrameWorkload(6e6, 4e6, target_fps=60.0, sigma=0.1))
    bml = basicmath_large()
    sim = Simulation(odroid_xu3(), [game, bml], kernel_config=KernelConfig(), seed=1)
    governor = ApplicationAwareGovernor.for_simulation(
        sim, GovernorConfig(t_limit_c=55.0, horizon_s=600.0, action="duty_cycle")
    )
    for pid in game.pids():
        governor.registry.register(pid, "game")
    governor.install(sim.kernel)
    sim.run(15.0)
    assert governor.events
    assert all(e.name == "bml" for e in governor.events)
    # Quota reductions halve down toward the floor.
    api = sim.kernel.userspace_api()
    assert api.cpu_quota(bml.pid) < 1.0
    assert api.cpu_quota(game.pids()[0]) == 1.0


def test_governor_migrate_back_reverses_to_little_events():
    bml = basicmath_large()
    sim = Simulation(odroid_xu3(), [bml], kernel_config=KernelConfig(), seed=1)
    governor = ApplicationAwareGovernor.for_simulation(
        sim, GovernorConfig(
            t_limit_c=60.0, horizon_s=300.0, migrate_back=True,
            back_margin_c=2.0, back_dwell_s=1.0,
        ),
    )
    governor.install(sim.kernel)
    sim.run(60.0)
    directions = [e.direction for e in governor.events]
    assert directions[0] == "to_little"
    if "to_big" in directions:
        # Each return must follow a demotion.
        assert directions.index("to_big") > directions.index("to_little")


def test_prediction_records_power_split():
    sim = Simulation(odroid_xu3(), [basicmath_large()], kernel_config=KernelConfig(), seed=1)
    governor = ApplicationAwareGovernor.for_simulation(
        sim, GovernorConfig(t_limit_c=90.0)
    )
    governor.install(sim.kernel)
    sim.run(3.0)
    pred = governor.predictions[-1]
    assert pred.p_total_w > pred.p_dyn_w > 0.0  # leakage subtracted


def test_platform_extras_survive():
    odroid = odroid_xu3()
    assert odroid.extras["fan"] == "disabled"
    nexus = nexus6p()
    assert nexus.extras["soc"] == "Snapdragon 810"


def test_simulation_now_property():
    sim = Simulation(odroid_xu3(), kernel_config=KernelConfig(), seed=1)
    assert sim.now_s == 0.0
    sim.step()
    assert sim.now_s == pytest.approx(0.01)
