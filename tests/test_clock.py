"""Clock and PeriodicTimer behaviour."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.clock import Clock, PeriodicTimer


def test_clock_starts_at_zero():
    clock = Clock(0.01)
    assert clock.now == 0.0
    assert clock.tick == 0


def test_clock_advances_by_dt():
    clock = Clock(0.01)
    clock.advance()
    assert clock.now == pytest.approx(0.01)
    for _ in range(99):
        clock.advance()
    assert clock.now == pytest.approx(1.0)


def test_clock_time_has_no_drift():
    clock = Clock(0.01)
    for _ in range(100_000):
        clock.advance()
    assert clock.now == pytest.approx(1000.0, abs=1e-6)


def test_clock_rejects_nonpositive_dt():
    with pytest.raises(ConfigurationError):
        Clock(0.0)
    with pytest.raises(ConfigurationError):
        Clock(-0.1)


def test_timer_fires_once_per_period():
    clock = Clock(0.01)
    timer = PeriodicTimer(clock, 0.1)
    fires = 0
    for _ in range(100):
        if timer.poll():
            fires += 1
        clock.advance()
    assert fires == 10


def test_timer_fires_immediately_at_phase_zero():
    clock = Clock(0.01)
    timer = PeriodicTimer(clock, 0.1)
    assert timer.poll() is True
    assert timer.poll() is False


def test_timer_with_phase_delays_first_fire():
    clock = Clock(0.01)
    timer = PeriodicTimer(clock, 0.1, phase=0.05)
    fired_at = []
    for _ in range(20):
        if timer.poll():
            fired_at.append(clock.now)
        clock.advance()
    assert fired_at[0] == pytest.approx(0.05)


def test_timer_period_not_multiple_of_dt():
    clock = Clock(0.01)
    timer = PeriodicTimer(clock, 0.025)
    fires = 0
    for _ in range(100):  # 1 second
        if timer.poll():
            fires += 1
        clock.advance()
    assert fires == pytest.approx(40, abs=1)


def test_timer_does_not_burst_after_gap():
    clock = Clock(0.01)
    timer = PeriodicTimer(clock, 0.05)
    timer.poll()
    for _ in range(50):  # skip 0.5 s without polling
        clock.advance()
    assert timer.poll() is True
    assert timer.poll() is False  # catches up without a burst


def test_timer_rejects_bad_parameters():
    clock = Clock(0.01)
    with pytest.raises(ConfigurationError):
        PeriodicTimer(clock, 0.0)
    with pytest.raises(ConfigurationError):
        PeriodicTimer(clock, 0.1, phase=-1.0)


def test_timer_reset_rearms_one_period_out():
    clock = Clock(0.01)
    timer = PeriodicTimer(clock, 0.1)
    timer.poll()
    timer.reset()
    assert timer.next_deadline == pytest.approx(clock.now + 0.1)


def test_timer_reset_into_past_rejected():
    clock = Clock(0.01)
    for _ in range(10):
        clock.advance()
    timer = PeriodicTimer(clock, 0.1)
    with pytest.raises(SimulationError):
        timer.reset(phase=0.01)


def test_ticks_for_duration_is_float_dust_proof():
    from repro.sim.clock import ticks_for_duration

    # A million 0.1 ms steps: the naive end-time comparison loses ticks
    # to accumulated float error; the counted loop must not.
    assert ticks_for_duration(100.0, 1e-4) == 10**6
    # Chunked scheduling sums to exactly the one-shot count, whatever the
    # chunk size — the invariant Simulation.run and BatchSimulation rely
    # on for continuation runs.
    for chunk, n in ((0.1, 1000), (0.25, 400), (1.0, 100)):
        assert sum(ticks_for_duration(chunk, 1e-4) for _ in range(n)) == 10**6
    # Representative awkward dt: 0.01 is not a binary float, so repeated
    # addition drifts, but the tick count never does.
    assert ticks_for_duration(10.0, 0.01) == 1000
    assert sum(ticks_for_duration(0.07, 0.01) for _ in range(1000)) == 7000
