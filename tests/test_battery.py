"""Battery model and engine integration."""

import math

import pytest

from repro.apps.mibench import basicmath_large
from repro.errors import ConfigurationError, SimulationError
from repro.kernel.kernel import KernelConfig
from repro.power.battery import NEXUS6P_CAPACITY_WH, Battery
from repro.sim.engine import Simulation
from repro.soc.snapdragon810 import nexus6p


def test_starts_full():
    battery = Battery(capacity_wh=10.0)
    assert battery.soc == 1.0
    assert battery.remaining_wh == 10.0
    assert not battery.empty


def test_drain_accounting():
    battery = Battery(capacity_wh=10.0)
    battery.drain(5.0, 3600.0)  # 5 W for one hour
    assert battery.remaining_wh == pytest.approx(5.0)
    assert battery.soc == pytest.approx(0.5)


def test_drain_clamps_at_empty():
    battery = Battery(capacity_wh=1.0)
    battery.drain(100.0, 3600.0)
    assert battery.remaining_wh == 0.0
    assert battery.empty


def test_time_to_empty():
    battery = Battery(capacity_wh=10.0)
    assert battery.time_to_empty_s(5.0) == pytest.approx(7200.0)
    assert battery.time_to_empty_s(0.0) == math.inf


def test_recharge():
    battery = Battery(capacity_wh=10.0, initial_soc=0.2)
    battery.recharge()
    assert battery.soc == 1.0
    battery.recharge(0.5)
    assert battery.soc == 0.5


def test_validation():
    with pytest.raises(ConfigurationError):
        Battery(capacity_wh=0.0)
    with pytest.raises(ConfigurationError):
        Battery(initial_soc=1.5)
    battery = Battery()
    with pytest.raises(SimulationError):
        battery.drain(-1.0, 1.0)
    with pytest.raises(SimulationError):
        battery.drain(1.0, 0.0)
    with pytest.raises(SimulationError):
        battery.time_to_empty_s(-1.0)


def test_engine_integration_drains_and_traces():
    battery = Battery(NEXUS6P_CAPACITY_WH)
    sim = Simulation(
        nexus6p(), [basicmath_large(cluster="a57")],
        kernel_config=KernelConfig(), seed=1, battery=battery,
    )
    sim.run(60.0)
    assert battery.soc < 1.0
    _, soc = sim.traces.series("battery.soc")
    assert soc[0] > soc[-1]
    # Rough plausibility: a phone gaming hard lasts hours, not minutes.
    _, watts = sim.traces.series("power.total")
    projected_h = battery.time_to_empty_s(float(watts.mean())) / 3600.0
    assert 1.0 < projected_h < 10.0
