"""Conservative and schedutil frequency governors."""

import pytest

from repro.apps.mibench import basicmath_large
from repro.errors import ConfigurationError
from repro.kernel.cpufreq.governors import (
    ConservativeGovernor,
    SchedutilGovernor,
    make_governor,
)
from repro.kernel.cpufreq.policy import DvfsPolicy
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3
from repro.soc.opp import OppTable


def make_policy(initial=200e6):
    opps = OppTable.from_pairs(
        [(200e6, 0.9), (400e6, 0.95), (800e6, 1.05), (1600e6, 1.25)]
    )
    return DvfsPolicy("cpu", opps, initial_freq_hz=initial)


def feed(policy, util, ticks=5):
    for _ in range(ticks):
        policy.account(0.01, util)


def test_conservative_steps_up_gradually():
    policy = make_policy(200e6)
    gov = ConservativeGovernor(freq_step=0.05)  # step = 80 MHz
    feed(policy, 1.0)
    gov.update(policy, 0.0)
    # One step of 80 MHz from 200 snaps up to 400 (the next OPP), not max.
    assert policy.cur_freq_hz == 400e6


def test_conservative_steps_down_gradually():
    policy = make_policy(1600e6)
    gov = ConservativeGovernor(freq_step=0.05)
    feed(policy, 0.05)
    gov.update(policy, 0.0)
    assert policy.cur_freq_hz == 800e6  # floor of 1520 MHz


def test_conservative_holds_in_band():
    policy = make_policy(800e6)
    gov = ConservativeGovernor()
    feed(policy, 0.5)
    gov.update(policy, 0.0)
    assert policy.cur_freq_hz == 800e6


def test_conservative_validation():
    with pytest.raises(ConfigurationError):
        ConservativeGovernor(up_threshold=0.2, down_threshold=0.8)
    with pytest.raises(ConfigurationError):
        ConservativeGovernor(freq_step=0.0)


def test_schedutil_tracks_utilisation():
    policy = make_policy(800e6)
    gov = SchedutilGovernor(headroom=1.25)
    feed(policy, 0.5)
    gov.update(policy, 0.0)
    # demand = 0.5 * 800 MHz * 1.25 = 500 MHz -> ceil to 800 MHz.
    assert policy.cur_freq_hz == 800e6
    feed(policy, 0.1)
    gov.update(policy, 0.1)
    # demand = 0.1 * 800 * 1.25 = 100 MHz -> lowest OPP.
    assert policy.cur_freq_hz == 200e6


def test_schedutil_saturates_at_max():
    policy = make_policy(1600e6)
    gov = SchedutilGovernor()
    feed(policy, 1.0)
    gov.update(policy, 0.0)
    assert policy.cur_freq_hz == 1600e6


def test_schedutil_validation():
    with pytest.raises(ConfigurationError):
        SchedutilGovernor(headroom=0.9)


def test_registry_contains_new_governors():
    assert make_governor("conservative").name == "conservative"
    assert make_governor("schedutil").name == "schedutil"


def test_schedutil_end_to_end_reaches_max_under_load():
    sim = Simulation(
        odroid_xu3(), [basicmath_large()],
        kernel_config=KernelConfig(cpu_governor="schedutil"), seed=1,
    )
    sim.run(3.0)
    assert sim.kernel.policies["a15"].cur_freq_hz == pytest.approx(2000e6)


def test_conservative_end_to_end_ramps_slower_than_interactive():
    def time_to_max(governor):
        sim = Simulation(
            odroid_xu3(), [basicmath_large()],
            kernel_config=KernelConfig(cpu_governor=governor), seed=1,
        )
        for _ in range(1000):
            sim.step()
            if sim.kernel.policies["a15"].cur_freq_hz >= 2000e6:
                return sim.now_s
        return float("inf")

    assert time_to_max("conservative") > time_to_max("interactive")
