"""CSV export of traces and FPS series."""

import csv

import pytest

from repro.analysis.export import fps_to_csv, traces_to_csv
from repro.apps.frames import FpsMeter
from repro.errors import AnalysisError
from repro.sim.trace import TraceRecorder


@pytest.fixture()
def traces():
    tr = TraceRecorder()
    for i in range(11):
        tr.record("temp.big", i * 0.1, 50.0 + i)
        tr.record("power.total", i * 0.1, 3.0)
    return tr


def test_traces_roundtrip(tmp_path, traces):
    path = tmp_path / "out.csv"
    rows = traces_to_csv(traces, path, grid_dt_s=0.1)
    assert rows == 11
    with path.open() as handle:
        reader = list(csv.reader(handle))
    assert reader[0] == ["time_s", "power.total", "temp.big"]
    assert float(reader[1][2]) == 50.0
    assert float(reader[-1][2]) == 60.0


def test_traces_channel_subset(tmp_path, traces):
    path = tmp_path / "out.csv"
    traces_to_csv(traces, path, channels=["temp.big"])
    header = path.read_text().splitlines()[0]
    assert header == "time_s,temp.big"


def test_traces_zoh_alignment(tmp_path):
    tr = TraceRecorder()
    tr.record("a", 0.0, 1.0)
    tr.record("a", 1.0, 2.0)
    tr.record("b", 0.5, 10.0)
    path = tmp_path / "out.csv"
    traces_to_csv(tr, path, grid_dt_s=0.5)
    rows = list(csv.reader(path.open()))
    # grid 0.0, 0.5, 1.0; columns are sorted channel names: a then b.
    assert rows[0] == ["time_s", "a", "b"]
    assert [r[0] for r in rows[1:]] == ["0.000", "0.500", "1.000"]
    assert [float(r[1]) for r in rows[1:]] == [1.0, 1.0, 2.0]
    assert [float(r[2]) for r in rows[1:]] == [10.0, 10.0, 10.0]


def test_traces_validation(tmp_path, traces):
    with pytest.raises(AnalysisError):
        traces_to_csv(TraceRecorder(), tmp_path / "x.csv")
    with pytest.raises(AnalysisError):
        traces_to_csv(traces, tmp_path / "x.csv", grid_dt_s=0.0)


def test_fps_export(tmp_path):
    meter = FpsMeter()
    for i in range(60):
        meter.record(i / 30.0)  # 30 fps for 2 s
    path = tmp_path / "fps.csv"
    rows = fps_to_csv(meter, path, 0.0, 2.0)
    assert rows == 2
    data = list(csv.reader(path.open()))
    assert data[0] == ["bucket_start_s", "fps"]
    assert float(data[1][1]) == 30.0


def test_fps_export_empty(tmp_path):
    with pytest.raises(AnalysisError):
        fps_to_csv(FpsMeter(), tmp_path / "fps.csv")
