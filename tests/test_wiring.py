"""Sysfs/procfs wiring against a live kernel."""

import pytest

from repro.errors import SysfsError
from repro.kernel.kernel import Kernel, KernelConfig, ThermalConfig
from repro.kernel.thermal.zone import TripPoint
from repro.kernel.wiring import policy_dir
from repro.sim.clock import Clock
from repro.sim.rng import RngRegistry
from repro.soc.exynos5422 import odroid_xu3
from repro.thermal.model import ThermalModel


@pytest.fixture()
def kernel():
    platform = odroid_xu3()
    clock = Clock(0.01)
    model = ThermalModel(
        platform.thermal, 0.01, ambient_k=platform.default_ambient_k,
        initial_k=platform.initial_temp_k,
    )
    cfg = KernelConfig(
        thermal=ThermalConfig(
            kind="step_wise", sensor="soc_big", cooled=("a15", "gpu"),
            trips=(TripPoint(85.0),),
        )
    )
    return Kernel(platform, model, clock, RngRegistry(1), cfg)


def test_policy_dirs_use_first_cpu_index(kernel):
    assert policy_dir(kernel, "a7") == "/sys/devices/system/cpu/cpufreq/policy0"
    assert policy_dir(kernel, "a15") == "/sys/devices/system/cpu/cpufreq/policy4"


def test_scaling_cur_freq_in_khz(kernel):
    khz = kernel.fs.read_int(
        "/sys/devices/system/cpu/cpufreq/policy4/scaling_cur_freq"
    )
    assert khz == 200000


def test_available_frequencies(kernel):
    text = kernel.fs.read(
        "/sys/devices/system/cpu/cpufreq/policy4/scaling_available_frequencies"
    )
    freqs = [int(tok) for tok in text.split()]
    assert freqs[0] == 200000
    assert freqs[-1] == 2000000


def test_scaling_governor_roundtrip(kernel):
    path = "/sys/devices/system/cpu/cpufreq/policy4/scaling_governor"
    assert kernel.fs.read(path) == "interactive"
    kernel.fs.write(path, "performance")
    assert kernel.fs.read(path) == "performance"
    assert kernel.governors["a15"].name == "performance"


def test_scaling_max_freq_write_caps_policy(kernel):
    path = "/sys/devices/system/cpu/cpufreq/policy4/scaling_max_freq"
    kernel.fs.write(path, "1000000")
    assert kernel.policies["a15"].user_max_hz == pytest.approx(1000e6)


def test_scaling_setspeed_requires_userspace(kernel):
    path = "/sys/devices/system/cpu/cpufreq/policy4/scaling_setspeed"
    with pytest.raises(Exception):
        kernel.fs.write(path, "1000000")
    kernel.fs.write(
        "/sys/devices/system/cpu/cpufreq/policy4/scaling_governor", "userspace"
    )
    kernel.fs.write(path, "1000000")


def test_time_in_state_format(kernel):
    kernel.policies["a15"].account(0.5, 0.5)
    text = kernel.fs.read(
        "/sys/devices/system/cpu/cpufreq/policy4/stats/time_in_state"
    )
    lines = text.strip().splitlines()
    assert len(lines) == len(kernel.policies["a15"].opps)
    khz, ticks = lines[0].split()
    assert int(khz) == 200000
    assert int(ticks) == 50  # 0.5 s at USER_HZ = 100


def test_devfreq_nodes(kernel):
    assert kernel.fs.read_int("/sys/class/devfreq/gpu/cur_freq") == 177000000
    assert kernel.fs.read("/sys/class/devfreq/gpu/governor") == "adreno_tz"


def test_thermal_zone_types_sorted(kernel):
    types = [
        kernel.fs.read(f"/sys/class/thermal/thermal_zone{i}/type")
        for i in range(3)
    ]
    assert sorted(types) == ["board", "soc_big", "soc_gpu"]


def test_thermal_zone_temp_millicelsius(kernel):
    for i in range(3):
        mc = kernel.fs.read_int(f"/sys/class/thermal/thermal_zone{i}/temp")
        assert 40000 < mc < 60000  # initial 50 degC


def test_trip_points_exposed(kernel):
    # Find the governed zone by type.
    for i in range(3):
        if kernel.fs.read(f"/sys/class/thermal/thermal_zone{i}/type") == "soc_big":
            base = f"/sys/class/thermal/thermal_zone{i}"
            assert kernel.fs.read_int(f"{base}/trip_point_0_temp") == 85000
            return
    pytest.fail("governed zone not found")


def test_trip_point_millicelsius_rounds():
    # 56.7 * 1000 is 56699.999... in binary; the sysfs value must round
    # to 56700, not truncate to 56699 (see units.celsius_to_millicelsius).
    platform = odroid_xu3()
    model = ThermalModel(
        platform.thermal, 0.01, ambient_k=platform.default_ambient_k,
        initial_k=platform.initial_temp_k,
    )
    cfg = KernelConfig(
        thermal=ThermalConfig(
            kind="step_wise", sensor="soc_big", cooled=("a15",),
            trips=(TripPoint(56.7),),
        )
    )
    k = Kernel(platform, model, Clock(0.01), RngRegistry(1), cfg)
    for i in range(3):
        if k.fs.read(f"/sys/class/thermal/thermal_zone{i}/type") == "soc_big":
            base = f"/sys/class/thermal/thermal_zone{i}"
            assert k.fs.read_int(f"{base}/trip_point_0_temp") == 56700
            return
    pytest.fail("governed zone not found")


def test_cooling_device_nodes(kernel):
    assert kernel.fs.read_int("/sys/class/thermal/cooling_device0/cur_state") == 0
    max_state = kernel.fs.read_int("/sys/class/thermal/cooling_device0/max_state")
    assert max_state == len(kernel.policies["a15"].opps) - 1
    kernel.fs.write("/sys/class/thermal/cooling_device0/cur_state", "3")
    assert kernel.cooling_devices[0].cur_state == 3


def test_ina231_paths(kernel):
    kernel.update_power_readings({"a15": 1.0, "a7": 0.1, "gpu": 0.5, "mem": 0.2}, 1.0)
    watts = kernel.fs.read_float("/sys/bus/i2c/drivers/INA231/4-0040/sensor_W")
    assert watts == pytest.approx(1.0, rel=0.1)


def test_generic_power_paths(kernel):
    kernel.update_power_readings({"a15": 1.0, "a7": 0.1, "gpu": 0.5, "mem": 0.2}, 1.0)
    watts = kernel.fs.read_float("/sys/class/power_sensors/gpu/power_w")
    assert watts == pytest.approx(0.5, rel=0.15)


def test_proc_comm_and_sched(kernel):
    task = kernel.spawn("bml", unbounded=True)
    assert kernel.fs.read(f"/proc/{task.pid}/comm") == "bml"
    sched = kernel.fs.read(f"/proc/{task.pid}/sched")
    assert "se.sum_exec_runtime" in sched
    assert "current_cluster : a15" in sched


def test_proc_stat_format(kernel):
    task = kernel.spawn("bml", unbounded=True)
    stat = kernel.fs.read(f"/proc/{task.pid}/stat")
    fields = stat.split()
    assert fields[0] == str(task.pid)
    assert fields[1] == "(bml)"


def test_proc_unknown_pid(kernel):
    with pytest.raises(SysfsError):
        kernel.fs.read("/proc/99999/comm")
