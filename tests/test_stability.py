"""Fixed-point function: concavity, roots, the paper's Figure 7 structure."""

import numpy as np
import pytest

from repro.core.fixed_point import (
    StabilityClass,
    analyze,
    critical_power_w,
    steady_state_temp_k,
)
from repro.core.stability import (
    ODROID_XU3_LUMPED,
    FixedPointFunction,
    LumpedThermalParams,
)
from repro.errors import StabilityError

P = ODROID_XU3_LUMPED


def test_params_validation():
    with pytest.raises(StabilityError):
        LumpedThermalParams(0.0, 1.0, 1e-3, 1650.0, 300.0)
    with pytest.raises(StabilityError):
        LumpedThermalParams(10.0, 1.0, -1e-3, 1650.0, 300.0)
    with pytest.raises(StabilityError):
        LumpedThermalParams(10.0, 1.0, 1e-3, 1650.0, -1.0)


def test_aux_temperature_inverse_relation():
    # Higher auxiliary temperature corresponds to a lower temperature.
    assert P.aux_from_temp(300.0) > P.aux_from_temp(400.0)
    assert P.temp_from_aux(P.aux_from_temp(333.0)) == pytest.approx(333.0)


def test_leakage_monotone_in_temperature():
    assert P.leakage_w(360.0) > P.leakage_w(320.0)


def test_function_concave_on_grid():
    func = FixedPointFunction.from_lumped(P, 3.0)
    x = np.linspace(0.5, 8.0, 400)
    f = np.array([func(xi) for xi in x])
    second = np.diff(f, 2)
    assert (second < 1e-9).all()


def test_derivative_matches_numeric():
    func = FixedPointFunction.from_lumped(P, 3.0)
    for x in (1.0, 3.0, 5.0):
        h = 1e-6
        numeric = (func(x + h) - func(x - h)) / (2 * h)
        assert func.derivative(x) == pytest.approx(numeric, rel=1e-5)


def test_two_roots_at_2w():
    report = analyze(P, 2.0)
    assert report.classification is StabilityClass.STABLE
    assert report.stable_aux > report.unstable_aux
    assert report.stable_temp_k < report.unstable_temp_k


def test_critical_at_5_5w():
    # The paper's Figure 7b: the roots merge at 5.5 W.
    assert critical_power_w(P) == pytest.approx(5.5, abs=0.01)


def test_no_roots_at_8w():
    report = analyze(P, 8.0)
    assert report.classification is StabilityClass.RUNAWAY
    assert report.stable_temp_k is None
    assert not report.is_stable


def test_function_moves_down_with_power():
    f_low = FixedPointFunction.from_lumped(P, 2.0)
    f_high = FixedPointFunction.from_lumped(P, 6.0)
    for x in np.linspace(1.0, 6.0, 20):
        assert f_high(x) < f_low(x)


def test_roots_are_actual_zeros():
    func = FixedPointFunction.from_lumped(P, 2.0)
    for root in func.roots():
        assert func(root) == pytest.approx(0.0, abs=1e-9)


def test_stable_root_has_negative_slope():
    func = FixedPointFunction.from_lumped(P, 2.0)
    x_unstable, x_stable = func.roots()
    assert func.derivative(x_stable) < 0.0
    assert func.derivative(x_unstable) > 0.0


def test_steady_state_temp_monotone_in_power():
    temps = [steady_state_temp_k(P, p) for p in (1.0, 2.0, 3.0, 4.0, 5.0)]
    assert all(b > a for a, b in zip(temps, temps[1:]))


def test_steady_state_above_ambient():
    assert steady_state_temp_k(P, 1.0) > P.t_ambient_k


def test_steady_state_raises_on_runaway():
    with pytest.raises(StabilityError):
        steady_state_temp_k(P, 8.0)


def test_steady_state_is_self_consistent():
    # T = T_a + R * (P_dyn + P_leak(T)) must hold at the fixed point.
    t_ss = steady_state_temp_k(P, 3.0)
    rhs = P.t_ambient_k + P.r_k_per_w * (3.0 + P.leakage_w(t_ss))
    assert t_ss == pytest.approx(rhs, abs=1e-6)


def test_critical_power_scales_inverse_with_resistance():
    import dataclasses
    better_cooling = dataclasses.replace(P, r_k_per_w=P.r_k_per_w / 2.0)
    assert critical_power_w(better_cooling) > critical_power_w(P)


def test_negative_power_rejected():
    with pytest.raises(StabilityError):
        FixedPointFunction.from_lumped(P, -1.0)


def test_paper_x_range_shows_both_roots_at_2w():
    # Figure 7a plots the auxiliary range [2, 6]; both roots lie inside it.
    func = FixedPointFunction.from_lumped(P, 2.0)
    x_unstable, x_stable = func.roots()
    assert 2.0 < x_unstable < 6.0
    assert 2.0 < x_stable < 6.0
