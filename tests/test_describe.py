"""Thermal-network description rendering."""

from repro.soc.exynos5422 import odroid_xu3
from repro.soc.snapdragon810 import nexus6p
from repro.thermal.describe import describe_network


def test_describe_odroid_network():
    text = describe_network(odroid_xu3().thermal)
    assert "Thermal network:" in text
    for node in ("big", "little", "gpu", "mem", "board"):
        assert node in text
    assert "dominant time constant" in text


def test_describe_contains_resistances():
    text = describe_network(odroid_xu3().thermal)
    # The big node's junction-to-ambient resistance is in the 10-16 band.
    for line in text.splitlines():
        if line.strip().startswith("big ") and "R_to_ambient" in line:
            value = float(line.split("R_to_ambient =")[1].split("K/W")[0])
            assert 10.0 < value < 16.0
            return
    raise AssertionError("big node line not found")


def test_describe_power_splits():
    text = describe_network(nexus6p().thermal)
    assert "a57" in text
    assert "100%" in text


def test_describe_links_include_resistance():
    text = describe_network(nexus6p().thermal)
    assert "G =" in text and "(R =" in text
