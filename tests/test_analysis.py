"""Analysis helpers: residency, breakdowns, tables, series."""

import numpy as np
import pytest

from repro.analysis.breakdown import breakdown_delta, breakdown_from_traces
from repro.analysis.figures import Series, summarize
from repro.analysis.residency import (
    mean_frequency_khz,
    parse_time_in_state,
    residency_fractions,
    residency_shift,
    top_frequency_share,
)
from repro.analysis.tables import percent_reduction, render_table
from repro.errors import AnalysisError
from repro.sim.trace import TraceRecorder


def test_residency_fractions_normalise():
    res = residency_fractions({200000: 1.0, 400000: 3.0})
    assert res[200000] == pytest.approx(0.25)
    assert sum(res.values()) == pytest.approx(1.0)


def test_residency_empty_raises():
    with pytest.raises(AnalysisError):
        residency_fractions({200000: 0.0})


def test_parse_time_in_state():
    text = "200000 100\n400000 300\n"
    parsed = parse_time_in_state(text)
    assert parsed == {200000: 1.0, 400000: 3.0}


def test_parse_time_in_state_malformed():
    with pytest.raises(AnalysisError):
        parse_time_in_state("garbage line here\n")
    with pytest.raises(AnalysisError):
        parse_time_in_state("")


def test_mean_frequency():
    res = {200000: 0.5, 600000: 0.5}
    assert mean_frequency_khz(res) == pytest.approx(400000)


def test_top_frequency_share():
    res = {100000: 0.5, 200000: 0.3, 300000: 0.2}
    assert top_frequency_share(res, n_top=2) == pytest.approx(0.5)


def test_residency_shift_positive_when_throttled():
    before = {200000: 0.2, 600000: 0.8}
    after = {200000: 0.8, 600000: 0.2}
    assert residency_shift(before, after) > 0.0


def test_breakdown_from_traces():
    tr = TraceRecorder()
    for t in range(10):
        tr.record("power.a", float(t), 3.0)
        tr.record("power.b", float(t), 1.0)
    bd = breakdown_from_traces(tr, ("a", "b"))
    assert bd.total_w == pytest.approx(4.0)
    assert bd.shares["a"] == pytest.approx(0.75)
    assert bd.share_pct("a") == pytest.approx(75.0)


def test_breakdown_window_filters():
    tr = TraceRecorder()
    for t in range(10):
        tr.record("power.a", float(t), 1.0 if t < 5 else 9.0)
    bd = breakdown_from_traces(tr, ("a",), start_s=5.0)
    assert bd.total_w == pytest.approx(9.0)


def test_breakdown_missing_rail():
    tr = TraceRecorder()
    tr.record("power.a", 0.0, 1.0)
    with pytest.raises(AnalysisError):
        breakdown_from_traces(tr, ("a", "zz"))
    bd = breakdown_from_traces(tr, ("a",))
    with pytest.raises(AnalysisError):
        bd.share_pct("zz")


def test_breakdown_delta():
    tr = TraceRecorder()
    tr.record("power.a", 0.0, 1.0)
    tr.record("power.b", 0.0, 1.0)
    before = breakdown_from_traces(tr, ("a", "b"))
    tr2 = TraceRecorder()
    tr2.record("power.a", 0.0, 3.0)
    tr2.record("power.b", 0.0, 1.0)
    after = breakdown_from_traces(tr2, ("a", "b"))
    assert breakdown_delta(before, after, "a") == pytest.approx(25.0)


def test_render_table_alignment():
    text = render_table(["App", "FPS"], [["paperio", 35.0], ["x", 2]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "App" in lines[1] and "FPS" in lines[1]
    assert len(lines) == 5


def test_render_table_width_mismatch():
    with pytest.raises(AnalysisError):
        render_table(["a"], [["x", "y"]])
    with pytest.raises(AnalysisError):
        render_table([], [])


def test_percent_reduction():
    assert percent_reduction(35.0, 23.0) == pytest.approx(34.3, abs=0.1)
    with pytest.raises(AnalysisError):
        percent_reduction(0.0, 1.0)


def test_series_queries():
    s = Series("t", np.array([0.0, 1.0, 2.0]), np.array([10.0, 20.0, 30.0]))
    assert s.at(0.5) == 20.0
    assert s.at(99.0) == 30.0
    assert s.max() == 30.0
    assert s.final() == 30.0


def test_series_validation():
    with pytest.raises(AnalysisError):
        Series("t", np.array([0.0]), np.array([1.0, 2.0]))


def test_summarize_contains_checkpoints():
    s = Series("temp", np.array([0.0, 10.0]), np.array([30.0, 50.0]))
    text = summarize(s, (0.0, 10.0))
    assert "temp" in text and "max=50.0" in text
