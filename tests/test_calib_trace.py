"""CalibTrace/FitReport wire formats: round-trips, loaders, error taxonomy."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calib import (
    CALIB_TRACE_FORMAT,
    CalibSegment,
    CalibTrace,
    trace_from_daq,
    trace_from_recorder,
    trace_from_sysfs_log,
)
from repro.calib.fit import FitReport, StageFit
from repro.errors import AnalysisError, CalibrationError
from repro.power.daq import PowerDaq

# ------------------------------------------------------------ strategies

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789._-", min_size=1, max_size=12
)
_values = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


@st.composite
def _channels(draw):
    n_channels = draw(st.integers(1, 4))
    out = {}
    for _ in range(n_channels):
        name = draw(_names)
        n = draw(st.integers(1, 20))
        times = sorted(draw(st.lists(
            st.floats(0.0, 1e4, allow_nan=False), min_size=n, max_size=n,
        )))
        values = draw(st.lists(_values, min_size=n, max_size=n))
        out[name] = (times, values)
    return out


@st.composite
def _segments(draw):
    segs = []
    for _ in range(draw(st.integers(0, 3))):
        start = draw(st.floats(0.0, 100.0, allow_nan=False))
        length = draw(st.floats(0.001, 50.0, allow_nan=False))
        segs.append(CalibSegment(
            name=draw(_names),
            kind=draw(st.sampled_from(("staircase", "soak", "cooldown"))),
            start_s=start,
            end_s=start + length,
            domain=draw(st.sampled_from(("", "a7", "gpu"))),
        ))
    return segs


@st.composite
def _stage_fits(draw):
    stages = []
    seen = set()
    for _ in range(draw(st.integers(0, 4))):
        name = draw(_names)
        if name in seen:
            continue
        seen.add(name)
        stages.append(StageFit(
            stage=name,
            params=draw(st.dictionaries(_names, _values, max_size=3)),
            residual_rms=draw(st.floats(0.0, 10.0, allow_nan=False)),
            n_samples=draw(st.integers(0, 1000)),
            diagnostics=draw(st.dictionaries(_names, _values, max_size=2)),
        ))
    return stages


# ------------------------------------------------------------ round-trips


@given(
    channels=_channels(),
    segments=_segments(),
    ambient=st.floats(-20.0, 60.0, allow_nan=False),
    hint=st.one_of(st.just(""), _names),
)
@settings(max_examples=60, deadline=None)
def test_trace_json_round_trip(channels, segments, ambient, hint):
    trace = CalibTrace(
        channels=channels,
        segments=segments,
        ambient_c=ambient,
        platform_hint=hint,
        meta={"platform": hint, "note": "rt"},
    )
    again = CalibTrace.from_json(trace.to_json())
    assert again == trace
    # And the dict form is JSON-native (no numpy scalars/arrays).
    json.dumps(trace.to_dict())


@given(
    stages=_stage_fits(),
    hint=_names,
    warnings=st.lists(_names, max_size=3),
)
@settings(max_examples=60, deadline=None)
def test_fit_report_json_round_trip(stages, hint, warnings):
    report = FitReport(platform_hint=hint, stages=stages, warnings=warnings)
    again = FitReport.from_json(report.to_json())
    assert again == report
    assert again.stage_names() == report.stage_names()


def test_trace_format_version_checked():
    trace = CalibTrace(channels={"power.total": ([0.0, 1.0], [1.0, 2.0])})
    data = trace.to_dict()
    assert data["format"] == CALIB_TRACE_FORMAT
    data["format"] = "repro.calib.trace/999"
    with pytest.raises(CalibrationError, match="unsupported trace format"):
        CalibTrace.from_dict(data)


def test_report_format_version_checked():
    report = FitReport(platform_hint="x", stages=())
    data = report.to_dict()
    data["format"] = "nope"
    with pytest.raises(CalibrationError, match="unsupported fit-report"):
        FitReport.from_dict(data)


def test_report_rejects_duplicate_stage_names():
    stage = StageFit(stage="dvfs.a7", params={}, residual_rms=0.0, n_samples=1)
    with pytest.raises(CalibrationError, match="duplicate"):
        FitReport(platform_hint="x", stages=(stage, stage))


def test_report_unknown_stage_lists_available():
    report = FitReport(platform_hint="x", stages=(
        StageFit(stage="rc", params={}, residual_rms=0.0, n_samples=1),
    ))
    with pytest.raises(CalibrationError, match="rc"):
        report.stage("dvfs.a7")


# ------------------------------------------------------- trace validation


def test_trace_rejects_empty_channel_set():
    with pytest.raises(CalibrationError, match="needs >= 1 channel"):
        CalibTrace(channels={})


def test_trace_rejects_ragged_channel():
    with pytest.raises(CalibrationError, match="times vs"):
        CalibTrace(channels={"power.total": ([0.0, 1.0], [1.0])})


def test_trace_rejects_non_finite_samples():
    with pytest.raises(CalibrationError, match="non-finite"):
        CalibTrace(channels={"power.total": ([0.0, 1.0], [1.0, float("nan")])})


def test_trace_rejects_backwards_time():
    with pytest.raises(CalibrationError, match="backwards"):
        CalibTrace(channels={"power.total": ([1.0, 0.0], [1.0, 2.0])})


def test_trace_unknown_channel_lists_available():
    trace = CalibTrace(channels={"power.total": ([0.0], [1.0])})
    with pytest.raises(CalibrationError, match="power.total"):
        trace.series("temp.soc")


def test_segment_validation():
    with pytest.raises(CalibrationError, match="unknown kind"):
        CalibSegment(name="x", kind="warmup", start_s=0.0, end_s=1.0)
    with pytest.raises(CalibrationError, match="must exceed"):
        CalibSegment(name="x", kind="soak", start_s=1.0, end_s=1.0)


def test_window_and_segment_queries():
    trace = CalibTrace(
        channels={"power.total": ([0.0, 1.0, 2.0, 3.0], [1.0, 2.0, 3.0, 4.0])},
        segments=[
            CalibSegment(name="s1", kind="staircase", start_s=0.0, end_s=2.0,
                         domain="a7"),
            CalibSegment(name="c1", kind="cooldown", start_s=2.0, end_s=3.0),
        ],
    )
    times, values = trace.window("power.total", 1.0, 3.0)
    assert list(times) == [1.0, 2.0] and list(values) == [2.0, 3.0]
    assert len(trace.segments_of("staircase")) == 1
    assert trace.segments_of("staircase", domain="gpu") == ()
    assert trace.duration_s() == 3.0


# ------------------------------------------------------------- loaders


def test_trace_from_sysfs_log_interleaved_rows():
    rows = [
        {"t": 0.0, "channel": "temp.soc", "value": 30.0},
        json.dumps({"t": 0.0, "channel": "power.total", "value": 1.5}),
        {"t": 0.1, "channel": "temp.soc", "value": 30.1},
    ]
    trace = trace_from_sysfs_log(rows, platform_hint="dev")
    assert trace.names() == ["power.total", "temp.soc"]
    assert trace.series("temp.soc")[1].tolist() == [30.0, 30.1]


def test_trace_from_sysfs_log_row_errors():
    with pytest.raises(CalibrationError, match="row 0: malformed JSON"):
        trace_from_sysfs_log(["{not json"])
    with pytest.raises(CalibrationError, match="row 1: missing key 'value'"):
        trace_from_sysfs_log([
            {"t": 0.0, "channel": "a", "value": 1.0},
            {"t": 0.1, "channel": "a"},
        ])
    with pytest.raises(CalibrationError, match="no rows"):
        trace_from_sysfs_log([])


def test_trace_from_recorder_via_simulation(odroid_sim):
    odroid_sim.run(1.0)
    trace = trace_from_recorder(
        odroid_sim.traces, platform_hint="odroid-xu3",
        channels=["temp.big", "power.total"],
    )
    assert trace.names() == ["power.total", "temp.big"]
    assert trace.duration_s() > 0.0


# ------------------------------------------ error diagnostics & file loads


def test_calibration_error_renders_bracketed_context():
    """The locating-context suffix format is part of the operator contract."""
    err = CalibrationError(
        "too few clean pairs",
        channel="temp.soc",
        segment="soak",
        window_s=(1.0, 2.5),
    )
    assert str(err) == (
        "too few clean pairs [channel=temp.soc segment=soak window=1.000..2.500s]"
    )
    assert err.channel == "temp.soc"
    assert err.segment == "soak"
    assert err.window_s == (1.0, 2.5)


def test_calibration_error_partial_context():
    assert str(CalibrationError("boom")) == "boom"
    assert str(CalibrationError("boom", channel="power.a7")) == \
        "boom [channel=power.a7]"
    assert str(CalibrationError("boom", window_s=(0, 1))) == \
        "boom [window=0.000..1.000s]"


def test_load_trace_file_round_trip(tmp_path):
    from repro.calib import load_trace_file

    trace = CalibTrace(
        channels={"power.total": ([0.0, 1.0], [1.0, 2.0])},
        ambient_c=21.0,
        platform_hint="dev",
    )
    path = tmp_path / "trace.json"
    path.write_text(trace.to_json(indent=2))
    assert load_trace_file(path) == trace


def test_load_trace_file_missing_file(tmp_path):
    from repro.calib import load_trace_file

    with pytest.raises(CalibrationError, match="cannot read trace"):
        load_trace_file(tmp_path / "nope.json")


def test_load_trace_file_truncated_json_reports_position(tmp_path):
    from repro.calib import load_trace_file

    path = tmp_path / "cut.json"
    trace = CalibTrace(channels={"power.total": ([0.0, 1.0], [1.0, 2.0])})
    path.write_text(trace.to_json(indent=2)[:40])
    with pytest.raises(CalibrationError, match=r"malformed trace JSON.*line \d+ column \d+"):
        load_trace_file(path)
    # And the message leads with the offending path.
    with pytest.raises(CalibrationError, match="cut.json"):
        load_trace_file(path)


def test_load_trace_file_non_object(tmp_path):
    from repro.calib import load_trace_file

    path = tmp_path / "list.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(CalibrationError, match="must be an object"):
        load_trace_file(path)


def test_load_trace_file_schema_errors_carry_path(tmp_path):
    from repro.calib import load_trace_file

    path = tmp_path / "empty.json"
    path.write_text(json.dumps({"format": CALIB_TRACE_FORMAT}))
    with pytest.raises(CalibrationError, match="empty.json"):
        load_trace_file(path)


# ----------------------------------------------- PowerDaq edge behaviour


def _daq(noise=0.0):
    return PowerDaq(
        np.random.default_rng(0), sample_rate_hz=100.0, noise_std_w=noise
    )


def test_daq_empty_capture_raises_typed_error():
    daq = _daq()
    with pytest.raises(CalibrationError, match="no samples"):
        daq.mean_power_w()
    with pytest.raises(CalibrationError, match="at least two"):
        daq.energy_j()
    # CalibrationError subclasses AnalysisError: pre-existing catchers of
    # the old type keep working.
    with pytest.raises(AnalysisError):
        daq.mean_power_w()


def test_daq_empty_window_raises_typed_error():
    daq = _daq()
    daq.capture(0.0, 0.1, 1.0)
    with pytest.raises(CalibrationError, match="window contains no samples"):
        daq.mean_power_w(start_s=5.0, end_s=6.0)


def test_trace_from_daq_requires_two_samples():
    daq = _daq()
    daq.capture(0.0, 0.005, 1.0)  # one sample at t=0
    with pytest.raises(CalibrationError, match="fewer than two"):
        trace_from_daq(daq)
    daq.capture(0.005, 0.1, 2.0)
    trace = trace_from_daq(daq, platform_hint="dev")
    assert "power.total" in trace
