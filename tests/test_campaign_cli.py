"""The ``repro campaign`` subcommands, end to end through ``main``."""

import json

import pytest

from repro.campaign import PRESETS, CampaignRunner, ResultStore
from repro.cli import main
from repro.sim.experiment import AppSpec


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    """A store with the smoke preset fully cached (built once, reused)."""
    root = tmp_path_factory.mktemp("warm") / "store"
    report = CampaignRunner(PRESETS["smoke"](), ResultStore(root), jobs=2).run()
    assert report.ok
    return root


def campaign(*argv):
    return main(["campaign", *argv])


def test_run_then_cached_rerun(tmp_path, capsys):
    store = str(tmp_path / "store")
    spec = {
        "name": "cli-mini",
        "base": {
            "platform": "odroid-xu3",
            "apps": [{"kind": "catalog", "name": "stickman", "cluster": None}],
            "duration_s": 6.0,
        },
        "axes": [{"name": "seed", "values": [1, 2]}],
    }
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(spec))

    assert campaign("run", "--spec", str(spec_file), "--store", store) == 0
    out = capsys.readouterr().out
    assert "2 run(s): 2 completed" in out

    assert campaign("run", "--spec", str(spec_file), "--store", store,
                    "--format", "json") == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["summary"] == {
        "total": 2, "cached": 2, "completed": 0, "failed": 0, "pending": 0,
    }


def test_status_and_results(warm_store, capsys):
    store = str(warm_store)
    assert campaign("status", "--preset", "smoke", "--store", store) == 0
    out = capsys.readouterr().out
    assert "4 run(s)" in out and "4 cached" in out

    assert campaign("results", "--preset", "smoke", "--store", store) == 0
    out = capsys.readouterr().out
    assert "median FPS" in out and "stickman=" in out
    assert "not cached" not in out

    assert campaign("results", "--preset", "smoke", "--store", store,
                    "--format", "json") == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["missing"] == []
    assert len(payload["results"]) == 4
    result = next(iter(payload["results"].values()))
    assert {"policy", "fps", "peak_temp_c", "breakdown"} <= set(result)


def test_results_reports_missing_runs(tmp_path, capsys):
    assert campaign("results", "--preset", "smoke",
                    "--store", str(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "4 run(s) not cached yet" in out


def test_resume_requires_a_manifest(tmp_path):
    with pytest.raises(SystemExit):
        campaign("run", "--preset", "smoke", "--store", str(tmp_path),
                 "--resume")


def test_resume_on_warm_store_is_all_cached(warm_store, capsys):
    assert campaign("run", "--preset", "smoke", "--store", str(warm_store),
                    "--resume", "--format", "json") == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["cached"] == 4


def test_spec_and_preset_are_mutually_exclusive(tmp_path):
    with pytest.raises(SystemExit):
        campaign("run", "--preset", "smoke", "--spec", "x.json",
                 "--store", str(tmp_path))
    with pytest.raises(SystemExit):
        campaign("run", "--store", str(tmp_path))


def test_unknown_preset_and_bad_spec_files(tmp_path):
    with pytest.raises(SystemExit):
        campaign("status", "--preset", "nope", "--store", str(tmp_path))
    with pytest.raises(SystemExit):
        campaign("status", "--spec", str(tmp_path / "missing.json"),
                 "--store", str(tmp_path))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit):
        campaign("status", "--spec", str(bad), "--store", str(tmp_path))


def test_failed_campaign_exits_nonzero(tmp_path, capsys):
    spec = {
        "name": "cli-slow",
        "base": {
            "platform": "odroid-xu3",
            "apps": [{"kind": "catalog", "name": "stickman", "cluster": None}],
            "duration_s": 3600.0,
        },
        "axes": [{"name": "seed", "values": [1]}],
    }
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(spec))
    code = campaign("run", "--spec", str(spec_file),
                    "--store", str(tmp_path / "store"), "--timeout", "0.1")
    assert code == 1
    assert "timeout" in capsys.readouterr().out


def test_presets_expand():
    for name, factory in PRESETS.items():
        spec = factory()
        runs = spec.expand()
        assert len(runs) == spec.size >= 2, name
        assert all(isinstance(r.scenario.apps[0], AppSpec) for r in runs)
