"""Sensor fault injection and governor robustness against it."""

import pytest

from repro.apps.mibench import basicmath_large
from repro.core.governor import ApplicationAwareGovernor, GovernorConfig
from repro.errors import ConfigurationError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry
from repro.soc.exynos5422 import odroid_xu3
from repro.thermal.faults import DroppingSensor, SpikySensor, StuckSensor
from repro.thermal.model import ThermalModel
from repro.thermal.sensors import SensorSpec, TemperatureSensor
from repro.thermal.rc_network import (
    AMBIENT,
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)
from repro.units import celsius_to_kelvin


@pytest.fixture()
def sensor():
    spec = ThermalNetworkSpec(
        nodes=(ThermalNodeSpec("chip", 1.0),),
        links=(ThermalLinkSpec("chip", AMBIENT, 0.5),),
        power_split={"cpu": {"chip": 1.0}},
    )
    model = ThermalModel(spec, 0.01, ambient_k=celsius_to_kelvin(40.0))
    inner = TemperatureSensor(
        SensorSpec("tmu", node="chip", noise_std_c=0.0, quantization_c=0.0),
        model,
        RngRegistry(0).stream("s"),
    )
    return inner, model


def test_stuck_sensor_freezes(sensor):
    inner, model = sensor
    stuck = StuckSensor(inner)
    assert stuck.read_c() == pytest.approx(40.0)
    stuck.trigger()
    model.set_state({"chip": celsius_to_kelvin(80.0)})
    assert stuck.read_c() == pytest.approx(40.0)
    assert stuck.stuck
    stuck.clear()
    assert stuck.read_c() == pytest.approx(80.0)


def test_spiky_sensor_statistics(sensor):
    inner, _ = sensor
    spiky = SpikySensor(
        inner, RngRegistry(1).stream("f"), spike_probability=0.3,
        spike_magnitude_c=20.0,
    )
    readings = [spiky.read_c() for _ in range(1000)]
    assert spiky.spikes_emitted == pytest.approx(300, abs=60)
    assert max(readings) == pytest.approx(60.0)
    assert min(readings) == pytest.approx(40.0)


def test_dropping_sensor_repeats_last_good(sensor):
    inner, model = sensor
    dropping = DroppingSensor(
        inner, RngRegistry(1).stream("f"), drop_probability=1.0
    )
    first = dropping.read_c()
    model.set_state({"chip": celsius_to_kelvin(90.0)})
    # With p=1 every later read repeats the first good sample.
    assert dropping.read_c() == first
    assert dropping.drops == 1


def test_wrapper_exposes_identity(sensor):
    inner, _ = sensor
    stuck = StuckSensor(inner)
    assert stuck.name == "tmu"
    assert stuck.node == "chip"
    assert stuck.read_millicelsius() == 40000


def test_fault_validation(sensor):
    inner, _ = sensor
    rng = RngRegistry(0).stream("f")
    with pytest.raises(ConfigurationError):
        SpikySensor(inner, rng, spike_probability=1.5)
    with pytest.raises(ConfigurationError):
        SpikySensor(inner, rng, spike_magnitude_c=-1.0)
    with pytest.raises(ConfigurationError):
        DroppingSensor(inner, rng, drop_probability=-0.1)


def test_governor_survives_spiky_sensor():
    """Spikes cause at worst premature migrations — never crashes, and the
    foreground registry is still honoured."""
    bml = basicmath_large()
    sim = Simulation(odroid_xu3(), [bml], kernel_config=KernelConfig(), seed=1)
    # Wrap the governed sensor with a spiky fault.
    zone = sim.kernel.zones["soc_big"]
    zone.sensor = SpikySensor(
        zone.sensor, sim.rng.stream("fault"), spike_probability=0.05,
        spike_magnitude_c=30.0,
    )
    governor = ApplicationAwareGovernor.for_simulation(
        sim, GovernorConfig(t_limit_c=75.0, horizon_s=60.0)
    )
    # Point the governor's temperature reads at the faulty zone too.
    governor.install(sim.kernel)
    sim.run(30.0)
    assert len(governor.predictions) > 200  # kept running throughout


def test_governor_with_stuck_cold_sensor_underreacts():
    """A sensor stuck cold blinds the governor's *measured* temperature but
    the power-based fixed-point prediction still flags the violation — the
    analysis-side redundancy the paper's approach provides."""
    bml = basicmath_large()
    sim = Simulation(odroid_xu3(), [bml], kernel_config=KernelConfig(), seed=1)
    zone = sim.kernel.zones["soc_big"]
    stuck = StuckSensor(zone.sensor)
    zone.sensor = stuck
    governor = ApplicationAwareGovernor.for_simulation(
        sim, GovernorConfig(t_limit_c=60.0, horizon_s=300.0)
    )
    governor.install(sim.kernel)
    sim.run(1.0)
    stuck.trigger()  # freeze near the cold start
    sim.run(20.0)
    hot_predictions = [
        p for p in governor.predictions
        if p.stable_temp_c is not None and p.stable_temp_c > 60.0
    ]
    assert hot_predictions, "power-based prediction should still see trouble"
