"""Declarative SLO rules: grammar validation, evaluation, round-trips."""

import json
from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.obs.telemetry import (
    BUILTIN_SLOS,
    CampaignAggregator,
    SloRule,
    SloSpec,
    resolve_slo,
)


def aggregate(excesses=(), policy="none", crashed=0):
    agg = CampaignAggregator("slo-test")
    for i, excess in enumerate(excesses):
        agg.ingest(
            f"r{i}",
            SimpleNamespace(platform="odroid-xu3", policy=policy,
                            t_limit_c=50.0, faults=None),
            "completed",
            result=SimpleNamespace(peak_temp_c=50.0 + excess, fps={},
                                   failsafe_s=0.0),
        )
    for i in range(crashed):
        agg.ingest(
            f"x{i}",
            SimpleNamespace(platform="odroid-xu3", policy=policy,
                            t_limit_c=50.0, faults=None),
            "failed", failure_kind="crash",
        )
    return agg.aggregate()


# ------------------------------------------------------------------- rules


def test_rule_validation():
    with pytest.raises(ConfigurationError, match="aggregation"):
        SloRule("r", "excess_c", "p42", "<=", 1.0)
    with pytest.raises(ConfigurationError, match="operator"):
        SloRule("r", "excess_c", "p99", "!=", 1.0)
    with pytest.raises(ConfigurationError, match="series"):
        SloRule("r", "runs_crashed", "p99", "<=", 1.0)
    with pytest.raises(ConfigurationError, match="scalar"):
        SloRule("r", "excess_c", "value", "<=", 1.0)
    with pytest.raises(ConfigurationError, match="scoped"):
        SloRule("r", "runs_crashed", "value", "==", 0.0, policy="none")
    with pytest.raises(ConfigurationError, match="on_empty"):
        SloRule("r", "excess_c", "p99", "<=", 1.0, on_empty="warn")


def test_rule_describe():
    rule = SloRule("r", "excess_c", "p99", "<=", 0.25, policy="proposed")
    assert rule.describe() == "p99(excess_c) <= 0.25 [policy=proposed]"
    assert SloRule("r", "runs_crashed", "value", "==", 0.0).describe() == (
        "value(runs_crashed) == 0"
    )


def test_rule_aggregations_evaluate():
    agg = aggregate(excesses=[0.0, 1.0, 2.0, 3.0])
    cases = {
        "min": 0.0, "max": 3.0, "mean": 1.5, "count": 4.0,
        "p50": 1.0, "p90": 3.0, "p99": 3.0,
    }
    for name, expected in cases.items():
        outcome = SloRule("r", "excess_c", name, "==", expected).evaluate(agg)
        assert outcome.ok, f"{name}: {outcome.detail}"
        assert outcome.observed == expected


def test_rule_scoping_and_empty_series():
    agg = aggregate(excesses=[5.0], policy="none")
    scoped = SloRule("r", "excess_c", "p99", "<=", 1.0, policy="proposed")
    outcome = scoped.evaluate(agg)
    assert not outcome.ok  # default on_empty="breach"
    assert outcome.observed is None
    assert "no matching runs" in outcome.detail
    lenient = SloRule("r", "excess_c", "p99", "<=", 1.0,
                      policy="proposed", on_empty="pass")
    assert lenient.evaluate(agg).ok
    # count() of an empty scope is 0, not an empty-series outcome.
    counting = SloRule("r", "excess_c", "count", "==", 0.0,
                       policy="proposed")
    assert counting.evaluate(agg).ok


def test_scalar_rule():
    rule = SloRule("r", "runs_crashed", "value", "==", 0.0)
    assert rule.evaluate(aggregate(excesses=[0.0])).ok
    assert not rule.evaluate(aggregate(excesses=[0.0], crashed=1)).ok


def test_rule_round_trip():
    rule = SloRule("r", "excess_c", "p90", "<", 2.0, platform="nexus6p",
                   on_empty="pass")
    assert SloRule.from_dict(rule.to_dict()) == rule
    with pytest.raises(ConfigurationError, match="unknown SloRule field"):
        SloRule.from_dict({**rule.to_dict(), "bogus": 1})


# ------------------------------------------------------------------- specs


def test_spec_validation():
    with pytest.raises(ConfigurationError, match="at least one rule"):
        SloSpec(name="empty")
    rule = SloRule("dup", "excess_c", "p99", "<=", 1.0)
    with pytest.raises(ConfigurationError, match="duplicate"):
        SloSpec(name="dups", rules=(rule, rule))


def test_spec_evaluate_and_report():
    spec = SloSpec(name="s", rules=(
        SloRule("tight", "excess_c", "p99", "<=", 0.5),
        SloRule("loose", "excess_c", "p99", "<=", 100.0),
    ))
    report = spec.evaluate(aggregate(excesses=[2.0]))
    assert not report.ok
    assert [o.rule.name for o in report.breaches] == ["tight"]
    text = report.render_text()
    assert "[FAIL] tight" in text and "[ok ] loose" in text
    assert text.endswith("BREACH (1 rule(s))")
    payload = report.to_dict()
    assert payload["ok"] is False
    assert payload["rules"][0]["predicate"] == "p99(excess_c) <= 0.5"

    passing = spec.evaluate(aggregate(excesses=[0.0]))
    assert passing.ok and passing.render_text().endswith("PASS")


def test_spec_round_trip():
    spec = BUILTIN_SLOS["chaos-hardening"]
    assert SloSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ConfigurationError, match="schema"):
        SloSpec.from_dict({**spec.to_dict(), "schema": "bogus/1"})


# ----------------------------------------------------------------- resolve


def test_builtins_exist_and_pass_on_healthy_fleet():
    assert set(BUILTIN_SLOS) == {"chaos-hardening", "fps-protection"}
    healthy = aggregate(excesses=[0.0, 0.0])
    assert BUILTIN_SLOS["chaos-hardening"].evaluate(healthy).ok
    hot = aggregate(excesses=[3.0])
    assert not BUILTIN_SLOS["chaos-hardening"].evaluate(hot).ok


def test_resolve_slo(tmp_path):
    spec = BUILTIN_SLOS["fps-protection"]
    assert resolve_slo(spec) is spec
    assert resolve_slo("fps-protection") is spec
    assert resolve_slo(spec.to_dict()) == spec
    path = tmp_path / "custom.json"
    path.write_text(json.dumps(spec.to_dict()))
    assert resolve_slo(str(path)) == spec
    with pytest.raises(ConfigurationError, match="unknown SLO spec"):
        resolve_slo("no-such-spec")
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        resolve_slo(str(bad))
