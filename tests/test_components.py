"""Component spec validation and helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.components import ClusterSpec, GpuSpec, LeakageParams, MemorySpec
from repro.soc.opp import OppTable


@pytest.fixture()
def opps():
    return OppTable.from_pairs([(200e6, 0.9), (1000e6, 1.1)])


@pytest.fixture()
def leak():
    return LeakageParams(kappa_w_per_k2=1e-4, beta_k=1650.0)


def test_leakage_validation():
    with pytest.raises(ConfigurationError):
        LeakageParams(kappa_w_per_k2=-1.0, beta_k=1650.0)
    with pytest.raises(ConfigurationError):
        LeakageParams(kappa_w_per_k2=1e-4, beta_k=0.0)
    with pytest.raises(ConfigurationError):
        LeakageParams(kappa_w_per_k2=1e-4, beta_k=1650.0, v_ref=0.0)


def test_cluster_defaults_thermal_node_and_rail(opps, leak):
    spec = ClusterSpec("big", "A15", 4, opps, 1e-10, leak)
    assert spec.thermal_node == "big"
    assert spec.rail == "big"


def test_cluster_capacity_scales_with_ipc(opps, leak):
    spec = ClusterSpec("big", "A15", 4, opps, 1e-10, leak, ipc=2.0)
    assert spec.capacity_cycles(1e9, 0.01) == pytest.approx(2.0 * 1e9 * 4 * 0.01)


def test_cluster_validation(opps, leak):
    with pytest.raises(ConfigurationError):
        ClusterSpec("c", "t", 0, opps, 1e-10, leak)
    with pytest.raises(ConfigurationError):
        ClusterSpec("c", "t", 4, opps, 0.0, leak)
    with pytest.raises(ConfigurationError):
        ClusterSpec("c", "t", 4, opps, 1e-10, leak, idle_power_w=-1.0)
    with pytest.raises(ConfigurationError):
        ClusterSpec("c", "t", 4, opps, 1e-10, leak, ipc=0.0)


def test_gpu_capacity(opps, leak):
    spec = GpuSpec("gpu", "Mali", opps, 1e-9, leak)
    assert spec.capacity_cycles(600e6, 0.01) == pytest.approx(6e6)


def test_gpu_validation(opps, leak):
    with pytest.raises(ConfigurationError):
        GpuSpec("gpu", "Mali", opps, -1.0, leak)


def test_memory_defaults():
    spec = MemorySpec()
    assert spec.base_power_w >= 0.0
    assert spec.thermal_node == "mem"


def test_memory_validation():
    with pytest.raises(ConfigurationError):
        MemorySpec(base_power_w=-0.1)
