"""Markov phase models."""

import numpy as np
import pytest

from repro.apps.frames import FrameApp, FrameWorkload
from repro.apps.phases import (
    BROWSE_PHASES,
    GAME_PHASES,
    MarkovPhaseModel,
    Phase,
)
from repro.errors import ConfigurationError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry
from repro.soc.exynos5422 import odroid_xu3


def make_model(phases=GAME_PHASES, seed=0):
    return MarkovPhaseModel(phases, RngRegistry(seed).stream("phases"))


def test_phase_validation():
    with pytest.raises(ConfigurationError):
        Phase("x", demand_factor=0.0, mean_dwell_s=1.0)
    with pytest.raises(ConfigurationError):
        Phase("x", demand_factor=1.0, mean_dwell_s=0.0)
    with pytest.raises(ConfigurationError):
        MarkovPhaseModel([], RngRegistry(0).stream("x"))
    with pytest.raises(ConfigurationError):
        MarkovPhaseModel(
            [Phase("a", 1.0, 1.0), Phase("a", 2.0, 1.0)],
            RngRegistry(0).stream("x"),
        )


def test_single_phase_is_constant():
    model = make_model((Phase("only", 1.3, 5.0),))
    for t in (0.0, 100.0, 1e6):
        assert model.factor(t) == 1.3


def test_factors_come_from_declared_phases():
    model = make_model()
    allowed = {p.demand_factor for p in GAME_PHASES}
    for t in np.arange(0.0, 500.0, 0.5):
        assert model.factor(t) in allowed


def test_chain_actually_switches():
    model = make_model()
    seen = {model.factor(t) for t in np.arange(0.0, 500.0, 0.5)}
    assert len(seen) == len(GAME_PHASES)


def test_deterministic_per_seed():
    a = [make_model(seed=3).factor(t) for t in np.arange(0.0, 100.0, 1.0)]
    b = [make_model(seed=3).factor(t) for t in np.arange(0.0, 100.0, 1.0)]
    assert a == b


def test_dwell_times_roughly_exponential():
    model = make_model((Phase("a", 1.0, 2.0), Phase("b", 2.0, 2.0)))
    switches = 0
    last = model.factor(0.0)
    for t in np.arange(0.0, 2000.0, 0.1):
        cur = model.factor(t)
        if cur != last:
            switches += 1
            last = cur
    # Mean dwell 2 s over 2000 s -> about 1000 switches.
    assert 700 < switches < 1300


def test_frame_app_accepts_phase_model():
    app = FrameApp(
        "game",
        FrameWorkload(4e6, 5e6, target_fps=60.0, sigma=0.0),
        phases=BROWSE_PHASES,
    )
    sim = Simulation(odroid_xu3(), [app], kernel_config=KernelConfig(), seed=2)
    sim.run(30.0)
    assert app.fps.frame_count > 500
    # The phase factors must have been used at some point.
    allowed = {p.demand_factor for p in BROWSE_PHASES}
    assert app._phase_factor(sim.now_s) in allowed
