"""docs/ENGINE.md must match the engine and batch stepper it describes."""

import pathlib
import re

from repro.obs.profiler import STEP_PHASES
from repro.sim import batch
from repro.thermal.model import ThermalModel

DOC = pathlib.Path(__file__).parent.parent / "docs" / "ENGINE.md"


def test_doc_exists():
    assert DOC.exists(), "docs/ENGINE.md is part of the engine contract"


def test_integrator_modes_documented():
    text = DOC.read_text()
    for mode in ThermalModel.INTEGRATORS:
        assert f"`{mode}`" in text, f"integrator {mode!r} missing from the doc"
    # And no phantom modes: every documented backticked mode exists.
    section = text.split("## Integrator modes", 1)[1].split("##", 1)[0]
    documented = set(re.findall(r"^\* `([a-z0-9_]+)`", section, re.MULTILINE))
    assert documented == set(ThermalModel.INTEGRATORS)


def test_segment_constants_match():
    text = DOC.read_text()
    assert f"({batch.RAMP_TICKS} ticks)" in text
    assert f"{batch.SEGMENT_TICKS} ticks" in text


def test_documented_phases_exist():
    text = DOC.read_text()
    for phase in ("thermal_exact", "power_assemble", "batch_sync"):
        assert f"`{phase}`" in text
        assert phase in STEP_PHASES


def test_documented_entry_points_exist():
    from repro.sim.batch import BatchSimulation
    from repro.sim.experiment import run_scenarios_batched

    assert callable(run_scenarios_batched)
    assert hasattr(BatchSimulation, "run")
    assert hasattr(BatchSimulation, "run_each")
    # The CLI flag the doc promises.
    from repro.cli import build_parser

    parser = build_parser()
    text = parser.format_help()
    # Walk into `campaign run` to check --batch is wired.
    import argparse

    sub = next(a for a in parser._actions
               if isinstance(a, argparse._SubParsersAction))
    campaign = sub.choices["campaign"]
    action_sub = next(a for a in campaign._actions
                      if isinstance(a, argparse._SubParsersAction))
    run_flags = {
        flag
        for action in action_sub.choices["run"]._actions
        for flag in action.option_strings
    }
    assert "--batch" in run_flags


def test_default_engine_step_documented():
    from repro.sim.engine import Simulation
    import inspect

    dt_default = inspect.signature(Simulation.__init__).parameters["dt_s"].default
    assert dt_default == 0.01
    assert "10 ms" in DOC.read_text()
