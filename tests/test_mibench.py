"""MiBench batch workload model."""

import pytest

from repro.apps.mibench import BatchApp, basicmath_large
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3


def make_sim(apps):
    return Simulation(odroid_xu3(), apps, kernel_config=KernelConfig(), seed=1)


def test_bml_factory_name_and_placement():
    bml = basicmath_large()
    sim = make_sim([bml])
    assert bml.name == "bml"
    assert sim.kernel.task_cluster(bml.pid) == "a15"


def test_progress_grows_with_time():
    bml = basicmath_large()
    sim = make_sim([bml])
    sim.run(5.0)
    first = bml.progress_gigacycles()
    sim.run(5.0)
    assert bml.progress_gigacycles() > first > 0.0


def test_progress_slows_on_little_cluster():
    fast = basicmath_large()
    sim_fast = make_sim([fast])
    sim_fast.run(20.0)

    slow = basicmath_large(cluster="a7")
    sim_slow = make_sim([slow])
    sim_slow.run(20.0)

    # big A15 at 2 GHz, IPC 1.8 vs LITTLE A7 at 1.4 GHz, IPC 1.0.
    assert fast.progress_gigacycles() > 2.0 * slow.progress_gigacycles()


def test_metrics():
    bml = basicmath_large()
    sim = make_sim([bml])
    sim.run(2.0)
    metrics = bml.metrics()
    assert metrics["cluster"] == "a15"
    assert metrics["migrations"] == 0
    assert metrics["progress_gcycles"] > 0.0


def test_multithreaded_batch():
    wide = BatchApp("wide", n_threads=4)
    narrow = BatchApp("narrow", n_threads=1)
    sim_wide = make_sim([wide])
    sim_wide.run(10.0)
    sim_narrow = make_sim([narrow])
    sim_narrow.run(10.0)
    assert wide.progress_gigacycles() > 3.0 * narrow.progress_gigacycles()
