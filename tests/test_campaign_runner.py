"""Campaign runner: parallel determinism, caching, fault isolation.

These tests are the subsystem's acceptance criteria: a 12-run campaign
must produce byte-identical stores under ``jobs=1`` and ``jobs=4``, an
immediate re-run must execute zero simulations, a crashed worker must
take down only its own run, and ``--resume`` must execute exactly the
missing runs.
"""

import pytest

from repro.campaign import (
    Axis,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
)
from repro.campaign.runner import FAULT_ENV
from repro.errors import ConfigurationError, SimulationError
from repro.sim.experiment import AppSpec


def grid_spec(name="grid", seeds=(1, 2, 3)):
    """12 short, pairwise-distinct scenarios (2 policies x 3 seeds x 2 ambients)."""
    return CampaignSpec(
        name=name,
        base={
            "platform": "odroid-xu3",
            "apps": (AppSpec.catalog("stickman"), AppSpec.batch("bml")),
            "duration_s": 6.0,
        },
        axes=(
            Axis("policy", ("none", "stock")),
            Axis("seed", tuple(seeds)),
            Axis("ambient_c", (25.0, 30.0)),
        ),
    )


def store_bytes(store):
    """Map of relative object path -> file bytes."""
    objects = store.root / "objects"
    return {
        str(p.relative_to(objects)): p.read_bytes()
        for p in objects.glob("*/*.json")
    }


def test_runner_validation(tmp_path):
    spec = grid_spec()
    with pytest.raises(ConfigurationError):
        CampaignRunner(spec, tmp_path, jobs=0)
    with pytest.raises(ConfigurationError):
        CampaignRunner(spec, tmp_path, timeout_s=0.0)


def test_parallel_results_byte_identical_and_rerun_is_free(tmp_path):
    spec = grid_spec()
    assert spec.size == 12

    serial = CampaignRunner(spec, tmp_path / "serial", jobs=1)
    report = serial.run()
    assert report.ok and report.count("completed") == 12

    parallel = CampaignRunner(spec, tmp_path / "parallel", jobs=4)
    assert parallel.run().ok

    # Scheduling must not leak into the stored payloads.
    serial_objects = store_bytes(serial.store)
    assert len(serial_objects) == 12
    assert serial_objects == store_bytes(parallel.store)

    # Immediate re-run: every run served from the cache, zero simulations.
    again = CampaignRunner(spec, tmp_path / "parallel", jobs=4)
    report = again.run()
    assert report.ok
    assert report.count("cached") == 12
    labels = {"campaign": spec.name}
    assert again.metrics.value(
        "repro_campaign_runs_started_total", labels) == 0.0
    assert again.metrics.value(
        "repro_campaign_runs_cached_total", labels) == 12.0


def test_report_is_in_grid_order_regardless_of_scheduling(tmp_path):
    spec = grid_spec()
    runner = CampaignRunner(spec, tmp_path, jobs=4)
    report = runner.run()
    assert [r.run_id for r in report.records] == [
        run.run_id for run in runner.runs
    ]


def test_crashed_worker_only_kills_its_own_run(tmp_path, monkeypatch):
    spec = grid_spec(name="crashy")
    runner = CampaignRunner(spec, tmp_path, jobs=4)
    victim = runner.runs[5].run_id
    monkeypatch.setenv(FAULT_ENV, victim)

    report = runner.run()
    by_id = {r.run_id: r for r in report.records}
    assert by_id[victim].status == "failed"
    assert by_id[victim].failure.kind == "crash"
    others = [r for r in report.records if r.run_id != victim]
    assert len(others) == 11
    assert all(r.status == "completed" for r in others)
    assert not report.ok

    # Resume without the fault: exactly the missing run executes.
    monkeypatch.delenv(FAULT_ENV)
    resume = CampaignRunner(spec, tmp_path, jobs=4)
    report = resume.run()
    assert report.ok
    assert report.summary() == {
        "total": 12, "cached": 11, "completed": 1, "failed": 0, "pending": 0,
    }
    labels = {"campaign": spec.name}
    assert resume.metrics.value(
        "repro_campaign_runs_started_total", labels) == 1.0


def test_fault_env_ignored_on_inline_path(tmp_path, monkeypatch):
    """jobs=1 runs in-process; the crash hook must never fire there."""
    spec = grid_spec(name="inline", seeds=(1,))
    runner = CampaignRunner(spec, tmp_path, jobs=1)
    monkeypatch.setenv(FAULT_ENV, runner.runs[0].run_id)
    assert runner.run().ok


def test_simulation_error_is_a_structured_failure(tmp_path, monkeypatch):
    import repro.campaign.runner as runner_mod

    spec = grid_spec(name="raiser", seeds=(1,))
    runner = CampaignRunner(spec, tmp_path, jobs=1)
    doomed = runner.runs[0].scenario

    real = runner_mod._run_scenario

    def flaky(scenario, timeout_s):
        if scenario == doomed:
            raise SimulationError("thermal runaway in the model")
        return real(scenario, timeout_s)

    monkeypatch.setattr(runner_mod, "_run_scenario", flaky)
    report = runner.run()
    by_id = {r.run_id: r for r in report.records}
    failed = by_id[runner.runs[0].run_id]
    assert failed.status == "failed"
    assert failed.failure.kind == "exception"
    assert failed.failure.error_type == "SimulationError"
    assert "thermal runaway" in failed.failure.message
    # The other three runs of the wave completed and were cached.
    assert report.summary()["completed"] == 3
    assert not runner.store.has(runner.key_of(runner.runs[0]))


def test_timeout_records_a_timeout_failure(tmp_path):
    spec = CampaignSpec(
        name="slow",
        base={
            "platform": "odroid-xu3",
            "apps": (AppSpec.catalog("stickman"),),
            "duration_s": 3600.0,  # ~minutes of wall-clock if let run
        },
        axes=(Axis("seed", (1,)),),
    )
    runner = CampaignRunner(spec, tmp_path, jobs=1, timeout_s=0.1)
    report = runner.run()
    record = report.records[0]
    assert record.status == "failed"
    assert record.failure.kind == "timeout"
    assert "0.1" in record.failure.message
    assert not report.ok


def test_manifest_written_with_spec_and_summary(tmp_path):
    spec = grid_spec(name="manifested", seeds=(1,))
    runner = CampaignRunner(spec, tmp_path, jobs=1)
    report = runner.run()

    manifest = runner.store.load_campaign_manifest("manifested")
    assert manifest["schema"] == "repro.campaign/1"
    assert manifest["summary"] == report.summary()
    assert CampaignSpec.from_dict(manifest["spec"]) == spec
    assert set(manifest["runs"]) == {r.run_id for r in report.records}
    prom = (runner.store.campaign_dir("manifested") / "metrics.prom").read_text()
    assert 'repro_campaign_runs_completed_total{campaign="manifested"} 4' in prom


def test_status_and_results_do_not_execute(tmp_path):
    spec = grid_spec(name="census", seeds=(1,))
    runner = CampaignRunner(spec, tmp_path, jobs=1)
    assert all(r.status == "pending" for r in runner.status().records)
    assert runner.results() == {}
    runner.run()
    fresh = CampaignRunner(spec, tmp_path, jobs=1)
    assert all(r.status == "cached" for r in fresh.status().records)
    results = fresh.results()
    assert set(results) == {run.run_id for run in fresh.runs}
    assert all(res.peak_temp_c > 20.0 for res in results.values())


def test_batch_mode_stores_are_byte_identical(tmp_path):
    """--batch is pure execution strategy: stores match the scalar path
    bit for bit at any jobs count, and the cache contract is unchanged."""
    spec = grid_spec(name="batched")
    scalar = CampaignRunner(spec, tmp_path / "scalar", jobs=1)
    assert scalar.run().ok

    inline = CampaignRunner(spec, tmp_path / "inline", jobs=1, batch=True)
    assert inline.run().ok
    pooled = CampaignRunner(spec, tmp_path / "pooled", jobs=4, batch=True)
    assert pooled.run().ok

    reference = store_bytes(scalar.store)
    assert len(reference) == 12
    assert reference == store_bytes(inline.store)
    assert reference == store_bytes(pooled.store)

    # A batched campaign fills the same cache a scalar re-run reads.
    again = CampaignRunner(spec, tmp_path / "pooled", jobs=2)
    report = again.run()
    assert report.ok and report.count("cached") == 12


def test_batch_group_failure_falls_back_to_members(tmp_path, monkeypatch):
    """A poisoned batched group must fail only the bad member; the rest
    of the group completes through the per-member fallback."""
    import repro.campaign.runner as runner_mod

    spec = grid_spec(name="batch-raiser", seeds=(1,))
    runner = CampaignRunner(spec, tmp_path, jobs=1, batch=True)
    doomed = runner.runs[0].scenario

    real = runner_mod._run_scenario

    def flaky(scenario, timeout_s):
        if scenario == doomed:
            raise SimulationError("thermal runaway in the model")
        return real(scenario, timeout_s)

    real_batched = runner_mod._run_batched

    def batched_boom(scenarios, timeout_s):
        if any(s == doomed for s in scenarios):
            raise SimulationError("group poisoned")
        return real_batched(scenarios, timeout_s)

    monkeypatch.setattr(runner_mod, "_run_batched", batched_boom)
    monkeypatch.setattr(runner_mod, "_run_scenario", flaky)
    report = runner.run()
    by_id = {r.run_id: r for r in report.records}
    failed = by_id[runner.runs[0].run_id]
    assert failed.status == "failed"
    assert failed.failure.error_type == "SimulationError"
    assert report.summary()["completed"] == 3
    assert not runner.store.has(runner.key_of(runner.runs[0]))
