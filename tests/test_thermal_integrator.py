"""Properties of the exact (ZOH) thermal integrator and its Euler reference.

Three pillars (hypothesis-driven where the space is continuous):

* the exact integrator reproduces the closed-form single-node solution at
  any step size;
* it preserves the self-consistent thermal fixed points of
  :mod:`repro.core.stability` — sitting exactly on a fixed point and
  stepping goes nowhere;
* the forward-Euler reference converges to the exact stepper at first
  order as dt -> 0, and at the engine's 10 ms step the two stay within
  0.05 degC on every registered platform's stock scenario.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fixed_point import critical_power_w, steady_state_temp_k
from repro.core.stability import ODROID_XU3_LUMPED
from repro.errors import ConfigurationError
from repro.thermal.model import ThermalModel
from repro.thermal.rc_network import (
    AMBIENT,
    ThermalLinkSpec,
    ThermalNetworkSpec,
    ThermalNodeSpec,
)


def _single_node(cap_j_per_k: float, cond_w_per_k: float) -> ThermalNetworkSpec:
    return ThermalNetworkSpec(
        nodes=(ThermalNodeSpec("n0", cap_j_per_k),),
        links=(ThermalLinkSpec("n0", AMBIENT, cond_w_per_k),),
        power_split={"p": {"n0": 1.0}},
    )


@st.composite
def chains(draw):
    """A random chain network: node0 - node1 - ... - ambient."""
    n = draw(st.integers(1, 4))
    caps = [draw(st.floats(0.2, 20.0)) for _ in range(n)]
    conds = [draw(st.floats(0.05, 5.0)) for _ in range(n)]
    nodes = tuple(ThermalNodeSpec(f"n{i}", caps[i]) for i in range(n))
    links = [
        ThermalLinkSpec(f"n{i}", f"n{i + 1}", conds[i]) for i in range(n - 1)
    ]
    links.append(ThermalLinkSpec(f"n{n - 1}", AMBIENT, conds[-1]))
    return ThermalNetworkSpec(
        nodes=nodes, links=tuple(links), power_split={"p": {"n0": 1.0}}
    )


# ------------------------------------------------------------ exactness


@given(
    cap=st.floats(0.2, 20.0),
    cond=st.floats(0.05, 5.0),
    power=st.floats(0.0, 10.0),
    dt=st.floats(0.001, 30.0),
    steps=st.integers(1, 50),
)
@settings(max_examples=80, deadline=None)
def test_zoh_matches_closed_form_single_node(cap, cond, power, dt, steps):
    """One RC node has T(t) = T_ss + (T0 - T_ss) e^{-t/RC} exactly —
    the ZOH discretisation must land on it at ANY step size."""
    ambient = 300.0
    model = ThermalModel(_single_node(cap, cond), dt, ambient_k=ambient)
    for _ in range(steps):
        model.step({"p": power})
    t_ss = ambient + power / cond
    expected = t_ss + (ambient - t_ss) * math.exp(-cond * dt * steps / cap)
    assert model.temperature_k("n0") == pytest.approx(expected, abs=1e-8)


@given(power=st.floats(0.0, 10.0), dt=st.floats(0.001, 10.0))
@settings(max_examples=60, deadline=None)
def test_zoh_steady_state_is_step_invariant(power, dt):
    """Seeding the linear steady state and stepping must stay put."""
    model = ThermalModel(_single_node(3.0, 0.5), dt, ambient_k=300.0)
    ss = model.steady_state_k({"p": power})
    model.set_state(ss)
    for _ in range(5):
        model.step({"p": power})
    assert model.temperature_k("n0") == pytest.approx(ss["n0"], abs=1e-9)


@given(p_dyn=st.floats(0.0, 5.0))
@settings(max_examples=40, deadline=None)
def test_zoh_preserves_lumped_fixed_point(p_dyn):
    """The stable fixed point of the paper's lumped analysis (dynamic power
    plus self-consistent leakage) is a genuine rest point of the stepper."""
    params = ODROID_XU3_LUMPED
    assert p_dyn < critical_power_w(params)
    t_fp = steady_state_temp_k(params, p_dyn)
    spec = _single_node(params.c_j_per_k, 1.0 / params.r_k_per_w)
    model = ThermalModel(spec, 0.01, ambient_k=params.t_ambient_k)
    model.set_state({"n0": t_fp})
    # The engine's explicit leakage coupling: power re-evaluated per step
    # at the current temperature, which at the fixed point never moves.
    for _ in range(200):
        power = p_dyn + params.leakage_w(model.temperature_k("n0"))
        model.step({"p": power})
    assert model.temperature_k("n0") == pytest.approx(t_fp, abs=1e-6)


# ---------------------------------------------------------- convergence


@given(spec=chains(), power=st.floats(0.1, 10.0))
@settings(max_examples=40, deadline=None)
def test_euler_converges_to_zoh(spec, power):
    """Halving dt must (at least) halve Euler's error against the exact
    integrator over a fixed horizon — first-order convergence."""
    horizon = 2.0
    exact = ThermalModel(spec, horizon, ambient_k=300.0)
    exact.step({"p": power})
    reference = np.array(
        [exact.temperature_k(n) for n in exact.node_names]
    )

    def euler_error(dt):
        model = ThermalModel(spec, dt, ambient_k=300.0, integrator="euler")
        for _ in range(round(horizon / dt)):
            model.step({"p": power})
        temps = np.array([model.temperature_k(n) for n in model.node_names])
        return float(np.max(np.abs(temps - reference)))

    coarse = euler_error(0.01)
    fine = euler_error(0.005)
    # First-order: the ratio tends to 0.5 from above as dt -> 0; the 0.55
    # ceiling leaves room for the O(dt^2) correction terms.
    assert fine <= 0.55 * coarse + 1e-9


def test_unknown_integrator_rejected():
    with pytest.raises(ConfigurationError):
        ThermalModel(_single_node(1.0, 1.0), 0.01, integrator="rk4")


def test_non_hurwitz_network_rejected_for_both_integrators():
    # A node with no path to ambient makes A singular (eigenvalue at 0),
    # which the Hurwitz check at build time must refuse.
    spec = ThermalNetworkSpec(
        nodes=(ThermalNodeSpec("n0", 1.0), ThermalNodeSpec("n1", 1.0)),
        links=(ThermalLinkSpec("n0", AMBIENT, 1.0),),
        power_split={"p": {"n0": 1.0}},
    )
    for integrator in ThermalModel.INTEGRATORS:
        with pytest.raises(ConfigurationError):
            ThermalModel(spec, 0.01, integrator=integrator)


# ------------------------------------------------- whole-platform accuracy


@pytest.mark.parametrize("platform_name", ["odroid-xu3", "pixel-xl", "nexus6p"])
def test_euler_within_tolerance_on_stock_scenario(platform_name):
    """At the engine's 10 ms step the reference stepper tracks the exact
    one within 0.05 degC through a full stock scenario (governors, zones
    and leakage feedback included)."""
    from repro.kernel.kernel import KernelConfig
    from repro.sim.engine import Simulation
    from repro.sim.experiment import AppSpec
    from repro.soc import registry

    thermal = registry.get(platform_name).stock_thermal_config()
    traces = {}
    for integrator in ThermalModel.INTEGRATORS:
        sim = Simulation(
            registry.build(platform_name), [AppSpec.batch("bml").build()],
            kernel_config=KernelConfig(thermal=thermal), seed=3,
            thermal_integrator=integrator,
        )
        sim.run(10.0)
        traces[integrator] = sim.traces.series("temp.max")[1]
    worst = float(np.max(np.abs(traces["zoh"] - traces["euler"])))
    assert worst < 0.05, f"{platform_name}: integrators diverge by {worst:.4f} degC"
