"""DVFS transition statistics."""

import pytest

from repro.apps.mibench import basicmath_large
from repro.kernel.cpufreq.policy import DvfsPolicy
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3
from repro.soc.opp import OppTable


@pytest.fixture()
def policy():
    opps = OppTable.from_pairs(
        [(200e6, 0.9), (400e6, 0.95), (800e6, 1.05)]
    )
    return DvfsPolicy("cpu", opps, initial_freq_hz=200e6)


def test_starts_with_zero_transitions(policy):
    assert policy.total_transitions == 0
    assert policy.transitions == {}


def test_counts_actual_changes_only(policy):
    policy.set_target(400e6)
    policy.set_target(400e6)  # no change
    policy.set_target(800e6)
    policy.set_target(200e6)
    assert policy.total_transitions == 3


def test_transition_matrix(policy):
    policy.set_target(400e6)
    policy.set_target(200e6)
    policy.set_target(400e6)
    assert policy.transitions[(200000, 400000)] == 2
    assert policy.transitions[(400000, 200000)] == 1


def test_thermal_cap_reclamp_counts_as_transition(policy):
    policy.set_target(800e6)
    policy.set_thermal_max(400e6)
    assert policy.total_transitions == 2


def test_sysfs_total_trans_and_table():
    sim = Simulation(
        odroid_xu3(), [basicmath_large()], kernel_config=KernelConfig(), seed=1
    )
    sim.run(5.0)
    base = "/sys/devices/system/cpu/cpufreq/policy4/stats"
    total = sim.kernel.fs.read_int(f"{base}/total_trans")
    assert total > 0
    table = sim.kernel.fs.read(f"{base}/trans_table")
    rows = [line.split() for line in table.strip().splitlines()]
    assert sum(int(r[2]) for r in rows) == total


def test_interactive_governor_transition_count_is_sane():
    # A steady unbounded load should ramp up and then mostly hold: the
    # transition count stays far below one-per-evaluation.
    sim = Simulation(
        odroid_xu3(), [basicmath_large()], kernel_config=KernelConfig(), seed=1
    )
    sim.run(20.0)
    policy = sim.kernel.policies["a15"]
    evaluations = 20.0 / 0.02
    assert policy.total_transitions < 0.2 * evaluations
