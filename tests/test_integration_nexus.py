"""End-to-end Nexus 6P behaviour (shortened Section III scenarios)."""

import pytest

from repro.analysis.residency import (
    residency_fractions,
    residency_shift,
    top_frequency_share,
)
from repro.apps.catalog import make_app
from repro.experiments.nexus import nexus_thermal_config
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.snapdragon810 import nexus6p

DURATION_S = 60.0


def run_game(throttled, seed=3):
    app = make_app("paperio")
    config = KernelConfig(thermal=nexus_thermal_config() if throttled else None)
    sim = Simulation(nexus6p(), [app], kernel_config=config, seed=seed)
    # Warm up past the pre-throttle transient, then measure residencies on a
    # fresh counter (like clearing time_in_state before a capture).
    sim.run(DURATION_S / 2)
    sim.kernel.policies["gpu"].reset_time_in_state()
    sim.run(DURATION_S / 2)
    return sim, app


@pytest.fixture(scope="module")
def unthrottled():
    return run_game(False)


@pytest.fixture(scope="module")
def throttled():
    return run_game(True)


def test_temperature_rises_without_governor(unthrottled):
    sim, _ = unthrottled
    times, temps = sim.traces.series("temp.soc")
    assert temps[-1] > temps[0] + 4.0


def test_governor_keeps_temperature_near_trip(throttled):
    sim, _ = throttled
    _, temps = sim.traces.series("temp.soc")
    assert temps[-1] < 42.5  # trip at 40 degC + overshoot margin


def test_throttling_costs_frame_rate(unthrottled, throttled):
    _, base = unthrottled
    _, slow = throttled
    fps_base = base.fps.median_fps(start_s=5.0)
    fps_slow = slow.fps.median_fps(start_s=5.0)
    assert fps_slow < fps_base
    # Paper's Table I: games lose on the order of a third of their FPS.
    assert (fps_base - fps_slow) / fps_base > 0.15


def test_top_gpu_frequencies_collapse_under_throttling(unthrottled, throttled):
    base_sim, _ = unthrottled
    throt_sim, _ = throttled
    base = residency_fractions(base_sim.kernel.policies["gpu"].time_in_state)
    throt = residency_fractions(throt_sim.kernel.policies["gpu"].time_in_state)
    # Figure 2: usage of the two highest GPU frequencies drops to ~zero.
    assert top_frequency_share(base, 2) > 0.3
    assert top_frequency_share(throt, 2) < 0.15
    assert residency_shift(base, throt) > 0.2


def test_interactive_governor_uses_multiple_frequencies(unthrottled):
    sim, _ = unthrottled
    res = residency_fractions(sim.kernel.policies["gpu"].time_in_state)
    used = [khz for khz, frac in res.items() if frac > 0.02]
    assert len(used) >= 3  # phase modulation spreads the residency


def test_daq_like_power_is_plausible(unthrottled):
    sim, _ = unthrottled
    _, watts = sim.traces.series("power.total")
    assert 1.0 < watts.mean() < 8.0  # a phone, not a desktop
