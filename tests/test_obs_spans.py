"""Span tracer: nesting, ring bound, timestamps."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.spans import SpanTracer


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_span_records_wall_and_sim_time():
    sim = FakeClock()
    wall = FakeClock()
    tracer = SpanTracer(sim_time_fn=sim, wall_time_fn=wall)
    sim.t, wall.t = 5.0, 100.0
    with tracer.span("governor.update", domain="a57"):
        wall.t = 100.25
    (span,) = tracer.spans()
    assert span.start_sim_s == 5.0
    assert span.duration_s == pytest.approx(0.25)
    assert span.attrs == {"domain": "a57"}


def test_nesting_sets_parent_ids():
    tracer = SpanTracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner"):
            pass
    inner_span = tracer.spans("inner")[0]
    assert inner_span.parent_id == outer.span.span_id
    assert tracer.spans("outer")[0].parent_id is None
    assert tracer.children_of(outer.span.span_id) == [inner_span]


def test_set_attrs_chainable():
    tracer = SpanTracer()
    with tracer.span("x") as h:
        h.set(a=1).set(b=2)
    assert tracer.spans("x")[0].attrs == {"a": 1, "b": 2}


def test_instant_spans_have_zero_duration():
    tracer = SpanTracer()
    span = tracer.instant("thermal.trip", zone="soc")
    assert span.duration_s == 0.0
    assert tracer.spans("thermal.trip") == [span]


def test_ring_buffer_drops_oldest():
    tracer = SpanTracer(capacity=2)
    for i in range(5):
        tracer.instant(f"e{i}")
    assert len(tracer) == 2
    assert tracer.dropped == 3
    assert [s.name for s in tracer.spans()] == ["e3", "e4"]
    assert "# 3 spans dropped" in tracer.render()


def test_render_limit_keeps_newest():
    tracer = SpanTracer()
    for i in range(5):
        tracer.instant(f"e{i}")
    text = tracer.render(limit=2)
    assert "e4" in text and "e3" in text and "e2" not in text
    assert tracer.render(limit=0) == ""


def test_by_prefix():
    tracer = SpanTracer()
    tracer.instant("thermal.trip")
    tracer.instant("thermal.cooling_state")
    tracer.instant("sched.migrate")
    assert len(tracer.by_prefix("thermal.")) == 2


def test_exception_unwinds_nesting():
    tracer = SpanTracer()
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    # Both spans closed despite the exception; next span has no parent.
    assert len(tracer) == 2
    tracer.instant("after")
    assert tracer.spans("after")[0].parent_id is None


def test_to_dicts_round_trip_shape():
    tracer = SpanTracer()
    with tracer.span("x", k="v"):
        pass
    (d,) = list(tracer.to_dicts())
    assert d["kind"] == "span"
    assert d["name"] == "x"
    assert d["attrs"] == {"k": "v"}
    assert d["wall_duration_s"] >= 0.0


def test_clear_resets():
    tracer = SpanTracer(capacity=1)
    tracer.instant("a")
    tracer.instant("b")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_capacity_validation():
    with pytest.raises(ConfigurationError):
        SpanTracer(capacity=0)
