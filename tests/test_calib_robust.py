"""Robust calibration: degraded-trace closed loop, helpers, degradation path.

The robustness contract (docs/CALIBRATION.md): for every registered
platform, excite -> degrade with the ``noisy-sysfs`` model (millidegree
temperature quantization + 10 % record drops + TMU spikes, fixed seed) ->
fit recovers every checked parameter within 10 % and the fitted
definition's stock-scenario behaviour within 3 %; meanwhile clean traces
keep byte-identical reports under ``robust="auto"`` vs ``"off"``, and a
missing channel demotes its stages to structural priors (``unfitted``)
instead of raising.
"""

import numpy as np
import pytest

from repro.calib import (
    BUILTIN_MODELS,
    CalibTrace,
    fit_platform,
    needs_robust,
    run_excitation,
)
from repro.calib import robust as rb
from repro.calib.excite import ExcitationConfig
from repro.calib.fit import fit_trace
from repro.errors import CalibrationError, StabilityError
from repro.sim.experiment import AppSpec, Scenario
from repro.soc import registry

#: Degraded-trace recovery tolerance (clean contract is 5 %).
TOL = 0.10

FAST = ExcitationConfig()
CONTRACT_MODEL = BUILTIN_MODELS["noisy-sysfs"]


def _rel(a, b):
    return abs(a - b) / abs(b) if b != 0.0 else abs(a - b)


# ------------------------------------------------- degraded closed loop


@pytest.fixture(scope="module", params=registry.platform_names())
def degraded_loop(request):
    """(generating spec, fitted def, fitted spec, report, clean trace)."""
    name = request.param
    trace = run_excitation(name, seed=1, config=FAST)
    degraded = CONTRACT_MODEL.apply(trace, seed=7)
    fitted, report = fit_platform(degraded)
    return registry.get(name).compile(), fitted, fitted.compile(), report, trace


def test_degraded_round_trip_component_parameters(degraded_loop):
    spec, _fitted, fspec, _report, _trace = degraded_loop
    for truth, fit in list(zip(spec.clusters, fspec.clusters)) + [
        (spec.gpu, fspec.gpu)
    ]:
        assert _rel(fit.ceff_w_per_v2hz, truth.ceff_w_per_v2hz) < TOL
        assert _rel(fit.idle_power_w, truth.idle_power_w) < TOL
        assert _rel(fit.leakage.kappa_w_per_k2, truth.leakage.kappa_w_per_k2) < TOL
        assert _rel(fit.leakage.beta_k, truth.leakage.beta_k) < TOL
        for freq_hz in truth.opps.frequencies_hz():
            assert _rel(
                fit.opps.voltage_for(freq_hz), truth.opps.voltage_for(freq_hz)
            ) < TOL
    assert _rel(fspec.memory.base_power_w, spec.memory.base_power_w) < TOL
    assert _rel(fspec.memory.activity_power_w, spec.memory.activity_power_w) < TOL
    assert _rel(fspec.board_power_w, spec.board_power_w) < TOL


def test_degraded_round_trip_thermal_network(degraded_loop):
    spec, _fitted, fspec, _report, _trace = degraded_loop
    for truth, fit in zip(spec.thermal.nodes, fspec.thermal.nodes):
        assert fit.name == truth.name
        assert _rel(fit.capacitance_j_per_k, truth.capacitance_j_per_k) < TOL
    conductances = {
        tuple(sorted((link.node_a, link.node_b))): link.conductance_w_per_k
        for link in spec.thermal.links
    }
    assert len(fspec.thermal.links) == len(conductances)
    for link in fspec.thermal.links:
        key = tuple(sorted((link.node_a, link.node_b)))
        assert _rel(link.conductance_w_per_k, conductances[key]) < TOL


def test_degraded_fit_verdicts_and_uncertainty(degraded_loop):
    _spec, _fitted, _fspec, report, _trace = degraded_loop
    assert not report.degraded(), report.verdicts()
    for stage_name in report.stage_names():
        stage = report.stage(stage_name)
        assert stage.uncertainty, f"{stage_name} carries no uncertainty block"
        grades = stage.uncertainty["params"]
        assert grades, stage_name
        assert set(grades.values()) <= set(rb.CONFIDENCE_GRADES)


def test_clean_trace_auto_fit_is_byte_identical_to_off(degraded_loop):
    _spec, _fitted, _fspec, _report, trace = degraded_loop
    assert not needs_robust(trace)
    auto = fit_trace(trace, robust="auto")
    off = fit_trace(trace, robust="off")
    assert auto.to_json() == off.to_json()


def test_degraded_fit_behaviour_matches_generating_def():
    """A fit from a degraded capture still behaves like the original."""
    name = "odroid-xu3"
    trace = run_excitation(name, seed=1, config=FAST)
    degraded = CONTRACT_MODEL.apply(trace, seed=7)
    fitted, _report = fit_platform(degraded, name="xu3-degraded-refit")
    registry.register(fitted)
    try:
        results = {}
        for platform in (name, "xu3-degraded-refit"):
            results[platform] = Scenario(
                platform=platform,
                apps=(AppSpec.catalog("paperio"),),
                policy="stock",
                duration_s=20.0,
                seed=5,
            ).run()
        truth, refit = results[name], results["xu3-degraded-refit"]
        assert _rel(refit.peak_temp_c, truth.peak_temp_c) < 0.03
        for app, fps in truth.fps.items():
            assert _rel(refit.fps[app], fps) < 0.03
    finally:
        registry.unregister("xu3-degraded-refit")


# ------------------------------------------------- graceful degradation


def _without_channel(trace, channel):
    data = trace.to_dict()
    assert channel in data["channels"], sorted(data["channels"])
    del data["channels"][channel]
    return CalibTrace.from_dict(data)


def test_missing_voltage_channel_demotes_to_prior():
    trace = run_excitation("odroid-xu3", seed=1, config=FAST)
    mutated = _without_channel(trace, "volt.gpu")
    fitted, report = fit_platform(mutated, name="xu3-no-gpu-volt")
    assert report.verdicts()["dvfs.gpu"] == "unfitted"
    assert report.verdicts()["leakage.gpu"] == "unfitted"
    assert {s.stage for s in report.degraded()} == {"dvfs.gpu", "leakage.gpu"}
    assert any("demoted to structural prior" in w for w in report.warnings)
    grades = report.stage("dvfs.gpu").uncertainty["params"]
    assert set(grades.values()) == {"prior"}
    # The prior-filled definition still validates and registers.
    registry.register(fitted)
    registry.unregister("xu3-no-gpu-volt")


def test_missing_temperature_channel_demotes_dependent_stages():
    trace = run_excitation("odroid-xu3", seed=1, config=FAST)
    mutated = _without_channel(trace, "temp.big")
    _fitted, report = fit_platform(mutated, name="xu3-no-big-temp")
    unfitted = {s.stage for s in report.degraded()}
    assert "rc" in unfitted
    assert "leakage.a15" in unfitted


def test_robust_off_raises_instead_of_demoting():
    trace = run_excitation("odroid-xu3", seed=1, config=FAST)
    mutated = _without_channel(trace, "volt.gpu")
    with pytest.raises(CalibrationError, match="volt.gpu"):
        fit_trace(mutated, robust="off")


def test_unknown_robust_mode_rejected():
    trace = run_excitation("odroid-xu3", seed=1, config=FAST)
    with pytest.raises(CalibrationError, match="unknown robust mode"):
        fit_trace(trace, robust="maybe")


def test_needs_robust_triggers():
    trace = run_excitation("odroid-xu3", seed=1, config=FAST)
    assert not needs_robust(trace)
    assert needs_robust(BUILTIN_MODELS["sysfs"].apply(trace, seed=0))
    # Dropping one record from one channel breaks sample alignment.
    data = trace.to_dict()
    channel = data["channels"]["temp.big"]
    channel["times"] = channel["times"][:-1]
    channel["values"] = channel["values"][:-1]
    assert needs_robust(CalibTrace.from_dict(data))


# ------------------------------------------------------- robust helpers


def test_mad_and_robust_scale():
    assert rb.mad([1.0, 1.0, 1.0]) == 0.0
    assert rb.mad([0.0, 1.0, 2.0, 100.0]) == pytest.approx(1.0)
    assert rb.robust_scale([0.0, 1.0, 2.0, 100.0]) == pytest.approx(rb.MAD_SCALE)


def test_huber_weights_shape():
    w = rb.huber_weights(np.array([0.0, 1.0, 10.0]), scale=1.0, k=1.0)
    assert w[0] == 1.0 and w[1] == 1.0
    assert w[2] == pytest.approx(0.1)
    assert rb.effective_samples(w) == pytest.approx(2.1)


def test_contiguous_runs():
    runs = rb.contiguous_runs([True, True, False, True, False, False, True])
    assert runs == [slice(0, 2), slice(3, 4), slice(6, 7)]
    assert rb.contiguous_runs([False, False]) == []


def test_hampel_replaces_and_flags_spikes():
    rng = np.random.default_rng(0)
    v = 30.0 + rng.normal(0.0, 0.1, 50)
    v[20] += 25.0
    filtered, flagged = rb.hampel(v, window=7)
    assert flagged[20] and flagged.sum() == 1
    assert abs(filtered[20] - 30.0) < 0.5


def test_hampel_detects_spike_at_run_edge():
    # A drop gap right before a spike puts the spike at a run boundary;
    # edge-replicating padding would let it dominate its own window median.
    rng = np.random.default_rng(0)
    v = 30.0 + rng.normal(0.0, 0.1, 50)
    v[10] = np.nan
    v[11] += 25.0
    _filtered, flagged = rb.hampel(v, window=7)
    assert flagged[11]
    assert not np.any(flagged[12:])


def test_hampel_flags_fragments_too_short_to_validate():
    v = np.array([1.0, np.nan, 25.0, 1.1, np.nan, 1.0, 1.0, 1.0, 1.0])
    _filtered, flagged = rb.hampel(v)
    assert flagged[2] and flagged[3]
    assert not np.any(flagged[5:])


def test_hampel_preserves_nan_gaps():
    v = np.array([1.0, 1.0, 1.0, 1.0, np.nan, 1.0, 1.0, 1.0, 1.0])
    filtered, flagged = rb.hampel(v)
    assert np.isnan(filtered[4]) and not flagged[4]


def test_align_channels_keeps_gaps_as_nan():
    trace = CalibTrace(channels={
        "temp.a": ([0.0, 0.1, 0.3], [1.0, 2.0, 4.0]),
        "power.b": ([0.0, 0.1, 0.2, 0.3], [5.0, 5.0, 5.0, 5.0]),
    })
    grid = rb.align_channels(trace, ["temp.a", "power.b"])
    assert grid.dt_s == pytest.approx(0.1)
    assert grid.times.size == 4
    assert np.isnan(grid.values["temp.a"][2])
    assert list(grid.present["temp.a"]) == [True, True, False, True]
    assert list(grid.all_present(["temp.a", "power.b"])) == [
        True, True, False, True,
    ]


def test_align_channels_uses_recorded_period():
    trace = CalibTrace(
        channels={"temp.a": ([0.0, 0.21], [1.0, 2.0])},
        meta={"record_period_s": 0.1},
    )
    grid = rb.align_channels(trace, ["temp.a"])
    assert grid.dt_s == 0.1
    assert grid.times.size == 3
    assert not grid.present["temp.a"][1]


def test_align_channels_needs_two_timestamps():
    trace = CalibTrace(channels={"temp.a": ([0.0], [1.0])})
    with pytest.raises(CalibrationError, match="record period"):
        rb.align_channels(trace, ["temp.a"])


def test_irls_lstsq_shrugs_off_outliers():
    rng = np.random.default_rng(2)
    x = np.linspace(0.0, 1.0, 40)
    a = np.column_stack([np.ones_like(x), x])
    y_dirty = 1.0 + 2.0 * x + rng.normal(0.0, 0.01, x.size)
    y_dirty[5] += 50.0
    coef, weights = rb.irls_lstsq(a, y_dirty)
    assert coef[0] == pytest.approx(1.0, abs=0.02)
    assert coef[1] == pytest.approx(2.0, abs=0.05)
    assert weights[5] < 0.01
    assert np.median(weights) == 1.0


def test_irls_min_scale_keeps_structured_mismatch_at_full_weight():
    x = np.linspace(0.0, 1.0, 40)
    a = np.column_stack([np.ones_like(x), x])
    # Sub-resolution structured residual: without the floor, the collapsed
    # MAD scale would read the largest of these as outliers.
    y = 1.0 + 2.0 * x + 1e-5 * np.sin(40.0 * x)
    _coef, floored = rb.irls_lstsq(a, y, min_scale=1e-3)
    assert np.all(floored == 1.0)


def test_irls_nnls_recovers_nonnegative_solution():
    rng = np.random.default_rng(0)
    a = rng.uniform(0.5, 2.0, size=(60, 3))
    truth = np.array([1.0, 0.5, 2.0])
    y = a @ truth
    y[10] += 30.0
    coef, weights = rb.irls_nnls(a, y)
    np.testing.assert_allclose(coef, truth, rtol=0.05)
    assert np.all(coef >= 0.0)
    assert weights[10] < 0.1


def test_robust_leakage_estimator_recovers_and_grades():
    temps = np.linspace(300.0, 380.0, 20)
    kappa, beta = 2.5e-4, 1700.0
    totals = kappa * temps**2 * np.exp(-beta / temps)
    fit_kappa, fit_beta, (se_lk, se_b) = rb.fit_log_linear_leakage_robust(
        temps, totals
    )
    assert fit_kappa == pytest.approx(kappa, rel=1e-6)
    assert fit_beta == pytest.approx(beta, rel=1e-6)
    assert np.isfinite(se_lk) and np.isfinite(se_b)
    with pytest.raises(StabilityError, match="zero leakage"):
        rb.fit_log_linear_leakage_robust(temps, np.zeros(20))


def test_grade_param_thresholds():
    assert rb.grade_param(1.0, 0.01) == "high"
    assert rb.grade_param(1.0, 0.10) == "medium"
    assert rb.grade_param(1.0, 1.0) == "low"
    assert rb.grade_param(1.0, float("inf")) == "low"
    # A near-zero parameter is not graded low for an undefined rel. error.
    assert rb.grade_param(0.0, 0.005, floor=0.01) == "high"


def test_lstsq_stderr_tracks_noise_level():
    rng = np.random.default_rng(1)
    x = np.linspace(0.0, 1.0, 200)
    a = np.column_stack([np.ones_like(x), x])
    coef = np.array([1.0, 2.0])
    quiet = rb.lstsq_stderr(a, a @ coef + rng.normal(0, 1e-3, x.size), coef)
    loud = rb.lstsq_stderr(a, a @ coef + rng.normal(0, 1e-1, x.size), coef)
    assert np.all(quiet < loud)
    assert np.all(quiet > 0.0)
