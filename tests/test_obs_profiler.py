"""Step profiler: accumulation, reports, engine integration."""

import pytest

from repro.errors import AnalysisError
from repro.kernel.kernel import KernelConfig
from repro.obs.profiler import NULL_PROFILER, STEP_PHASES, StepProfiler
from repro.sim.engine import Simulation
from repro.soc.snapdragon810 import nexus6p


def test_phase_accumulates_across_entries():
    prof = StepProfiler()
    ph = prof.phase("kernel")
    with prof.step():
        with ph:
            pass
        with ph:
            pass
    report = prof.report()
    assert report.step_count == 1
    stat = report.phase("kernel")
    assert stat.calls == 2
    assert stat.total_s >= 0.0
    assert stat.mean_us >= 0.0


def test_phase_handles_are_cached():
    prof = StepProfiler()
    assert prof.phase("apps") is prof.phase("apps")


def test_reset_keeps_cached_handles_valid():
    prof = StepProfiler()
    ph = prof.phase("apps")
    with prof.step():
        with ph:
            pass
    prof.reset()
    assert prof.step_count == 0
    with prof.step():
        with ph:
            pass
    assert prof.report().phase("apps").calls == 1


def test_report_without_steps_raises():
    with pytest.raises(AnalysisError):
        StepProfiler().report()


def test_unknown_phase_raises():
    prof = StepProfiler()
    with prof.step():
        pass
    with pytest.raises(AnalysisError):
        prof.report().phase("nope")


def test_null_profiler_is_noop():
    with NULL_PROFILER.step():
        with NULL_PROFILER.phase("anything"):
            pass  # no state, no error


def test_render_mentions_every_phase():
    prof = StepProfiler()
    with prof.step():
        for name in STEP_PHASES:
            with prof.phase(name):
                pass
    text = prof.report().render()
    for name in STEP_PHASES:
        assert name in text
    assert "coverage" in text


def test_simulation_profile_coverage():
    """The acceptance bar: phases must explain >= 95% of step wall-clock."""
    sim = Simulation(nexus6p(), kernel_config=KernelConfig(), seed=1,
                     profile=True)
    sim.run(20.0)
    report = sim.profiler.report()
    assert report.step_count == 2000
    # The scalar engine enters every canonical phase except the two owned
    # by BatchSimulation's vectorized fast path.
    assert {p.name for p in report.phases} == (
        set(STEP_PHASES) - {"thermal_exact", "batch_sync"}
    )
    assert report.coverage >= 0.95


def test_simulation_without_profile_has_no_profiler():
    sim = Simulation(nexus6p(), kernel_config=KernelConfig(), seed=1)
    assert sim.profiler is None
    sim.run(0.1)  # the null profiler brackets must not interfere
