"""FaultPlan/FaultEvent: validation, catalogue and JSON round-trip."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FaultInjectionError, ReproError
from repro.faults import (
    BUILTIN_PLANS,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    builtin_plan_names,
    get_plan,
    resolve_plan,
)


def test_error_is_a_repro_error():
    assert issubclass(FaultInjectionError, ReproError)


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_every_kind_constructs(kind):
    event = FaultEvent(kind, start_s=1.0, end_s=2.0)
    assert event.kind == kind


@pytest.mark.parametrize(
    "kwargs",
    [
        {"kind": "nope"},
        {"start_s": -1.0},
        {"start_s": float("nan")},
        {"end_s": 1.0},  # not after start_s
        {"end_s": float("inf")},
        {"probability": 0.0},
        {"probability": 1.5},
        {"magnitude_c": -3.0},
        {"scale": 0.0},
        {"scale": 1.2},
        {"target": ""},
    ],
)
def test_event_validation(kwargs):
    base = {"kind": "sensor_spike", "start_s": 1.0, "end_s": 5.0}
    with pytest.raises(FaultInjectionError):
        FaultEvent(**{**base, **kwargs})


def test_eio_target_must_be_kernel_path():
    with pytest.raises(FaultInjectionError, match="path prefix"):
        FaultEvent("sysfs_eio", start_s=0.0, end_s=1.0, target="thermal")
    FaultEvent("sysfs_eio", start_s=0.0, end_s=1.0, target="/sys/class/hwmon")


def test_plan_validation():
    event = FaultEvent("fan_stop", start_s=0.0, end_s=9.0)
    with pytest.raises(FaultInjectionError, match="must match"):
        FaultPlan("Bad Name", (event,))
    with pytest.raises(FaultInjectionError, match="at least one"):
        FaultPlan("empty", ())


def test_plan_coerces_event_dicts():
    plan = FaultPlan(
        "from-dicts",
        ({"kind": "sensor_stuck", "start_s": 1.0, "end_s": 2.0},),
    )
    assert isinstance(plan.events[0], FaultEvent)


def test_from_dict_rejects_unknown_and_missing_keys():
    with pytest.raises(FaultInjectionError, match="unknown"):
        FaultEvent.from_dict(
            {"kind": "fan_stop", "start_s": 0.0, "end_s": 1.0, "bogus": 1}
        )
    with pytest.raises(FaultInjectionError, match="end_s"):
        FaultEvent.from_dict({"kind": "fan_stop", "start_s": 0.0})
    with pytest.raises(FaultInjectionError, match="unknown"):
        FaultPlan.from_dict({"name": "x", "events": [], "extra": True})
    with pytest.raises(FaultInjectionError, match="'name' and 'events'"):
        FaultPlan.from_dict({"name": "x"})


def test_builtin_catalogue():
    assert builtin_plan_names() == tuple(BUILTIN_PLANS)
    assert len(BUILTIN_PLANS) == len(FAULT_KINDS)  # one plan per kind
    covered = {ev.kind for plan in BUILTIN_PLANS.values() for ev in plan.events}
    assert covered == set(FAULT_KINDS)
    with pytest.raises(FaultInjectionError, match="unknown fault plan"):
        get_plan("no-such-plan")


def test_resolve_plan_accepts_all_forms():
    plan = get_plan("fan-stop")
    assert resolve_plan(plan) is plan
    assert resolve_plan("fan-stop") == plan
    assert resolve_plan(plan.to_dict()) == plan
    with pytest.raises(FaultInjectionError):
        resolve_plan(42)


# -- property: plans survive the JSON round-trip byte-for-byte ------------

_names = st.from_regex(r"[a-z0-9][a-z0-9._-]{0,15}", fullmatch=True)
_times = st.floats(0.0, 1.0e5, allow_nan=False, allow_infinity=False)


@st.composite
def _events(draw):
    start = draw(_times)
    end = draw(
        st.floats(
            min_value=start, max_value=2.0e5, exclude_min=True,
            allow_nan=False, allow_infinity=False,
        )
    )
    kind = draw(st.sampled_from(FAULT_KINDS))
    target = None
    if kind == "sysfs_eio" and draw(st.booleans()):
        target = "/sys/" + draw(_names)
    elif kind not in ("sysfs_eio", "fan_stop") and draw(st.booleans()):
        target = draw(_names)
    return FaultEvent(
        kind=kind,
        start_s=start,
        end_s=end,
        target=target,
        probability=draw(
            st.floats(0.0, 1.0, exclude_min=True, allow_nan=False)
        ),
        magnitude_c=draw(st.floats(0.0, 500.0, allow_nan=False)),
        scale=draw(st.floats(0.0, 1.0, exclude_min=True, allow_nan=False)),
    )


@given(name=_names, events=st.lists(_events(), min_size=1, max_size=5))
def test_plan_round_trips_through_json(name, events):
    plan = FaultPlan(name, tuple(events))
    wire = json.dumps(plan.to_dict(), sort_keys=True)
    back = FaultPlan.from_dict(json.loads(wire))
    assert back == plan
    assert json.dumps(back.to_dict(), sort_keys=True) == wire


@pytest.mark.parametrize("name", builtin_plan_names())
def test_builtin_plans_round_trip(name):
    plan = get_plan(name)
    assert FaultPlan.from_dict(plan.to_dict()) == plan
