"""Property-based tests of the scheduler and OPP tables (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.scheduler import Scheduler, _water_fill
from repro.soc.components import ClusterSpec, LeakageParams
from repro.soc.opp import OppTable


@given(
    capacity=st.floats(0.0, 1e9),
    ceilings=st.lists(st.floats(0.0, 1e8), min_size=0, max_size=8),
)
@settings(max_examples=200, deadline=None)
def test_water_fill_conserves_and_caps(capacity, ceilings):
    grants = _water_fill(capacity, ceilings)
    assert len(grants) == len(ceilings)
    # Never exceeds capacity or any ceiling.
    assert sum(grants) <= capacity + 1e-6
    for grant, ceiling in zip(grants, ceilings):
        assert 0.0 <= grant <= ceiling + 1e-6
    # Work-conserving: either capacity or every ceiling is exhausted.
    slack = capacity - sum(grants)
    if slack > 1e-6:
        assert sum(grants) == pytest.approx(sum(ceilings), rel=1e-9, abs=1e-6)


@given(
    capacity=st.floats(1.0, 1e6),
    ceilings=st.lists(st.floats(1.0, 1e6), min_size=2, max_size=8),
)
@settings(max_examples=200, deadline=None)
def test_water_fill_fairness(capacity, ceilings):
    """No consumer with unmet demand receives less than another's grant."""
    grants = _water_fill(capacity, ceilings)
    for i, (grant_i, ceil_i) in enumerate(zip(grants, ceilings)):
        if grant_i < ceil_i - 1e-6:  # consumer i still wanted more
            assert grant_i >= max(grants) - 1e-6


@st.composite
def freq_ladders(draw):
    n = draw(st.integers(2, 12))
    freqs = sorted(draw(st.sets(st.integers(100, 3000), min_size=n, max_size=n)))
    v0 = draw(st.floats(0.5, 0.9))
    v1 = draw(st.floats(1.0, 1.4))
    pairs = [
        (f * 1e6, v0 + (v1 - v0) * i / (len(freqs) - 1))
        for i, f in enumerate(freqs)
    ]
    return OppTable.from_pairs(pairs)


@given(table=freq_ladders(), freq=st.floats(50e6, 4000e6))
@settings(max_examples=200, deadline=None)
def test_opp_floor_ceil_bracket(table, freq):
    floor = table.floor(freq).freq_hz
    ceil = table.ceil(freq).freq_hz
    assert floor <= ceil
    if table.min_freq_hz <= freq <= table.max_freq_hz:
        assert floor <= freq + 0.5
        assert ceil + 0.5 >= freq


@given(table=freq_ladders())
@settings(max_examples=100, deadline=None)
def test_opp_voltage_monotone(table):
    volts = [p.voltage_v for p in table]
    assert all(b >= a for a, b in zip(volts, volts[1:]))


@given(
    n_tasks=st.integers(0, 6),
    freq_mhz=st.integers(200, 2000),
    dt=st.floats(0.001, 0.1),
)
@settings(max_examples=100, deadline=None)
def test_scheduler_busy_cores_bounded(n_tasks, freq_mhz, dt):
    opps = OppTable.from_pairs([(200e6, 0.9), (2000e6, 1.3)])
    leak = LeakageParams(kappa_w_per_k2=1e-4, beta_k=1650.0)
    spec = ClusterSpec("c", "t", 4, opps, 1e-10, leak, ipc=1.5)
    sched = Scheduler({"c": spec})
    for i in range(n_tasks):
        sched.spawn(f"t{i}", "c", unbounded=True)
    usage = sched.run_tick({"c": freq_mhz * 1e6}, dt).usage["c"]
    assert 0.0 <= usage.busy_cores <= 4.0 + 1e-9
    assert usage.busy_cores == pytest.approx(min(n_tasks, 4), abs=1e-6)
    assert 0.0 <= usage.max_core_load <= 1.0


@given(
    works=st.lists(st.floats(1e4, 1e7), min_size=1, max_size=5),
    freq_mhz=st.integers(200, 2000),
)
@settings(max_examples=100, deadline=None)
def test_scheduler_work_conservation(works, freq_mhz):
    """Total consumed cycles equals min(total backlog, capacity)."""
    opps = OppTable.from_pairs([(200e6, 0.9), (2000e6, 1.3)])
    leak = LeakageParams(kappa_w_per_k2=1e-4, beta_k=1650.0)
    spec = ClusterSpec("c", "t", 4, opps, 1e-10, leak, ipc=1.0)
    sched = Scheduler({"c": spec})
    for i, cycles in enumerate(works):
        task = sched.spawn(f"t{i}", "c")
        task.add_work(cycles)
    usage = sched.run_tick({"c": freq_mhz * 1e6}, 0.01).usage["c"]
    per_core = usage.capacity_cycles / 4
    expected = sum(min(w, per_core) for w in works)
    expected = min(expected, usage.capacity_cycles)
    assert usage.used_cycles == pytest.approx(expected, rel=1e-9)
