"""Fair GPU scheduling across multiple applications."""

import pytest

from repro.apps.frames import FrameApp, FrameWorkload
from repro.errors import ConfigurationError
from repro.kernel.gpu import GpuDevice
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3


def test_scheduling_mode_validation():
    with pytest.raises(ConfigurationError):
        GpuDevice(scheduling="priority")


def test_fair_split_between_two_saturating_owners():
    gpu = GpuDevice(scheduling="fair")
    gpu.submit("a", 1e9)
    gpu.submit("b", 1e9)
    result = gpu.run_tick(100e6, 0.01)  # capacity 1e6
    assert result.owner_cycles["a"] == pytest.approx(0.5e6)
    assert result.owner_cycles["b"] == pytest.approx(0.5e6)
    assert result.busy_fraction == pytest.approx(1.0)


def test_fair_returns_slack_from_light_owner():
    gpu = GpuDevice(scheduling="fair")
    gpu.submit("light", 0.1e6)
    gpu.submit("heavy", 1e9)
    result = gpu.run_tick(100e6, 0.01)  # capacity 1e6
    assert result.owner_cycles["light"] == pytest.approx(0.1e6)
    assert result.owner_cycles["heavy"] == pytest.approx(0.9e6)


def test_fifo_mode_preserves_strict_order():
    gpu = GpuDevice(scheduling="fifo")
    gpu.submit("a", 0.8e6, tag="a1")
    gpu.submit("b", 0.8e6, tag="b1")
    result = gpu.run_tick(100e6, 0.01)  # capacity 1e6: only a1 finishes
    assert result.completed_tags == ["a1"]
    assert result.owner_cycles["a"] == pytest.approx(0.8e6)
    assert result.owner_cycles["b"] == pytest.approx(0.2e6)


def test_within_owner_order_is_fifo():
    gpu = GpuDevice()
    gpu.submit("a", 0.3e6, tag="f1")
    gpu.submit("a", 0.3e6, tag="f2")
    result = gpu.run_tick(100e6, 0.01)
    assert result.completed_tags == ["f1", "f2"]


def test_single_owner_identical_to_fifo():
    for mode in ("fair", "fifo"):
        gpu = GpuDevice(scheduling=mode)
        gpu.submit("a", 1.5e6, tag="f1")
        gpu.submit("a", 1.5e6, tag="f2")
        result = gpu.run_tick(200e6, 0.01)  # capacity 2e6
        assert result.completed_tags == ["f1"]
        assert gpu.backlog_cycles == pytest.approx(1e6)


def test_two_games_share_the_gpu_evenly():
    """End to end: two identical GPU-bound games achieve similar FPS."""
    def game(name):
        return FrameApp(
            name,
            FrameWorkload(
                cpu_cycles_per_frame=3e6, gpu_cycles_per_frame=12e6,
                target_fps=1000.0, sigma=0.0, pipeline_depth=3,
            ),
        )

    a, b = game("game_a"), game("game_b")
    sim = Simulation(odroid_xu3(), [a, b], kernel_config=KernelConfig(), seed=1)
    sim.run(20.0)
    fps_a = a.fps.median_fps(start_s=5.0)
    fps_b = b.fps.median_fps(start_s=5.0)
    assert fps_a == pytest.approx(fps_b, rel=0.15)
    # Together they saturate the 600 MHz GPU: ~50 fps total at 12 Mcyc.
    assert 40.0 < fps_a + fps_b < 60.0
