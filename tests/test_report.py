"""Run-report generator."""

import pytest

from repro.analysis.report import summarize_run
from repro.apps.mibench import basicmath_large
from repro.errors import AnalysisError
from repro.kernel.kernel import KernelConfig
from repro.power.battery import Battery
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3


@pytest.fixture(scope="module")
def finished_sim():
    sim = Simulation(
        odroid_xu3(), [basicmath_large()], kernel_config=KernelConfig(),
        seed=1, battery=Battery(10.0),
    )
    sim.run(10.0)
    return sim


def test_report_before_running_raises():
    sim = Simulation(odroid_xu3(), kernel_config=KernelConfig(), seed=1)
    with pytest.raises(AnalysisError):
        summarize_run(sim)


def test_report_contains_all_sections(finished_sim):
    report = summarize_run(finished_sim, title="Test run")
    assert report.startswith("# Test run")
    for heading in ("## Temperatures", "## Power", "## DVFS residencies",
                    "## Applications"):
        assert heading in report


def test_report_mentions_platform_and_apps(finished_sim):
    report = summarize_run(finished_sim)
    assert "odroid-xu3" in report
    assert "**bml**" in report


def test_report_includes_battery(finished_sim):
    report = summarize_run(finished_sim)
    assert "Battery:" in report
    assert "% remaining" in report


def test_report_covers_all_rails(finished_sim):
    report = summarize_run(finished_sim)
    for rail in ("a15", "a7", "gpu", "mem", "board", "total"):
        assert rail in report
