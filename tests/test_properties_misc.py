"""Property-based tests for metering and idle-state selection (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.frames import FpsMeter
from repro.kernel.cpuidle import ClusterIdleGovernor


@given(
    times=st.lists(st.floats(0.0, 100.0), min_size=0, max_size=300),
    start=st.floats(0.0, 50.0),
    span=st.integers(1, 50),
)
@settings(max_examples=150, deadline=None)
def test_fps_buckets_conserve_frames(times, start, span):
    """Sum of per-second FPS over a window equals the frames inside it."""
    meter = FpsMeter()
    for t in sorted(times):
        meter.record(t)
    end = start + span
    _, fps = meter.fps_series(start, end)
    counted = float(fps.sum())  # bucket width is 1 s
    window_end = start + len(fps)
    # np.histogram's last bin is closed on the right.
    expected = sum(
        1 for t in times if start <= t < window_end or t == window_end
    )
    assert counted == pytest.approx(expected)


@given(
    times=st.lists(st.floats(0.0, 30.0), min_size=5, max_size=200),
)
@settings(max_examples=100, deadline=None)
def test_fps_statistics_ordering(times):
    meter = FpsMeter()
    for t in sorted(times):
        meter.record(t)
    _, fps = meter.fps_series(0.0, 30.0)
    if fps.size == 0:
        return
    p5 = meter.percentile_fps(5.0, 0.0, 30.0)
    p95 = meter.percentile_fps(95.0, 0.0, 30.0)
    median = meter.median_fps(0.0, 30.0)
    assert p5 <= median <= p95
    assert 0.0 <= meter.jank_ratio(0.0, 30.0) <= 1.0


@given(
    busy_pattern=st.lists(st.floats(0.0, 4.0), min_size=1, max_size=200),
)
@settings(max_examples=150, deadline=None)
def test_idle_governor_invariants(busy_pattern):
    """Scale always in [0, 1]; residencies sum to the elapsed time; the
    state deepens only while idle."""
    governor = ClusterIdleGovernor()
    elapsed = 0.0
    for busy in busy_pattern:
        scale = governor.update(busy, 4, 0.01)
        elapsed += 0.01
        assert 0.0 <= scale <= 1.0
        if busy > 0.1:
            assert governor.current_state.name == "wfi"
    total = sum(governor.residency_s(s.name) for s in governor.states)
    assert total == pytest.approx(elapsed)


@given(idle_ticks=st.integers(0, 100))
@settings(max_examples=100, deadline=None)
def test_idle_scale_monotone_with_dwell(idle_ticks):
    """The power scale never increases while the cluster stays idle."""
    governor = ClusterIdleGovernor()
    scales = [governor.update(0.0, 4, 0.01) for _ in range(idle_ticks)]
    assert all(b <= a + 1e-12 for a, b in zip(scales, scales[1:]))
