"""Deterministic RNG registry."""

import numpy as np

from repro.sim.rng import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(42).stream("app.game")
    b = RngRegistry(42).stream("app.game")
    assert np.allclose(a.random(16), b.random(16))


def test_different_names_independent():
    reg = RngRegistry(42)
    a = reg.stream("app.game").random(16)
    b = reg.stream("app.bml").random(16)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random(8)
    b = RngRegistry(2).stream("x").random(8)
    assert not np.allclose(a, b)


def test_creation_order_does_not_matter():
    r1 = RngRegistry(7)
    r1.stream("a")
    first = r1.stream("b").random(8)
    r2 = RngRegistry(7)
    second = r2.stream("b").random(8)  # "a" never created here
    assert np.allclose(first, second)


def test_stream_is_cached():
    reg = RngRegistry(0)
    assert reg.stream("x") is reg.stream("x")


def test_names_sorted():
    reg = RngRegistry(0)
    reg.stream("zeta")
    reg.stream("alpha")
    assert reg.names() == ["alpha", "zeta"]
