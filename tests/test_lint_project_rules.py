"""Fixture packages for the whole-program rule families (R5–R8).

Each family gets a small on-disk package with a known-bad module, a
known-clean module, and (family by family) suppression and baseline
paths — all run through ``run_lint`` so suppression comments, relpath
scoping and baseline reconciliation behave exactly as in production.
"""

import json
import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.lint import get_rule, run_lint, update_baseline

#: A minimal sanctioned-converter module: the dataflow pass recognises
#: any module named ``units`` whose functions appear in the signature
#: table, so fixtures exercise the same resolution path as repro.units.
UNITS_PY = """
    def celsius_to_kelvin(temp_c):
        return temp_c + 273.15

    def millicelsius_to_celsius(temp_mc):
        return temp_mc / 1000.0
"""


def make_pkg(tmp_path, files, docs=None):
    """Materialise ``{relpath: source}`` as package ``app``; docs aside."""
    pkg = tmp_path / "app"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for relpath, source in files.items():
        path = pkg / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    docs_dir = None
    if docs is not None:
        docs_dir = tmp_path / "docs"
        docs_dir.mkdir()
        for name, text in docs.items():
            (docs_dir / name).write_text(textwrap.dedent(text))
    return pkg, docs_dir


def lint_pkg(pkg, rule_ids, docs_dir=None, **kwargs):
    """Run only ``rule_ids`` over the fixture package, no baseline."""
    kwargs.setdefault("use_baseline", False)
    return run_lint(
        [pkg],
        rules=[get_rule(rule_id) for rule_id in rule_ids],
        docs_dir=docs_dir,
        **kwargs,
    )


def rule_ids(report):
    return [f.rule for f in report.new]


# ------------------------------------------------------------ R5: units


def test_r501_flags_cross_module_arg_mismatch(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "units.py": UNITS_PY,
        "sensor.py": """
            def smooth(temp_c):
                return temp_c
        """,
        "daq.py": """
            from app.sensor import smooth

            def sample(raw_mc):
                return smooth(raw_mc)
        """,
    })
    report = lint_pkg(pkg, ["R501"])
    assert rule_ids(report) == ["R501"]
    finding = report.new[0]
    assert finding.path == "daq.py"
    assert "millicelsius" in finding.message
    assert "temp_c" in finding.message


def test_r501_flags_wrong_unit_into_converter(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "units.py": UNITS_PY,
        "daq.py": """
            from app.units import celsius_to_kelvin

            def sample(raw_mc):
                return celsius_to_kelvin(raw_mc)
        """,
    })
    report = lint_pkg(pkg, ["R501"])
    assert rule_ids(report) == ["R501"]


def test_r501_keyword_argument_checked(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "gov.py": """
            def set_limit(freq_khz):
                return freq_khz

            def apply(cur_hz):
                return set_limit(freq_khz=cur_hz)
        """,
    })
    report = lint_pkg(pkg, ["R501"])
    assert rule_ids(report) == ["R501"]


def test_r501_matching_units_and_unknowns_are_clean(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "units.py": UNITS_PY,
        "daq.py": """
            from app.units import millicelsius_to_celsius

            def smooth(temp_c):
                return temp_c

            def sample(raw_mc, mystery):
                ok = smooth(millicelsius_to_celsius(raw_mc))
                also_ok = smooth(mystery)  # unknown tag: never a finding
                return ok, also_ok
        """,
    })
    assert lint_pkg(pkg, ["R501"]).new == []


def test_r502_flags_lying_function_name(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "sensor.py": """
            def read_temp_c(raw_mc):
                return raw_mc
        """,
    })
    report = lint_pkg(pkg, ["R502"])
    assert rule_ids(report) == ["R502"]
    assert "read_temp_c" in report.new[0].message


def test_r502_exempts_sanctioned_converters(tmp_path):
    """``units.py`` converter names are typed by the table, not the
    suffix — ``millicelsius_to_celsius`` ends in ``_celsius`` yet its
    body returning something else must not flag."""
    pkg, _ = make_pkg(tmp_path, {
        "units.py": UNITS_PY,
        "sensor.py": """
            from app.units import millicelsius_to_celsius

            def read_temp_c(raw_mc):
                return millicelsius_to_celsius(raw_mc)
        """,
    })
    assert lint_pkg(pkg, ["R502"]).new == []


def test_r503_flags_type_laundering_assignment(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "gov.py": """
            def poll(zone):
                temp_c = zone.read_millicelsius()
                return temp_c
        """,
    })
    report = lint_pkg(pkg, ["R503"])
    assert rule_ids(report) == ["R503"]
    assert "temp_c" in report.new[0].message


def test_r503_suppression_comment_honoured(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "gov.py": """
            def poll(zone):
                temp_c = zone.read_millicelsius()  # repro-lint: disable=R503 -- legacy shim
                return temp_c
        """,
    })
    assert lint_pkg(pkg, ["R503"]).new == []


# -------------------------------------------------------------- R6: rng

RNG_PY = """
    import numpy as np

    STREAM_NAMESPACES = frozenset({"daq", "faults"})

    class RngRegistry:
        def stream(self, name):
            return np.random.default_rng(hash(name))
"""


def test_r601_flags_orphan_generator(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "rng.py": RNG_PY,
        "noise.py": """
            import numpy as np

            def jitter():
                return np.random.default_rng(42).normal()
        """,
    })
    report = lint_pkg(pkg, ["R601"])
    assert rule_ids(report) == ["R601"]
    assert report.new[0].path == "noise.py"


def test_r601_registry_module_is_exempt(tmp_path):
    pkg, _ = make_pkg(tmp_path, {"rng.py": RNG_PY})
    assert lint_pkg(pkg, ["R601"]).new == []


def test_r601_sees_through_import_aliases(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "rng.py": RNG_PY,
        "noise.py": """
            from numpy.random import default_rng

            def jitter():
                return default_rng(7)
        """,
    })
    assert rule_ids(lint_pkg(pkg, ["R601"])) == ["R601"]


def test_r601_flags_orphan_generator_in_calib_subpackage(tmp_path):
    """Calibration code gets no special dispensation from RNG discipline."""
    pkg, _ = make_pkg(tmp_path, {
        "rng.py": RNG_PY,
        "calib/__init__.py": "",
        "calib/excite.py": """
            import numpy as np

            def jitter_dwell(dwell_s):
                return dwell_s * np.random.default_rng(0).uniform(0.9, 1.1)
        """,
    })
    report = lint_pkg(pkg, ["R601"])
    assert rule_ids(report) == ["R601"]
    assert report.new[0].path == "calib/excite.py"


def test_r601_calib_drawing_from_registry_stream_is_clean(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "rng.py": """
            import numpy as np

            STREAM_NAMESPACES = frozenset({"calib", "daq", "faults"})

            class RngRegistry:
                def stream(self, name):
                    return np.random.default_rng(hash(name))
        """,
        "calib/__init__.py": "",
        "calib/excite.py": """
            def jitter_dwell(registry, dwell_s):
                rng = registry.stream("calib.excite")
                return dwell_s * rng.uniform(0.9, 1.1)
        """,
    })
    assert lint_pkg(pkg, ["R601", "R602"]).new == []


def test_r601_flags_orphan_generator_in_degrade_module(tmp_path):
    """Sensor degradation draws per-channel streams, never its own RNG."""
    pkg, _ = make_pkg(tmp_path, {
        "rng.py": RNG_PY,
        "calib/__init__.py": "",
        "calib/degrade.py": """
            import numpy as np

            def drop_records(times, rate):
                keep = np.random.default_rng(0).random(len(times)) >= rate
                return [t for t, k in zip(times, keep) if k]
        """,
    })
    report = lint_pkg(pkg, ["R601"])
    assert rule_ids(report) == ["R601"]
    assert report.new[0].path == "calib/degrade.py"


def test_r6_degrade_streams_under_declared_namespace_are_clean(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "rng.py": """
            import numpy as np

            STREAM_NAMESPACES = frozenset({"calib", "calib.degrade", "daq"})

            class RngRegistry:
                def stream(self, name):
                    return np.random.default_rng(hash(name))
        """,
        "calib/__init__.py": "",
        "calib/degrade.py": """
            def degrade(registry, channel, values):
                shared = registry.stream("calib.degrade")
                per_channel = registry.stream(f"calib.degrade.{channel}")
                return values + per_channel.normal(0.0, 1.0, len(values))
        """,
    })
    assert lint_pkg(pkg, ["R601", "R602"]).new == []


def test_r602_flags_undeclared_namespace(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "rng.py": RNG_PY,
        "sensor.py": """
            def attach(registry):
                return registry.stream("sesnor.noise")
        """,
    })
    report = lint_pkg(pkg, ["R602"])
    assert rule_ids(report) == ["R602"]
    assert "sesnor" in report.new[0].message


def test_r602_declared_namespaces_and_fstrings_clean(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "rng.py": RNG_PY,
        "sensor.py": """
            def attach(registry, zone):
                a = registry.stream("daq.noise")
                b = registry.stream(f"faults.{zone}")
                c = registry.stream(zone)  # fully dynamic: unknowable
                return a, b, c
        """,
    })
    assert lint_pkg(pkg, ["R602"]).new == []


def test_r602_fstring_with_interpolated_namespace_is_skipped(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "rng.py": RNG_PY,
        "sensor.py": """
            def attach(registry, kind):
                return registry.stream(f"{kind}.noise")
        """,
    })
    assert lint_pkg(pkg, ["R602"]).new == []


def test_r602_silent_without_declared_allowlist(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "rng.py": """
            class RngRegistry:
                def stream(self, name):
                    return name
        """,
        "sensor.py": """
            def attach(registry):
                return registry.stream("anything.goes")
        """,
    })
    assert lint_pkg(pkg, ["R602"]).new == []


# ---------------------------------------------------- R7: serialization


def test_r701_flags_writer_only_key(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "snap.py": """
            class Snapshot:
                def to_dict(self):
                    return {"temp": self.temp, "freq": self.freq}

                @classmethod
                def from_dict(cls, data):
                    return cls(data["temp"])
        """,
    })
    report = lint_pkg(pkg, ["R701"])
    assert rule_ids(report) == ["R701"]
    assert "'freq'" in report.new[0].message
    assert "dropped on load" in report.new[0].message


def test_r701_flags_reader_only_key(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "snap.py": """
            class Snapshot:
                def to_dict(self):
                    return {"temp": self.temp}

                @classmethod
                def from_dict(cls, data):
                    return cls(data["temp"], data.get("freq", 0))
        """,
    })
    report = lint_pkg(pkg, ["R701"])
    assert rule_ids(report) == ["R701"]
    assert "'freq'" in report.new[0].message


def test_r701_symmetric_and_built_dict_clean(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "snap.py": """
            class Snapshot:
                def to_dict(self):
                    out = {"temp": self.temp}
                    out["freq"] = self.freq
                    return out

                @classmethod
                def from_dict(cls, data):
                    return cls(data["temp"], data.pop("freq", 0))
        """,
    })
    assert lint_pkg(pkg, ["R701"]).new == []


def test_r701_dynamic_serializers_are_skipped(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "snap.py": """
            from dataclasses import asdict

            class Snapshot:
                def to_dict(self):
                    return asdict(self)

                @classmethod
                def from_dict(cls, data):
                    return cls(**data)
        """,
    })
    assert lint_pkg(pkg, ["R701"]).new == []


def test_r702_flags_version_skew(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "store.py": 'FORMAT = "repro.fixture/2"\n',
        "reader.py": """
            def accepts(header):
                return header == "repro.fixture/1"
        """,
    })
    report = lint_pkg(pkg, ["R702"])
    assert rule_ids(report) == ["R702", "R702"]  # both sites implicated
    assert all("repro.fixture" in f.message for f in report.new)


def test_r702_flags_retyped_literal(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "store.py": 'FORMAT = "repro.fixture/1"\n',
        "reader.py": """
            def accepts(header):
                return header == "repro.fixture/1"
        """,
    })
    report = lint_pkg(pkg, ["R702"])
    assert rule_ids(report) == ["R702"]
    assert report.new[0].path == "reader.py"
    assert "app.store" in report.new[0].message


def test_r702_importing_the_constant_is_clean(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "store.py": 'FORMAT = "repro.fixture/1"\n',
        "reader.py": """
            from app.store import FORMAT

            def accepts(header):
                return header == FORMAT
        """,
    })
    assert lint_pkg(pkg, ["R702"]).new == []


# --------------------------------------------------------- R8: metrics

METRICS_DOC = """
    # Observability

    | Family | Kind | Help |
    | --- | --- | --- |
    | `repro_good_total` | counter | documented and emitted |
    | `repro_ghost_total` | counter | documented, never emitted |
"""


def test_r801_flags_undocumented_family(tmp_path):
    pkg, docs_dir = make_pkg(tmp_path, {
        "obs.py": """
            def install(metrics):
                metrics.counter("repro_good_total", "ok")
                metrics.counter("repro_rogue_total", "undocumented")
        """,
    }, docs={"OBSERVABILITY.md": METRICS_DOC +
             "    | `repro_rogue_total` | counter | pretend |\n"})
    # Start from a doc that *does* list it: clean...
    assert lint_pkg(pkg, ["R801"], docs_dir=docs_dir).new == []
    # ...then drop the row: R801.
    (docs_dir / "OBSERVABILITY.md").write_text(textwrap.dedent(METRICS_DOC))
    report = lint_pkg(pkg, ["R801"], docs_dir=docs_dir)
    assert rule_ids(report) == ["R801"]
    assert "repro_rogue_total" in report.new[0].message
    assert report.new[0].path == "obs.py"


def test_r802_flags_documented_but_unemitted(tmp_path):
    pkg, docs_dir = make_pkg(tmp_path, {
        "obs.py": """
            def install(metrics):
                metrics.counter("repro_good_total", "ok")
        """,
    }, docs={"OBSERVABILITY.md": METRICS_DOC})
    report = lint_pkg(pkg, ["R802"], docs_dir=docs_dir)
    assert rule_ids(report) == ["R802"]
    finding = report.new[0]
    assert "repro_ghost_total" in finding.message
    assert finding.path == "docs/OBSERVABILITY.md"  # anchored in the doc


def test_r802_constant_pool_counts_as_existing(tmp_path):
    """Names emitted through a table (the fleet-gauge idiom) must not be
    reported as documentation rot."""
    pkg, docs_dir = make_pkg(tmp_path, {
        "obs.py": """
            FAMILIES = ("repro_good_total", "repro_ghost_total")

            def install(metrics):
                for name in FAMILIES:
                    metrics.counter(name, "from the table")
        """,
    }, docs={"OBSERVABILITY.md": METRICS_DOC})
    assert lint_pkg(pkg, ["R802"], docs_dir=docs_dir).new == []


def test_r803_flags_cross_site_kind_conflict(tmp_path):
    pkg, docs_dir = make_pkg(tmp_path, {
        "a.py": """
            def install(metrics):
                metrics.counter("repro_good_total", "here a counter")
        """,
        "b.py": """
            def install(metrics):
                metrics.gauge("repro_good_total", "there a gauge")
        """,
    }, docs={"OBSERVABILITY.md": METRICS_DOC})
    report = lint_pkg(pkg, ["R803"], docs_dir=docs_dir)
    assert rule_ids(report) == ["R803"]
    assert "conflicting kinds" in report.new[0].message


def test_r803_flags_code_vs_doc_kind_skew(tmp_path):
    pkg, docs_dir = make_pkg(tmp_path, {
        "obs.py": """
            def install(metrics):
                metrics.gauge("repro_good_total", "doc says counter")
        """,
    }, docs={"OBSERVABILITY.md": METRICS_DOC})
    report = lint_pkg(pkg, ["R803"], docs_dir=docs_dir)
    assert rule_ids(report) == ["R803"]
    assert "documented as a counter" in report.new[0].message


def test_r8_family_silent_without_catalogue_doc(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "obs.py": """
            def install(metrics):
                metrics.counter("repro_rogue_total", "no doc to drift from")
        """,
    })
    report = lint_pkg(pkg, ["R801", "R802", "R803"],
                      docs_dir=tmp_path / "nonexistent")
    assert report.new == []


def test_r8_declare_sites_participate(tmp_path):
    pkg, docs_dir = make_pkg(tmp_path, {
        "obs.py": """
            def install(metrics):
                metrics.counter("repro_good_total", "ok")
                metrics.declare("repro_ghost_total", "gauge")
        """,
    }, docs={"OBSERVABILITY.md": METRICS_DOC})
    # declare() keeps R802 quiet for the ghost, but its kind skews R803.
    assert lint_pkg(pkg, ["R802"], docs_dir=docs_dir).new == []
    report = lint_pkg(pkg, ["R803"], docs_dir=docs_dir)
    assert rule_ids(report) == ["R803"]


# --------------------------------------- baseline flow for project rules


def test_project_finding_baseline_roundtrip(tmp_path):
    pkg, _ = make_pkg(tmp_path, {
        "gov.py": """
            def poll(zone):
                temp_c = zone.read_millicelsius()
                return temp_c
        """,
    })
    baseline = tmp_path / "baseline.json"
    first = lint_pkg(pkg, ["R503"])
    assert first.exit_code == 1
    update_baseline(first, baseline, justification="fixture shim, tracked")
    second = lint_pkg(pkg, ["R503"], use_baseline=True,
                      baseline_path=baseline)
    assert second.exit_code == 0
    assert len(second.baselined) == 1
    # Fix the finding: the entry goes stale, which is exit code 2.
    (pkg / "gov.py").write_text(textwrap.dedent("""
        def poll(zone):
            temp_mc = zone.read_millicelsius()
            return temp_mc
    """))
    third = lint_pkg(pkg, ["R503"], use_baseline=True,
                     baseline_path=baseline)
    assert third.exit_code == 2
    assert third.new == [] and len(third.stale_baseline) == 1


def test_baseline_rejects_empty_justification(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "entries": [{
            "rule": "R503",
            "path": "gov.py",
            "context": "temp_c = zone.read_millicelsius()",
            "justification": "   ",
        }],
    }))
    pkg, _ = make_pkg(tmp_path, {"gov.py": "X = 1\n"})
    with pytest.raises(ConfigurationError, match="empty justification"):
        lint_pkg(pkg, ["R503"], use_baseline=True, baseline_path=baseline)
