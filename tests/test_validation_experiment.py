"""Validation-experiment plumbing (short settle times for speed)."""

import pytest

from repro.experiments.validation import (
    ValidationPoint,
    steady_state_validation,
)


@pytest.fixture(scope="module")
def points():
    # Short settle: accuracy is looser but the structure must hold.
    return steady_state_validation(
        seed=1, freqs_mhz=(800, 1600), settle_s=200.0,
        include_runaway_point=False,
    )


def test_returns_one_point_per_frequency(points):
    assert [p.freq_mhz for p in points] == [800, 1600]


def test_power_monotone_in_frequency(points):
    assert points[1].p_dyn_w > points[0].p_dyn_w


def test_plant_hotter_at_higher_frequency(points):
    assert points[1].plant_ss_c > points[0].plant_ss_c + 10.0


def test_stable_points_agree(points):
    for p in points:
        assert p.predicted_class == "stable"
        assert p.agreement
        assert not p.plant_ran_away


def test_short_settle_error_still_bounded(points):
    # 200 s is ~2 time constants: the plant is still a little cold, so the
    # prediction overshoots slightly; it must stay within a few kelvin.
    for p in points:
        assert p.error_k is not None
        assert abs(p.error_k) < 5.0


def test_error_property_none_for_runaway():
    p = ValidationPoint(
        freq_mhz=2000, p_dyn_w=6.0, predicted_class="runaway",
        predicted_ss_c=None, plant_ss_c=150.0, plant_ran_away=True,
    )
    assert p.error_k is None
    assert p.agreement


def test_disagreement_detected():
    p = ValidationPoint(
        freq_mhz=2000, p_dyn_w=6.0, predicted_class="runaway",
        predicted_ss_c=None, plant_ss_c=80.0, plant_ran_away=False,
    )
    assert not p.agreement
