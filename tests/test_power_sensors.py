"""INA231-style rail power sensors."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.power.sensors import RailPowerSensor
from repro.sim.rng import RngRegistry


def make_sensor(**kwargs):
    return RailPowerSensor("a15", RngRegistry(0).stream("ina"), **kwargs)


def test_reads_zero_before_first_update():
    assert make_sensor().read_w() == 0.0


def test_tracks_constant_power():
    sensor = make_sensor(noise_rel=0.0, quantum_w=0.0)
    for _ in range(100):
        sensor.update(2.0, 0.01)
    assert sensor.read_w() == pytest.approx(2.0, abs=1e-6)


def test_ema_smooths_step_change():
    sensor = make_sensor(noise_rel=0.0, quantum_w=0.0, averaging_tau_s=0.1)
    for _ in range(100):
        sensor.update(1.0, 0.01)
    sensor.update(5.0, 0.01)
    reading = sensor.read_w()
    assert 1.0 < reading < 2.0  # one step of a 100 ms EMA


def test_quantisation():
    sensor = make_sensor(noise_rel=0.0, quantum_w=0.01)
    sensor.update(1.2345, 1.0)
    assert sensor.read_w() == pytest.approx(1.23, abs=1e-9)


def test_noise_is_multiplicative():
    sensor = make_sensor(noise_rel=0.05, quantum_w=0.0)
    for _ in range(10):
        sensor.update(2.0, 0.1)
    readings = np.array([sensor.read_w() for _ in range(2000)])
    assert readings.mean() == pytest.approx(2.0, rel=0.01)
    assert readings.std() == pytest.approx(0.1, rel=0.15)


def test_never_negative():
    sensor = make_sensor(noise_rel=1.0, quantum_w=0.0)
    sensor.update(0.001, 1.0)
    assert all(sensor.read_w() >= 0.0 for _ in range(200))


def test_validation():
    with pytest.raises(ConfigurationError):
        make_sensor(averaging_tau_s=0.0)
    with pytest.raises(ConfigurationError):
        make_sensor(noise_rel=-0.1)
    sensor = make_sensor()
    with pytest.raises(ConfigurationError):
        sensor.update(-1.0, 0.01)
