"""Declarative scenario runner."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.experiment import AppSpec, Scenario, compare_policies


def test_appspec_validation():
    with pytest.raises(ConfigurationError):
        AppSpec.catalog("tiktok")
    with pytest.raises(ConfigurationError):
        AppSpec.batch("prime95")


def test_scenario_validation():
    apps = (AppSpec.catalog("stickman"),)
    with pytest.raises(ConfigurationError):
        Scenario(platform="pixel", apps=apps)
    with pytest.raises(ConfigurationError):
        Scenario(platform="nexus6p", apps=apps, policy="magic")
    with pytest.raises(ConfigurationError):
        Scenario(platform="nexus6p", apps=())
    with pytest.raises(ConfigurationError):
        Scenario(platform="nexus6p", apps=apps, duration_s=0.0)


def test_scenario_runs_and_summarises():
    result = Scenario(
        platform="odroid-xu3",
        apps=(AppSpec.catalog("stickman"), AppSpec.batch("bml")),
        policy="none",
        duration_s=20.0,
    ).run()
    assert "stickman" in result.fps
    assert result.peak_temp_c > 45.0
    assert result.mean_power_w > 0.5
    assert abs(sum(result.breakdown.shares.values()) - 1.0) < 1e-9


def test_proposed_policy_registers_catalog_apps():
    result = Scenario(
        platform="odroid-xu3",
        apps=(AppSpec.catalog("stickman"), AppSpec.batch("bml")),
        policy="proposed",
        duration_s=40.0,
        t_limit_c=60.0,
    ).run()
    # Only the batch kernel may be acted upon.
    assert result.governor_events
    assert all(name == "bml" for _, name, _ in result.governor_events)


def test_stock_policy_uses_platform_default():
    nexus = Scenario(
        platform="nexus6p", apps=(AppSpec.catalog("stickman"),),
        policy="stock", duration_s=30.0,
    ).run()
    assert nexus.governor_events == ()
    # The phone's trip governor holds the package near 40 degC.
    assert nexus.peak_temp_c < 43.0


def test_compare_policies_shapes():
    results = compare_policies(
        "odroid-xu3",
        (AppSpec.catalog("hangouts"), AppSpec.batch("bml")),
        duration_s=30.0,
        t_limit_c=60.0,
    )
    assert set(results) == {"none", "stock", "proposed"}
    # Unmanaged runs hottest.
    assert results["none"].peak_temp_c >= results["proposed"].peak_temp_c - 0.5


def test_batch_cluster_override():
    result = Scenario(
        platform="odroid-xu3",
        apps=(AppSpec.batch("bml", cluster="a7"),),
        policy="none",
        duration_s=10.0,
    ).run()
    assert result.breakdown.shares["a7"] > result.breakdown.shares["a15"]


def test_pixel_xl_runs_every_policy():
    """The data-defined phone runs end-to-end with no code branches."""
    results = compare_policies(
        "pixel-xl", (AppSpec.catalog("stickman"),), duration_s=20.0,
    )
    assert set(results) == {"none", "stock", "proposed"}
    for result in results.values():
        assert result.peak_temp_c > 25.0
        assert "stickman" in result.fps
    # The proposed governor defaults to the definition's 45 degC limit.
    assert results["proposed"].peak_temp_c <= results["none"].peak_temp_c + 0.5


def test_proposed_limit_comes_from_platform_definition():
    from repro.soc.registry import get

    assert get("nexus6p").default_t_limit_c == 41.0
    assert get("odroid-xu3").default_t_limit_c == 85.0
    assert get("pixel-xl").default_t_limit_c == 45.0
