"""Unit-dimension dataflow: the converter table and the inference pass.

The first test is load-bearing for the whole R5 family: it pins
``CONVERTER_SIGNATURES`` to exactly the public surface of
``repro.units``, so adding a converter without teaching the analyzer
(or typo-ing a table key) fails the suite instead of opening a silent
hole in the analysis.
"""

import inspect
import textwrap

import repro.units
from repro.lint.dataflow import (
    CONVERTER_SIGNATURES,
    UnitAnalysis,
    converter_units,
)
from repro.lint.index import ProjectIndex
from repro.lint.unitconv import unit_suffix


def build_analysis(tmp_path, files):
    pkg = tmp_path / "app"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    pairs = [(pkg / "__init__.py", "__init__.py")]
    for relpath, source in files.items():
        path = pkg / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        pairs.append((path, relpath))
    index = ProjectIndex.build(pairs, "app")
    return index, UnitAnalysis(index)


def summary(index, analysis, module, qualname):
    mod = index.modules[module]
    if "." in qualname:
        cname, mname = qualname.split(".")
        func = mod.classes[cname].methods[mname]
    else:
        func = mod.functions[qualname]
    return analysis.summary_for(func)


# ------------------------------------------------------ converter table


def test_converter_table_covers_every_units_function():
    public = {
        name
        for name, obj in vars(repro.units).items()
        if inspect.isfunction(obj)
        and not name.startswith("_")
        and obj.__module__ == "repro.units"
    }
    assert public == set(CONVERTER_SIGNATURES), (
        "repro.units and CONVERTER_SIGNATURES drifted apart — teach "
        "repro.lint.dataflow about the new/renamed converter"
    )


def test_converter_units_resolves_from_any_units_module(tmp_path):
    index, _ = build_analysis(tmp_path, {
        "units.py": "def celsius_to_kelvin(temp_c):\n    return temp_c\n",
        "other.py": "def celsius_to_kelvin(temp_c):\n    return temp_c\n",
    })
    in_units = index.modules["app.units"].functions["celsius_to_kelvin"]
    elsewhere = index.modules["app.other"].functions["celsius_to_kelvin"]
    tags = converter_units(in_units)
    assert tags is not None
    assert (tags[0].unit, tags[1].unit) == ("celsius", "kelvin")
    # Same name outside a units module is NOT a sanctioned converter.
    assert converter_units(elsewhere) is None


def test_mhz_signature_overrides_its_name():
    """``mhz()`` expresses megahertz *in hertz*: the table is authoritative
    where the suffix convention would mislead the analysis."""
    (_, _), (out_dim, out_unit) = CONVERTER_SIGNATURES["mhz"]
    assert (out_dim, out_unit) == ("frequency", "hertz")
    declared = unit_suffix("mhz")
    assert declared is not None and declared.unit != out_unit


# --------------------------------------------------------- summaries


def test_return_unit_from_parameter_suffix(tmp_path):
    index, analysis = build_analysis(tmp_path, {
        "m.py": "def passthrough(temp_mc):\n    return temp_mc\n",
    })
    tag = summary(index, analysis, "app.m", "passthrough").return_unit
    assert tag is not None and tag.unit == "millicelsius"


def test_return_unit_through_converter_call(tmp_path):
    index, analysis = build_analysis(tmp_path, {
        "units.py": (
            "def millicelsius_to_celsius(temp_mc):\n"
            "    return temp_mc / 1000.0\n"
        ),
        "m.py": (
            "from app.units import millicelsius_to_celsius\n"
            "def read(raw_mc):\n"
            "    return millicelsius_to_celsius(raw_mc)\n"
        ),
    })
    tag = summary(index, analysis, "app.m", "read").return_unit
    assert tag is not None and tag.unit == "celsius"


def test_fixpoint_types_call_chains(tmp_path):
    """a() -> b() -> c() -> suffixed param: three summary hops."""
    index, analysis = build_analysis(tmp_path, {
        "m.py": """
            def c(temp_mc):
                return temp_mc

            def b():
                return c(52000)

            def a():
                return b()
        """,
    })
    tag = summary(index, analysis, "app.m", "a").return_unit
    assert tag is not None and tag.unit == "millicelsius"


def test_disagreeing_returns_widen_to_unknown(tmp_path):
    index, analysis = build_analysis(tmp_path, {
        "m.py": """
            def mixed(flag, temp_c, temp_mc):
                if flag:
                    return temp_c
                return temp_mc
        """,
    })
    assert summary(index, analysis, "app.m", "mixed").return_unit is None


def test_rebinding_joins_to_unknown(tmp_path):
    index, analysis = build_analysis(tmp_path, {
        "m.py": """
            def f(temp_c, freq_hz):
                x = temp_c
                x = freq_hz
                return x
        """,
    })
    assert summary(index, analysis, "app.m", "f").return_unit is None


def test_transparent_builtins_and_constant_arithmetic(tmp_path):
    index, analysis = build_analysis(tmp_path, {
        "m.py": """
            def clamped(temp_c):
                return max(0.0, round(temp_c + 0.5))
        """,
    })
    tag = summary(index, analysis, "app.m", "clamped").return_unit
    assert tag is not None and tag.unit == "celsius"


def test_unresolved_call_falls_back_to_callee_suffix(tmp_path):
    index, analysis = build_analysis(tmp_path, {
        "m.py": """
            def f(sensor):
                return sensor.read_millicelsius()
        """,
    })
    tag = summary(index, analysis, "app.m", "f").return_unit
    assert tag is not None and tag.unit == "millicelsius"


def test_dataclass_constructor_summary_is_unitless(tmp_path):
    """Synthesised constructors are not in the fixpoint table; asking for
    their summary must not crash and must not claim a return unit."""
    index, analysis = build_analysis(tmp_path, {
        "model.py": """
            from dataclasses import dataclass

            @dataclass
            class Trip:
                temp_c: float
        """,
    })
    ctor = index.modules["app.model"].classes["Trip"].constructor()
    assert ctor is not None
    got = analysis.summary_for(ctor)
    assert got.return_unit is None
    assert "temp_c" in got.param_units
