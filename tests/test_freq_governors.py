"""Frequency governor policies."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel.cpufreq.governors import (
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    StepGovernor,
    UserspaceGovernor,
    make_governor,
)
from repro.kernel.cpufreq.policy import DvfsPolicy
from repro.soc.opp import OppTable


def make_policy(initial=200e6):
    opps = OppTable.from_pairs(
        [(200e6, 0.9), (400e6, 0.95), (800e6, 1.05), (1600e6, 1.25)]
    )
    return DvfsPolicy("cpu", opps, initial_freq_hz=initial)


def feed(policy, util, ticks=5):
    for _ in range(ticks):
        policy.account(0.01, util)


def test_performance_goes_to_max():
    policy = make_policy()
    PerformanceGovernor().update(policy, 0.0)
    assert policy.cur_freq_hz == 1600e6


def test_performance_respects_thermal_cap():
    policy = make_policy()
    policy.set_thermal_max(800e6)
    PerformanceGovernor().update(policy, 0.0)
    assert policy.cur_freq_hz == 800e6


def test_powersave_goes_to_min():
    policy = make_policy(1600e6)
    PowersaveGovernor().update(policy, 0.0)
    assert policy.cur_freq_hz == 200e6


def test_userspace_sets_requested_speed():
    policy = make_policy()
    gov = UserspaceGovernor()
    gov.set_speed(800e6)
    gov.update(policy, 0.0)
    assert policy.cur_freq_hz == 800e6


def test_userspace_no_speed_is_noop():
    policy = make_policy(400e6)
    UserspaceGovernor().update(policy, 0.0)
    assert policy.cur_freq_hz == 400e6


def test_userspace_rejects_bad_speed():
    with pytest.raises(ConfigurationError):
        UserspaceGovernor().set_speed(0.0)


def test_ondemand_jumps_to_max_when_busy():
    policy = make_policy()
    feed(policy, 0.95)
    OndemandGovernor(up_threshold=0.9).update(policy, 0.0)
    assert policy.cur_freq_hz == 1600e6


def test_ondemand_tracks_demand_when_not_busy():
    policy = make_policy(1600e6)
    feed(policy, 0.3)
    OndemandGovernor(up_threshold=0.9).update(policy, 0.0)
    # demand = 1600 MHz * 0.3 / 0.9 = 533 MHz -> snaps up to 800 MHz
    assert policy.cur_freq_hz == 800e6


def test_ondemand_threshold_validation():
    with pytest.raises(ConfigurationError):
        OndemandGovernor(up_threshold=1.5)


def test_interactive_raises_under_load():
    policy = make_policy()
    gov = InteractiveGovernor(target_load=0.8)
    feed(policy, 1.0)
    gov.update(policy, 0.1)
    assert policy.cur_freq_hz > 200e6


def test_interactive_hispeed_on_boost():
    policy = make_policy()
    gov = InteractiveGovernor(hispeed_freq_hz=800e6)
    policy.notify_input(0.0)
    feed(policy, 0.1)
    gov.update(policy, 0.1)
    assert policy.cur_freq_hz >= 800e6


def test_interactive_min_sample_time_blocks_quick_drop():
    policy = make_policy()
    gov = InteractiveGovernor(target_load=0.8, min_sample_time_s=0.08)
    feed(policy, 1.0)
    gov.update(policy, 0.1)  # raises
    high = policy.cur_freq_hz
    feed(policy, 0.1)
    gov.update(policy, 0.12)  # too soon after the raise
    assert policy.cur_freq_hz == high
    feed(policy, 0.1)
    gov.update(policy, 0.5)  # dwell elapsed
    assert policy.cur_freq_hz < high


def test_interactive_go_hispeed_load():
    policy = make_policy()
    gov = InteractiveGovernor(hispeed_freq_hz=1600e6, go_hispeed_load=0.85)
    feed(policy, 0.9)
    gov.update(policy, 0.1)
    assert policy.cur_freq_hz == 1600e6


def test_interactive_validation():
    with pytest.raises(ConfigurationError):
        InteractiveGovernor(target_load=0.0)
    with pytest.raises(ConfigurationError):
        InteractiveGovernor(go_hispeed_load=2.0)


def test_step_governor_steps_up_one_opp():
    policy = make_policy()
    gov = StepGovernor(up_threshold=0.9, down_threshold=0.7)
    feed(policy, 0.95)
    gov.update(policy, 0.1)
    assert policy.cur_freq_hz == 400e6  # exactly one step


def test_step_governor_steps_down_one_opp():
    policy = make_policy(800e6)
    gov = StepGovernor(up_threshold=0.9, down_threshold=0.7)
    feed(policy, 0.3)
    gov.update(policy, 0.1)
    assert policy.cur_freq_hz == 400e6


def test_step_governor_holds_in_band():
    policy = make_policy(400e6)
    gov = StepGovernor(up_threshold=0.9, down_threshold=0.7)
    feed(policy, 0.8)
    gov.update(policy, 0.1)
    assert policy.cur_freq_hz == 400e6


def test_step_governor_respects_thermal_cap():
    policy = make_policy(400e6)
    policy.set_thermal_max(400e6)
    gov = StepGovernor()
    feed(policy, 1.0)
    gov.update(policy, 0.1)
    assert policy.cur_freq_hz == 400e6


def test_step_governor_validation():
    with pytest.raises(ConfigurationError):
        StepGovernor(up_threshold=0.5, down_threshold=0.7)


def test_make_governor_registry():
    assert make_governor("performance").name == "performance"
    assert make_governor("interactive").name == "interactive"
    assert make_governor("simple_ondemand").name == "simple_ondemand"
    with pytest.raises(ConfigurationError):
        make_governor("schedutil2")
