"""docs/CAMPAIGNS.md must match the CLI surface and the metric families."""

import argparse
import pathlib
import re

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, PRESETS, ResultStore
from repro.campaign.spec import Axis
from repro.cli import build_parser

DOC = pathlib.Path(__file__).parent.parent / "docs" / "CAMPAIGNS.md"

#: Inline-code tokens that look like CLI flags, e.g. `--jobs N`.
_FLAG_RE = re.compile(r"`(--[a-z][a-z-]*)")

#: Inline-code tokens that look like campaign metric family names.
_METRIC_RE = re.compile(r"`(repro_campaign_[a-z0-9_]+)`")


def _subparser_choices(parser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    raise AssertionError("no subparsers found")


@pytest.fixture(scope="module")
def campaign_parsers():
    return _subparser_choices(_subparser_choices(build_parser())["campaign"])


def test_doc_exists():
    assert DOC.exists(), "docs/CAMPAIGNS.md is part of the campaign contract"


def test_every_documented_flag_exists(campaign_parsers):
    implemented = {
        flag
        for sub in campaign_parsers.values()
        for action in sub._actions
        for flag in action.option_strings
        if flag.startswith("--") and flag != "--help"
    }
    documented = set(_FLAG_RE.findall(DOC.read_text()))
    stale = documented - implemented
    missing = implemented - documented
    assert not stale, f"documented but not in build_parser(): {sorted(stale)}"
    assert not missing, f"flags missing from the doc: {sorted(missing)}"


def test_actions_documented(campaign_parsers):
    text = DOC.read_text()
    assert set(campaign_parsers) == {"run", "status", "results", "watch"}
    for action in campaign_parsers:
        assert action in text


def test_presets_documented():
    text = DOC.read_text()
    for name in PRESETS:
        assert f"`{name}`" in text, f"preset {name!r} missing from the doc"


def test_metric_catalogue_matches_runner(tmp_path):
    spec = CampaignSpec(
        name="doc-check",
        base={"platform": "odroid-xu3",
              "apps": ({"kind": "catalog", "name": "stickman",
                        "cluster": None},)},
        axes=(Axis("seed", (1,)),),
    )
    runner = CampaignRunner(spec, ResultStore(tmp_path), jobs=1)
    emitted = {n for n in runner.metrics.names()
               if n.startswith("repro_campaign_")}
    documented = set(_METRIC_RE.findall(DOC.read_text()))
    assert emitted, "runner registered no campaign metric families"
    missing = emitted - documented
    stale = documented - emitted
    assert not missing, f"registered but undocumented: {sorted(missing)}"
    assert not stale, f"documented but never registered: {sorted(stale)}"
