"""Trace-replay workloads."""

import pytest

from repro.apps.replay import FrameRecord, ReplayApp, load_trace
from repro.errors import ConfigurationError
from repro.kernel.kernel import KernelConfig
from repro.sim.engine import Simulation
from repro.soc.exynos5422 import odroid_xu3


def make_frames(n=120, period=1.0 / 30.0, cpu=3e6, gpu=4e6):
    return [FrameRecord(i * period, cpu, gpu) for i in range(n)]


def make_sim(app, seed=1):
    return Simulation(odroid_xu3(), [app], kernel_config=KernelConfig(), seed=seed)


def test_record_validation():
    with pytest.raises(ConfigurationError):
        FrameRecord(-1.0, 1e6, 1e6)
    with pytest.raises(ConfigurationError):
        FrameRecord(0.0, 0.0, 1e6)


def test_app_validation():
    with pytest.raises(ConfigurationError):
        ReplayApp("x", [])
    with pytest.raises(ConfigurationError):
        ReplayApp("x", make_frames(3), pipeline_depth=0)


def test_replays_at_recorded_rate():
    app = ReplayApp("replay", make_frames(n=150))
    sim = make_sim(app)
    sim.run(6.0)
    assert app.finished
    # 30 fps recording, light frames: achieved ~30 fps.
    assert app.fps.median_fps(start_s=1.0, end_s=5.0) == pytest.approx(30.0, abs=3.0)


def test_stops_when_trace_exhausted():
    app = ReplayApp("replay", make_frames(n=30))
    sim = make_sim(app)
    sim.run(5.0)
    assert app.finished
    assert app.metrics()["issued"] == 30


def test_loop_mode_keeps_going():
    app = ReplayApp("replay", make_frames(n=30), loop=True)
    sim = make_sim(app)
    sim.run(5.0)
    assert not app.finished
    assert app.metrics()["issued"] > 100


def test_heavy_trace_is_gpu_bound():
    app = ReplayApp("replay", make_frames(n=600, period=1 / 120.0, gpu=24e6))
    sim = make_sim(app)
    sim.run(6.0)
    # 600 MHz / 24 Mcycles = 25 fps ceiling despite the 120 fps recording.
    assert app.fps.median_fps(start_s=2.0) == pytest.approx(24.0, abs=4.0)


def test_csv_roundtrip(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text(
        "start_offset_s,cpu_cycles,gpu_cycles\n"
        "0.0,3e6,4e6\n"
        "0.033,3e6,4e6\n"
        "0.066,3e6,4e6\n"
    )
    frames = load_trace(path)
    assert len(frames) == 3
    app = ReplayApp.from_csv("replay", path)
    sim = make_sim(app)
    sim.run(1.0)
    assert app.finished


def test_csv_validation(tmp_path):
    bad = tmp_path / "bad.csv"
    bad.write_text("0.0,1e6\n")
    with pytest.raises(ConfigurationError):
        load_trace(bad)
    empty = tmp_path / "empty.csv"
    empty.write_text("start,cpu,gpu\n")
    with pytest.raises(ConfigurationError):
        load_trace(empty)
    unsorted = tmp_path / "unsorted.csv"
    unsorted.write_text("1.0,1e6,1e6\n0.5,1e6,1e6\n")
    with pytest.raises(ConfigurationError):
        load_trace(unsorted)
